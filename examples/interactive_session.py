#!/usr/bin/env python3
"""Interactive mining sessions: the result cache at work.

A real mining session is a dialogue — run the Fig. 2 basket flock at a
guessed threshold, look at the answer, tighten the threshold, repeat.
Section 5 monotonicity makes every follow-up free: the answer at
support 40 is a subset of the answer at support 20, and the cache kept
the support-20 survivors *with their counts*, so the tighter request is
answered by re-filtering — zero base-relation joins.

The session also reuses results across *different* queries: a cached
run of the plain pair query upper-bounds the tie-broken variant
(containment, Section 3.1), and mutating the data invalidates exactly
the entries that read it.

Run:  python examples/interactive_session.py
"""

from repro import MiningSession, parse_flock, with_support_threshold
from repro.workloads import basket_database

FLOCK_TEXT = """
QUERY:
answer(B) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    $1 < $2

FILTER:
COUNT(answer.B) >= 20
"""


def main() -> None:
    db = basket_database(n_baskets=1500, n_items=2000, avg_basket_size=8,
                         skew=1.1, seed=42)
    print(f"database: {db}")

    flock = parse_flock(FLOCK_TEXT)
    session = MiningSession(db)

    # Cold: a real evaluation, which also warms the cache.
    rel, report = session.mine(flock)
    print(f"\n[support 20, cold] {len(rel)} pairs via {report.strategy_used} "
          f"in {report.seconds * 1e3:.1f} ms")

    # The analyst tightens the threshold twice.  Both answers come from
    # the cached aggregates: strategy_used == "cache", no joins at all.
    for support in (40, 80):
        hotter = with_support_threshold(flock, support)
        rel, report = session.mine(hotter)
        print(f"[support {support}, warm] {len(rel)} pairs via "
              f"{report.strategy_used} in {report.seconds * 1e3:.1f} ms "
              f"(saved recomputing {report.rows_saved} answer rows)")
        assert report.strategy_used == "cache", report

    # Mutating the base relation invalidates the dependent entries:
    # the next run is honest (cold again), and re-warms the cache.
    baskets = db.get("baskets")
    db.add_rows("baskets", baskets.columns,
                list(baskets.tuples) + [(10_001, "anchovies")])
    rel, report = session.mine(flock)
    print(f"\n[after mutation]   {len(rel)} pairs via {report.strategy_used} "
          "(cache was invalidated, as it must be)")
    assert report.strategy_used != "cache"

    print(f"\nsession stats: {session.stats()}")


if __name__ == "__main__":
    main()
