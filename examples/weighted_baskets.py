#!/usr/bin/env python3
"""Weighted market baskets — a monotone SUM filter (paper Section 5 / Fig. 10).

The future-work section extends flocks to any *monotone* filter; the
worked example weights each basket by an importance score (total
purchase value, or web hits for documents) and requires
``SUM(answer.W) >= 20`` instead of a count.  This example:

* runs the Fig. 10 flock;
* shows that SUM-with-nonnegative-weights is classified monotone, so
  a-priori pre-filter plans remain legal and sound;
* contrasts with a non-monotone filter, which the planner refuses.

Run:  python examples/weighted_baskets.py
"""

from repro import evaluate_flock, execute_plan
from repro.datalog.subqueries import SubqueryCandidate
from repro.errors import FilterError
from repro.flocks import parse_flock, plan_from_subqueries
from repro.workloads import generate_weighted_baskets

FLOCK_TEXT = """
QUERY:
answer(B,W) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    importance(B,W) AND
    $1 < $2

FILTER:
SUM(answer.W) >= 60
"""


def main() -> None:
    db = generate_weighted_baskets(
        n_baskets=1200, n_items=250, avg_basket_size=7, skew=1.2,
        max_weight=10, seed=21,
    )
    print(f"database: {db}")

    flock = parse_flock(FLOCK_TEXT)
    print("\nThe weighted flock (Fig. 10, threshold scaled to the data):")
    print(flock)
    print(f"\nfilter is monotone: {flock.filter.is_monotone} "
          "(SUM over non-negative weights)")

    naive = evaluate_flock(db, flock)
    print(f"\n[naive] {len(naive)} heavy pairs")

    # A-priori still applies: pre-filter items whose per-item weight sum
    # is below threshold using the safe subquery
    #   answer(B,W) :- baskets(B,$1) AND importance(B,W).
    rule = flock.rules[0]
    candidate = SubqueryCandidate((0, 2), rule.with_body_subset([0, 2]))
    plan = plan_from_subqueries(flock, [("okHeavy", candidate)])
    print("\nThe monotone-SUM a-priori plan:")
    print(plan.render(flock))

    planned = execute_plan(db, flock, plan)
    assert planned.relation == naive
    print(f"\n[plan]  {len(planned)} heavy pairs — matches naive")
    print("step trace:")
    print(planned.trace)

    # A non-monotone filter makes pruning unsound; the library refuses.
    nonmono = parse_flock(FLOCK_TEXT.replace(">= 60", "= 60"))
    try:
        plan_from_subqueries(nonmono, [("okHeavy", candidate)])
    except FilterError as error:
        print(f"\nnon-monotone filter correctly refused:\n  {error}")

    print("\nheaviest pairs:")
    for a, b in sorted(naive.tuples)[:10]:
        print(f"  {a} + {b}")


if __name__ == "__main__":
    main()
