#!/usr/bin/env python3
"""Mining unexplained drug side-effects (paper Example 2.2 / Figs. 3, 5, 8, 9).

Generates a synthetic medical database with *planted* side-effects:
medicines that secretly cause a symptom no disease of their takers
explains.  The Fig. 3 flock must recover them; we then compare every
evaluation strategy the paper discusses for this example:

* naive evaluation (join all four relations, then filter);
* the Fig. 5 static plan (pre-filter rare symptoms and rare medicines);
* the best plan found by the cost-based optimizer;
* dynamic evaluation (Example 4.4), printing its Fig. 9-style plan.

Run:  python examples/medical_side_effects.py
"""

import time

from repro import evaluate_flock, evaluate_flock_dynamic, execute_plan, optimize
from repro.datalog.subqueries import SubqueryCandidate
from repro.flocks import parse_flock, plan_from_subqueries
from repro.workloads import generate_medical

SUPPORT = 20

FLOCK_TEXT = """
QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)

FILTER:
COUNT(answer.P) >= 20
"""


def timed(label, fn):
    started = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - started
    print(f"  {label:<22s} {elapsed * 1e3:8.1f} ms")
    return result


def main() -> None:
    workload = generate_medical(
        n_patients=4000, n_diseases=50, n_symptoms=150, n_medicines=80,
        n_planted=4, seed=7,
    )
    db = workload.db
    print(f"database: {db}")
    print(f"planted side-effects: {sorted(workload.planted_pairs)}")

    flock = parse_flock(FLOCK_TEXT)
    print("\nThe side-effect flock (Fig. 3):")
    print(flock)

    print("\nEvaluation strategies:")
    naive = timed("naive (SQL way)", lambda: evaluate_flock(db, flock))

    # The exact Fig. 5 plan: okS, okM, then the full query.
    rule = flock.rules[0]
    fig5 = plan_from_subqueries(
        flock,
        [
            ("okS", SubqueryCandidate((0,), rule.with_body_subset([0]))),
            ("okM", SubqueryCandidate((1,), rule.with_body_subset([1]))),
        ],
    )
    fig5_result = timed(
        "Fig. 5 plan", lambda: execute_plan(db, flock, fig5, validate=False)
    )

    best = optimize(db, flock)
    best_result = timed(
        "optimizer's best plan",
        lambda: execute_plan(db, flock, best, validate=False),
    )

    dynamic_result, trace = timed(
        "dynamic (Sec. 4.4)", lambda: evaluate_flock_dynamic(db, flock)
    )

    assert fig5_result.relation == naive
    assert best_result.relation == naive
    assert dynamic_result.relation == naive

    print("\nFig. 5 plan text:")
    print(fig5.render(flock))

    print("\nDynamic evaluation's Fig. 9-style executed plan:")
    print(trace.render_plan())

    found = {(s, m) for m, s in naive.tuples}
    recovered = workload.planted_pairs & found
    print(f"\n{len(naive)} (medicine, symptom) pairs pass support {SUPPORT}")
    print(
        f"planted side-effects recovered: {len(recovered)}"
        f"/{len(workload.planted_pairs)}"
    )
    for symptom, medicine in sorted(recovered):
        print(f"  {medicine} -> {symptom}")


if __name__ == "__main__":
    main()
