#!/usr/bin/env python3
"""Association rules and maximal itemsets (paper Sections 1.1 + footnote 2).

The paper opens with the three measures of association — support,
confidence, and interest (the beer → diapers story) — and notes that
maximal frequent itemsets require "a sequence of query flocks for
increasing cardinalities".  This example runs both layers on a Zipf
basket workload:

1. mine frequent itemsets level-by-level via the flock machinery;
2. derive association rules with support / confidence / interest, and
   show why high confidence without interest is misleading (the
   near-universal item);
3. compute maximal frequent itemsets with a flock sequence.

Run:  python examples/association_rules.py
"""

from repro.flocks import (
    mine_association_rules,
    mine_maximal_itemsets,
    rules_for_consequent,
)
from repro.workloads import basket_database

SUPPORT = 25


def main() -> None:
    db = basket_database(
        n_baskets=1200, n_items=300, avg_basket_size=9, skew=1.3, seed=33
    )
    baskets = db.get("baskets")
    print(f"database: {db}")

    rules = mine_association_rules(
        baskets, min_support=SUPPORT, min_confidence=0.4
    )
    print(f"\n{len(rules)} rules at support >= {SUPPORT}, confidence >= 0.4")
    print("\nTop rules by confidence:")
    for rule in rules[:8]:
        print(f"  {rule}")

    # The paper's caveat: "whether people who buy beer are especially
    # likely to buy diapers, or whether they buy diapers just because
    # everybody buys diapers."  High-confidence rules into the most
    # popular item are often uninteresting (lift ~= 1).
    popular = max(
        baskets.column_values("Item"),
        key=lambda item: sum(1 for row in baskets.tuples if row[1] == item),
    )
    into_popular = rules_for_consequent(rules, popular)
    if into_popular:
        print(f"\nRules predicting the most popular item ({popular}):")
        for rule in into_popular[:4]:
            verdict = (
                "interesting" if rule.is_interesting(0.25) else
                "confidence without interest"
            )
            print(f"  {rule}  <- {verdict}")

    interesting = mine_association_rules(
        baskets, min_support=SUPPORT, min_confidence=0.4,
        min_interest_deviation=0.25,
    )
    print(
        "\nwith the two-sided interest filter (|lift-1| >= 0.25): "
        f"{len(interesting)} of {len(rules)} rules survive"
    )

    maximal = mine_maximal_itemsets(db, support=SUPPORT)
    total = sum(len(s) for s in maximal.values())
    print(f"\n{total} maximal frequent itemsets (footnote 2's flock sequence):")
    for size in sorted(maximal, reverse=True):
        sample = sorted(maximal[size], key=lambda s: sorted(s))[:3]
        for itemset in sample:
            print(f"  k={size}: {{{', '.join(sorted(itemset))}}}")


if __name__ == "__main__":
    main()
