#!/usr/bin/env python3
"""The pathological path flock and its n+1-step chained plan
(paper Example 4.3 / Figs. 6-7).

The flock asks, for each node $1: does it have at least 20 successors X
from which a directed path of length n extends?  Its plan space is not
exponentially bounded — the Fig. 7 chain filters $1 once per path level
— and this example executes that chain, showing the candidate set of
$1 values shrinking level by level.

Run:  python examples/path_queries.py
"""

import time

from repro import evaluate_flock, execute_plan
from repro.flocks import fig6_flock, fig7_plan, single_step_plan
from repro.workloads import generate_hub_digraph

SUPPORT = 20
N_HOPS = 3


def main() -> None:
    db = generate_hub_digraph(
        n_hubs=25, successors_per_hub=40, core_nodes=300,
        core_out_degree=3, noise_nodes=2000, noise_arcs=4000, seed=13,
    )
    print(f"database: {db}")

    flock = fig6_flock(N_HOPS, support=SUPPORT)
    print(f"\nThe path flock (Fig. 6, n={N_HOPS}):\n{flock}\n")

    started = time.perf_counter()
    naive = evaluate_flock(db, flock)
    naive_ms = (time.perf_counter() - started) * 1e3
    print(f"[naive]   {len(naive)} qualifying nodes in {naive_ms:.1f} ms")

    # The Fig. 7 chain: ok0 uses one subgoal, ok1 uses two + ok0, ...
    plan = fig7_plan(flock)
    print(f"\nThe Fig. 7 chained plan ({len(plan)} steps):")
    print(plan.render(flock))

    started = time.perf_counter()
    result = execute_plan(db, flock, plan, validate=False)
    chain_ms = (time.perf_counter() - started) * 1e3
    print(f"\n[chained] {len(result)} qualifying nodes in {chain_ms:.1f} ms")
    print("\nper-level survivor counts (candidate $1 values):")
    for step in result.trace.steps:
        print(f"  {step}")

    plain = execute_plan(db, flock, single_step_plan(flock), validate=False)
    print(
        f"\nfinal-join answer tuples: {plain.trace.steps[-1].input_tuples} "
        f"(naive) vs {result.trace.steps[-1].input_tuples} (chained)"
    )

    assert result.relation == naive
    hubs = sorted(row[0] for row in naive.tuples)[:10]
    print(f"\nsample qualifying nodes: {hubs}")


if __name__ == "__main__":
    main()
