#!/usr/bin/env python3
"""Quickstart: the Fig. 2 market-basket flock, four ways.

Builds a small Zipf basket database, then answers "which pairs of items
appear together in at least 20 baskets?" with:

1. the naive SQL-style evaluation (full self-join, then HAVING);
2. the brute-force generate-and-test semantics (tiny subset only);
3. the statically optimized a-priori plan;
4. the dynamic evaluator that decides filters from observed sizes.

All four agree; the optimized forms do far less join work.

Run:  python examples/quickstart.py
"""

from repro import (
    evaluate_flock,
    evaluate_flock_dynamic,
    execute_plan,
    optimize,
    parse_flock,
)
from repro.flocks import single_step_plan
from repro.workloads import basket_database

SUPPORT = 20

FLOCK_TEXT = """
QUERY:
answer(B) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    $1 < $2

FILTER:
COUNT(answer.B) >= 20
"""


def main() -> None:
    # A long-tailed catalog: most items never reach support, which is
    # exactly when the a-priori pre-filter pays off.
    db = basket_database(n_baskets=1500, n_items=2000, avg_basket_size=8,
                         skew=1.1, seed=42)
    print(f"database: {db}")

    flock = parse_flock(FLOCK_TEXT)
    print("\nThe query flock (paper Fig. 2 + the $1 < $2 tie-break):")
    print(flock)

    # 1. Naive evaluation — what a conventional SQL system would do.
    naive = evaluate_flock(db, flock)
    print(f"\n[naive]    {len(naive)} frequent pairs")

    # 2. The optimizer's a-priori plan.
    plan = optimize(db, flock)
    print("\nOptimized plan (the a-priori rewrite):")
    print(plan.render(flock))
    planned = execute_plan(db, flock, plan)
    print(f"\n[planned]  {len(planned)} frequent pairs; step trace:")
    print(planned.trace)

    baseline = execute_plan(db, flock, single_step_plan(flock))
    shrink = (
        baseline.trace.steps[-1].input_tuples
        / max(planned.trace.steps[-1].input_tuples, 1)
    )
    print(f"\nfinal-join answer tuples shrank {shrink:.1f}x vs the naive plan")

    # 3. Dynamic evaluation — filters chosen from observed sizes.
    dynamic, trace = evaluate_flock_dynamic(db, flock)
    print(f"\n[dynamic]  {len(dynamic)} frequent pairs; decisions:")
    print(trace)

    assert planned.relation == naive
    assert dynamic.relation == naive
    print("\nAll evaluators agree. Top pairs:")
    for a, b in sorted(naive.tuples)[:10]:
        print(f"  {a} + {b}")


if __name__ == "__main__":
    main()
