#!/usr/bin/env python3
"""Strongly connected words in a web corpus (paper Example 2.3 / Fig. 4).

The flock is a *union* of three conjunctive queries: two words count as
connected when they share a document title, or when one appears in an
anchor whose target's title contains the other.  The example shows:

* evaluating a union flock;
* Section 3.4's union upper bounds — one safe subquery per branch
  (Example 3.3's three subqueries for word $1);
* a legal union plan pre-filtering rare words, matching the naive result.

Run:  python examples/web_word_pairs.py
"""

import time

from repro import evaluate_flock, execute_plan
from repro.datalog import Parameter, union_subqueries_with_parameters
from repro.flocks import parse_flock, plan_from_subqueries
from repro.workloads import generate_webdocs

FLOCK_TEXT = """
QUERY:
answer(D) :-
    inTitle(D,$1) AND
    inTitle(D,$2) AND
    $1 < $2

answer(A) :-
    link(A,D1,D2) AND
    inAnchor(A,$1) AND
    inTitle(D2,$2) AND
    $1 < $2

answer(A) :-
    link(A,D1,D2) AND
    inAnchor(A,$2) AND
    inTitle(D2,$1) AND
    $1 < $2

FILTER:
COUNT(answer(*)) >= 20
"""


def main() -> None:
    workload = generate_webdocs(
        n_documents=2000, n_anchors=6000, vocabulary=800,
        n_planted=5, seed=11,
    )
    db = workload.db
    print(f"database: {db}")
    print(f"planted correlated pairs: {sorted(workload.planted_pairs)}")

    flock = parse_flock(FLOCK_TEXT)
    print("\nThe union flock (Fig. 4):")
    print(flock)

    started = time.perf_counter()
    naive = evaluate_flock(db, flock)
    naive_ms = (time.perf_counter() - started) * 1e3
    print(f"\n[naive] {len(naive)} connected pairs in {naive_ms:.1f} ms")

    # Example 3.3: the union bound for word $1 — one subquery per branch.
    candidates = union_subqueries_with_parameters(flock.query, [Parameter("1")])
    bound = candidates[0]
    print("\nExample 3.3's union subqueries for $1 (one per branch):")
    for branch in bound.branches:
        print(f"  {branch.query}")

    plan = plan_from_subqueries(flock, [("okW", bound)])
    started = time.perf_counter()
    planned = execute_plan(db, flock, plan, validate=False)
    plan_ms = (time.perf_counter() - started) * 1e3
    print(f"\n[plan]  {len(planned)} connected pairs in {plan_ms:.1f} ms "
          "(pre-filtered rare words via okW)")

    assert planned.relation == naive
    recovered = set(naive.tuples) & workload.planted_pairs
    print(
        f"\nplanted pairs recovered: {len(recovered)}/{len(workload.planted_pairs)}"
    )
    for a, b in sorted(naive.tuples)[:10]:
        print(f"  {a} ~ {b}")


if __name__ == "__main__":
    main()
