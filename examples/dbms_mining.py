#!/usr/bin/env python3
"""Mining through a conventional DBMS (paper Section 1.4).

"We assume that the data is stored in a conventional relational system
and that mining occurs by issuing a sequence of SQL queries to the
database."  This example does exactly that with the SQLite backend:

1. load a word-occurrence corpus into SQLite;
2. issue the naive Fig. 1 SQL (what a DBMS user would write);
3. issue the Section 1.3 rewrite script (what a flock-aware optimizer
   would generate) and compare times;
4. contrast with the ad-hoc file-processing a-priori algorithm and the
   one-call ``mine()`` front door on the in-memory engine.

Run:  python examples/dbms_mining.py
"""

import time

from repro import mine
from repro.flocks import (
    SQLiteBackend,
    fig2_flock,
    frequent_pairs,
    itemset_plan,
    itemsets_from_flock_result,
)
from repro.workloads import article_database

SUPPORT = 20


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def main() -> None:
    db = article_database(
        n_articles=400, vocabulary=6000, words_per_article=50,
        skew=0.9, seed=99,
    )
    print(f"corpus: {db}")

    flock = fig2_flock(support=SUPPORT, ordered=True)
    plan = itemset_plan(flock)

    with SQLiteBackend(db) as backend:
        naive, naive_s = timed(lambda: backend.evaluate_flock(flock))
        rewritten, rewrite_s = timed(lambda: backend.execute_plan(flock, plan))
    assert naive == rewritten
    print(f"\nSQLite naive (Fig. 1 SQL):      {naive_s * 1e3:7.0f} ms, "
          f"{len(naive)} pairs")
    print(f"SQLite rewrite (Sec. 1.3 SQL):  {rewrite_s * 1e3:7.0f} ms  "
          f"-> {naive_s / rewrite_s:.1f}x faster")

    classic, classic_s = timed(
        lambda: frequent_pairs(db.get("baskets"), SUPPORT)
    )
    print(f"classic a-priori (file-based):  {classic_s * 1e3:7.0f} ms")
    assert classic == itemsets_from_flock_result(naive)

    (engine_result, report), engine_s = timed(lambda: mine(db, flock))
    print(f"mine() on the in-memory engine: {engine_s * 1e3:7.0f} ms "
          f"(strategy: {report.strategy_used})")
    assert engine_result == naive

    print("\nAll four agree. Sample pairs:")
    for a, b in sorted(naive.tuples)[:8]:
        print(f"  {a} + {b}")


if __name__ == "__main__":
    main()
