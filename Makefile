# Convenience targets for the query-flocks reproduction.

PYTHON ?= python

.PHONY: install test stress bench bench-json examples lint lint-flocks conlint clean outputs

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Full static gate: style, types, and the concurrency analyzer.
lint:
	$(PYTHON) -m ruff check src tests benchmarks examples
	$(PYTHON) -m mypy src/repro
	PYTHONPATH=src $(PYTHON) -m repro.analysis.conlint src/repro

# Just the concurrency lint (no third-party tools needed).
conlint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis.conlint src/repro

# Failure-path suite: fault injection, retries, graceful degradation.
stress:
	$(PYTHON) -m pytest -m faults tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Machine-readable sweeps: writes BENCH_parallel.json (workload x jobs
# x wall-ms x survivors), BENCH_recovery.json (checkpoint overhead and
# warm-resume vs cold re-mine), and BENCH_optimizer.json (join-order
# mode x runtime-filter sweep with the UES-vs-greedy headline).
bench-json:
	$(PYTHON) -m pytest benchmarks/bench_parallel_scaling.py \
		benchmarks/bench_recovery_overhead.py \
		benchmarks/bench_optimizer_modes.py \
		--benchmark-only -s

examples:
	@for f in examples/*.py; do \
		echo "=== $$f ==="; \
		$(PYTHON) $$f || exit 1; \
	done

# The deliverable outputs referenced by the project brief.
outputs:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
