"""End-to-end reproduction of each figure and worked example of the paper.

One test class per paper artifact; the assertions pin down the exact
structures the paper exhibits (counts of subqueries, plan shapes, filter
decisions), evaluated over generated workloads.
"""

import pytest

from repro.datalog import Parameter, safe_subqueries, union_subqueries_with_parameters, unsafe_subqueries
from repro.datalog.subqueries import SubqueryCandidate
from repro.flocks import (
    QueryFlock,
    chained_plan,
    evaluate_flock,
    evaluate_flock_dynamic,
    execute_plan,
    fig1_sql,
    flock_to_sql,
    itemset_flock,
    itemset_plan,
    parse_flock,
    plan_from_subqueries,
    support_filter,
    validate_plan,
)
from repro.workloads import (
    basket_database,
    generate_hub_digraph,
    generate_medical,
    generate_webdocs,
    generate_weighted_baskets,
)
from tests.conftest import path_query


@pytest.fixture(scope="module")
def basket_db():
    return basket_database(n_baskets=400, n_items=100, skew=1.2, seed=1)


@pytest.fixture(scope="module")
def medical():
    return generate_medical(n_patients=600, seed=2)


@pytest.fixture(scope="module")
def web():
    return generate_webdocs(n_documents=300, n_anchors=600, seed=3)


class TestFig1AndFig2:
    """The market-basket flock (Fig. 2) and its SQL form (Fig. 1)."""

    def test_flock_text_parses_and_runs(self, basket_db):
        flock = parse_flock(
            """
            QUERY:
            answer(B) :-
                baskets(B,$1) AND
                baskets(B,$2) AND
                $1 < $2

            FILTER:
            COUNT(answer.B) >= 20
            """
        )
        result = evaluate_flock(basket_db, flock)
        # The Zipf head items co-occur well past support 20.
        assert len(result) > 0
        for a, b in result.tuples:
            assert a < b

    def test_sql_translation_mirrors_fig1(self, basket_db):
        flock = itemset_flock(2, support=20)
        sql = flock_to_sql(flock, basket_db)
        for fragment in ("GROUP BY", "HAVING", "baskets t0, baskets t1"):
            assert fragment in sql
        assert "FROM baskets i1, baskets i2" in fig1_sql()

    def test_apriori_rewrite_equals_naive(self, basket_db):
        flock = itemset_flock(2, support=20)
        naive = evaluate_flock(basket_db, flock)
        rewritten = execute_plan(basket_db, flock, itemset_plan(flock))
        assert rewritten.relation == naive

    def test_prefilter_reduces_join_input(self, basket_db):
        """The Section 1.3 mechanism: frequent-item pre-filtering must
        shrink the self-join's answer relation."""
        flock = itemset_flock(2, support=20)
        from repro.flocks import single_step_plan

        plain = execute_plan(basket_db, flock, single_step_plan(flock))
        rewritten = execute_plan(basket_db, flock, itemset_plan(flock))
        assert (
            rewritten.trace.steps[-1].input_tuples
            < plain.trace.steps[-1].input_tuples
        )


class TestFig3Example22:
    """The medical side-effect flock with negation."""

    def test_flock_finds_planted_side_effects(self, medical):
        flock = parse_flock(
            """
            QUERY:
            answer(P) :-
                exhibits(P,$s) AND
                treatments(P,$m) AND
                diagnoses(P,D) AND
                NOT causes(D,$s)

            FILTER:
            COUNT(answer.P) >= 20
            """
        )
        result = evaluate_flock(medical.db, flock)
        found = {(s, m) for m, s in result.tuples}
        recovered = medical.planted_pairs & found
        assert recovered, "no planted side-effect recovered at support 20"


class TestExample32:
    """14 nontrivial subsets, 8 safe, and the four named candidates."""

    def test_counts(self, medical_query):
        assert len(safe_subqueries(medical_query)) == 8
        assert len(unsafe_subqueries(medical_query)) == 6

    def test_candidate_interpretations(self, medical_query):
        texts = {str(c.query) for c in safe_subqueries(medical_query)}
        # (1) at least 20 patients exhibit the symptom
        assert "answer(P) :- exhibits(P, $s)" in texts
        # (2) at least 20 patients take the medicine
        assert "answer(P) :- treatments(P, $m)" in texts
        # (3) 20 patients with a disease not causing an exhibited symptom
        assert (
            "answer(P) :- exhibits(P, $s) AND diagnoses(P, D) AND "
            "NOT causes(D, $s)" in texts
        )
        # (4) 20 patients take the medicine and exhibit the symptom
        assert "answer(P) :- exhibits(P, $s) AND treatments(P, $m)" in texts


class TestFig4Example33:
    """The union flock and its per-branch $1 subqueries."""

    def test_union_flock_runs(self, web):
        flock = parse_flock(
            """
            QUERY:
            answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
            answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND
                         inTitle(D2,$2) AND $1 < $2
            answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND
                         inTitle(D2,$1) AND $1 < $2

            FILTER:
            COUNT(answer(*)) >= 20
            """
        )
        result = evaluate_flock(web.db, flock)
        found = set(result.tuples)
        assert found & web.planted_pairs

    def test_example33_branch_subqueries(self, web_union_query):
        cands = union_subqueries_with_parameters(
            web_union_query, [Parameter("1")]
        )
        best = cands[0]
        assert [str(b.query) for b in best.branches] == [
            "answer(D) :- inTitle(D, $1)",
            "answer(A) :- inAnchor(A, $1)",
            "answer(A) :- link(A, D1, D2) AND inTitle(D2, $1)",
        ]

    def test_union_plan_correct(self, web, web_union_query):
        flock = QueryFlock(web_union_query, support_filter(20))
        cands = union_subqueries_with_parameters(web_union_query, [Parameter("1")])
        plan = plan_from_subqueries(flock, [("okW", cands[0])])
        naive = evaluate_flock(web.db, flock)
        planned = execute_plan(web.db, flock, plan)
        assert planned.relation == naive


class TestFig5Examples4142:
    """The three-step medical plan and its legality."""

    def test_fig5_plan_built_and_rendered(self, medical_query):
        flock = QueryFlock(medical_query, support_filter(20, target="P"))
        chosen = [
            ("okS", SubqueryCandidate((0,), medical_query.with_body_subset([0]))),
            ("okM", SubqueryCandidate((1,), medical_query.with_body_subset([1]))),
        ]
        plan = plan_from_subqueries(flock, chosen)
        validate_plan(flock, plan)
        text = plan.render(flock)
        assert "okS($s) := FILTER($s," in text
        assert "okM($m) := FILTER($m," in text
        assert "okS($s)" in str(plan.final_step.query)
        assert "okM($m)" in str(plan.final_step.query)

    def test_fig5_plan_equals_naive_on_workload(self, medical, medical_query):
        flock = QueryFlock(medical_query, support_filter(20, target="P"))
        chosen = [
            ("okS", SubqueryCandidate((0,), medical_query.with_body_subset([0]))),
            ("okM", SubqueryCandidate((1,), medical_query.with_body_subset([1]))),
        ]
        plan = plan_from_subqueries(flock, chosen)
        naive = evaluate_flock(medical.db, flock)
        planned = execute_plan(medical.db, flock, plan)
        assert planned.relation == naive


class TestFig6Fig7Example43:
    """The pathological path flock and its n+1-step chained plan."""

    @pytest.fixture(scope="class")
    def graph_db(self):
        return generate_hub_digraph(seed=4)

    def test_path_flock_finds_hubs(self, graph_db):
        n = 2
        query = path_query(n)
        flock = QueryFlock(query, support_filter(20, target="X"))
        result = evaluate_flock(graph_db, flock)
        hubs = {row[0] for row in result.tuples}
        # All planted hubs (ids 0..19 with 30 successors into the
        # densely connected core) must qualify.
        assert set(range(20)) <= hubs

    def test_chained_plan_matches_naive(self, graph_db):
        n = 2
        query = path_query(n)
        flock = QueryFlock(query, support_filter(20, target="X"))
        chain = [
            (
                f"ok{level - 1}",
                SubqueryCandidate(
                    tuple(range(level)), query.with_body_subset(range(level))
                ),
            )
            for level in range(1, len(query.body) + 1)
        ]
        plan = chained_plan(flock, chain)
        assert len(plan) == n + 2  # n+1 chain levels + final
        naive = evaluate_flock(graph_db, flock)
        planned = execute_plan(graph_db, flock, plan)
        assert planned.relation == naive

    def test_chain_renders_like_fig7(self, graph_db):
        query = path_query(2)
        flock = QueryFlock(query, support_filter(20, target="X"))
        chain = [
            (
                f"ok{level - 1}",
                SubqueryCandidate(
                    tuple(range(level)), query.with_body_subset(range(level))
                ),
            )
            for level in range(1, len(query.body) + 1)
        ]
        plan = chained_plan(flock, chain)
        text = plan.render(flock)
        assert "ok0($1) := FILTER($1," in text
        assert "ok0($1) AND arc($1, X) AND arc(X, Y1)" in text


class TestFig8Fig9Example44:
    """Dynamic evaluation on the medical example."""

    def test_dynamic_matches_naive(self, medical, medical_query):
        flock = QueryFlock(medical_query, support_filter(20, target="P"))
        naive = evaluate_flock(medical.db, flock)
        result, trace = evaluate_flock_dynamic(medical.db, flock)
        assert result.relation == naive
        assert trace.decisions[-1].node == "root"

    def test_trace_reports_ratios_like_example44(self, medical, medical_query):
        flock = QueryFlock(medical_query, support_filter(20, target="P"))
        _, trace = evaluate_flock_dynamic(medical.db, flock)
        # Example 4.4 reasons about the exhibits leaf ($s) and the
        # treatments leaf ($m); both decisions must be recorded.
        seen_params = {d.parameter_columns for d in trace.decisions}
        assert ("$s",) in seen_params or ("$m",) in seen_params


class TestFig10MonotoneSum:
    """The weighted-basket future-work flock."""

    @pytest.fixture(scope="class")
    def weighted_db(self):
        return generate_weighted_baskets(300, 80, skew=1.2, seed=5)

    def test_weighted_flock_runs(self, weighted_db):
        flock = parse_flock(
            """
            QUERY:
            answer(B,W) :-
                baskets(B,$1) AND
                baskets(B,$2) AND
                importance(B,W) AND
                $1 < $2

            FILTER:
            SUM(answer.W) >= 20
            """
        )
        assert flock.filter.is_monotone
        result = evaluate_flock(weighted_db, flock)
        assert len(result) > 0

    def test_weighted_prefilter_plan_sound(self, weighted_db):
        flock = parse_flock(
            """
            QUERY:
            answer(B,W) :-
                baskets(B,$1) AND
                baskets(B,$2) AND
                importance(B,W) AND
                $1 < $2

            FILTER:
            SUM(answer.W) >= 40
            """
        )
        rule = flock.rules[0]
        # Pre-filter $1 with the safe subquery baskets(B,$1) AND
        # importance(B,W): SUM of weights per item.
        candidate = SubqueryCandidate((0, 2), rule.with_body_subset([0, 2]))
        plan = plan_from_subqueries(flock, [("okW1", candidate)])
        naive = evaluate_flock(weighted_db, flock)
        planned = execute_plan(weighted_db, flock, plan)
        assert planned.relation == naive
