"""Pin the rendered figure artifacts to the paper's literal structure.

These tests freeze the *textual* form of the reproduced figures — if a
refactor changes how a flock or plan renders, the diff here shows
exactly how the artifact moved away from the paper.
"""

from repro.flocks import (
    fig1_sql,
    fig2_flock,
    fig3_flock,
    fig4_flock,
    fig5_plan,
    fig6_flock,
    fig7_plan,
    fig10_flock,
)


class TestFigureText:
    def test_fig2_text(self):
        assert str(fig2_flock()) == (
            "QUERY:\n"
            "answer(B) :- baskets(B, $1) AND baskets(B, $2)\n"
            "\n"
            "FILTER:\n"
            "COUNT(answer.B) >= 20"
        )

    def test_fig3_text(self):
        assert str(fig3_flock()) == (
            "QUERY:\n"
            "answer(P) :- exhibits(P, $s) AND treatments(P, $m) AND "
            "diagnoses(P, D) AND NOT causes(D, $s)\n"
            "\n"
            "FILTER:\n"
            "COUNT(answer.P) >= 20"
        )

    def test_fig4_text(self):
        text = str(fig4_flock())
        assert text == (
            "QUERY:\n"
            "answer(D) :- inTitle(D, $1) AND inTitle(D, $2) AND $1 < $2\n"
            "answer(A) :- link(A, D1, D2) AND inAnchor(A, $1) AND "
            "inTitle(D2, $2) AND $1 < $2\n"
            "answer(A) :- link(A, D1, D2) AND inAnchor(A, $2) AND "
            "inTitle(D2, $1) AND $1 < $2\n"
            "\n"
            "FILTER:\n"
            "COUNT(answer(*)) >= 20"
        )

    def test_fig5_text(self):
        flock = fig3_flock()
        assert fig5_plan(flock).render(flock) == (
            "okS($s) := FILTER($s,\n"
            "    answer(P) :- exhibits(P, $s),\n"
            "    COUNT(answer.P) >= 20\n"
            ");\n"
            "okM($m) := FILTER($m,\n"
            "    answer(P) :- treatments(P, $m),\n"
            "    COUNT(answer.P) >= 20\n"
            ");\n"
            "ok($m, $s) := FILTER(($m, $s),\n"
            "    answer(P) :- exhibits(P, $s) AND treatments(P, $m) AND "
            "diagnoses(P, D) AND NOT causes(D, $s) AND okS($s) AND okM($m),\n"
            "    COUNT(answer.P) >= 20\n"
            ");"
        )

    def test_fig6_text(self):
        assert str(fig6_flock(2).query) == (
            "answer(X) :- arc($1, X) AND arc(X, Y1) AND arc(Y1, Y2)"
        )

    def test_fig7_step_structure(self):
        flock = fig6_flock(2)
        plan = fig7_plan(flock)
        rendered = plan.render(flock)
        # ok0 from the first subgoal alone; ok1 = ok0 + two arcs; the
        # paper's Fig. 7 chain, level by level.
        assert "ok0($1) := FILTER($1,\n    answer(X) :- arc($1, X)," in rendered
        assert (
            "ok1($1) := FILTER($1,\n"
            "    answer(X) :- ok0($1) AND arc($1, X) AND arc(X, Y1),"
        ) in rendered
        assert (
            "ok2($1) := FILTER($1,\n"
            "    answer(X) :- ok1($1) AND arc($1, X) AND arc(X, Y1) AND "
            "arc(Y1, Y2),"
        ) in rendered

    def test_fig10_text(self):
        assert str(fig10_flock()) == (
            "QUERY:\n"
            "answer(B, W) :- baskets(B, $1) AND baskets(B, $2) AND "
            "importance(B, W)\n"
            "\n"
            "FILTER:\n"
            "SUM(answer.W) >= 20"
        )

    def test_fig1_literal(self):
        assert fig1_sql() == (
            "SELECT i1.Item, i2.Item\n"
            "FROM baskets i1, baskets i2\n"
            "WHERE i1.Item < i2.Item AND\n"
            "      i1.BID = i2.BID\n"
            "GROUP BY i1.Item, i2.Item\n"
            "HAVING 20 <= COUNT(i1.BID)"
        )
