"""Execution guards: budgets, cancellation, and partial-trace semantics.

Acceptance surface of the resilience layer: a flock evaluated under a
ResourceBudget aborts promptly on all four strategies and both backends,
raising BudgetExceededError with a non-empty partial trace; a
CancellationToken stops any evaluation at its next checkpoint.
"""

import pytest

from repro import (
    BudgetExceededError,
    CancellationToken,
    EvaluationError,
    ExecutionCancelled,
    ExecutionGuard,
    ParseError,
    ResourceBudget,
    evaluate_flock,
    evaluate_flock_dynamic,
    mine,
    optimize,
)
from repro.errors import ExecutionAborted, ReproError
from repro.flocks import SQLiteBackend, evaluate_flock_sqlite, execute_plan_sqlite
from repro.guard import as_guard


ALL_STRATEGIES = ("naive", "optimized", "stats", "dynamic")


class TestResourceBudget:
    def test_unbounded_by_default(self):
        assert ResourceBudget().is_unbounded

    @pytest.mark.parametrize(
        "kwargs",
        [{"seconds": -1}, {"max_intermediate_rows": -1}, {"max_answer_rows": -5}],
    )
    def test_negative_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResourceBudget(**kwargs)

    def test_start_returns_fresh_guard_each_time(self):
        budget = ResourceBudget(seconds=100)
        first, second = budget.start(), budget.start()
        assert first is not second
        assert first.deadline is not None

    def test_guard_errors_subclass_repro_error(self):
        assert issubclass(BudgetExceededError, ExecutionAborted)
        assert issubclass(ExecutionCancelled, ExecutionAborted)
        assert issubclass(ExecutionAborted, ReproError)


class TestAsGuard:
    def test_none_passthrough(self):
        assert as_guard(None) is None

    def test_guard_passthrough(self):
        guard = ExecutionGuard()
        assert as_guard(guard) is guard

    def test_budget_coerces(self):
        guard = as_guard(ResourceBudget(seconds=10))
        assert isinstance(guard, ExecutionGuard)
        assert guard.remaining_seconds <= 10

    def test_token_coerces(self):
        token = CancellationToken()
        guard = as_guard(token)
        assert guard.cancel is token

    def test_junk_rejected(self):
        with pytest.raises(TypeError):
            as_guard(42)


class TestCancellationToken:
    def test_flag_semantics(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        token.cancel()  # idempotent
        assert token.cancelled
        assert "cancelled" in repr(token)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_cancel_stops_every_strategy(
        self, strategy, small_basket_db, basket_flock
    ):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(ExecutionCancelled) as exc:
            mine(small_basket_db, basket_flock, strategy=strategy, cancel=token)
        assert exc.value.trace is not None

    def test_cancel_stops_sqlite(self, small_basket_db, basket_flock):
        token = CancellationToken()
        token.cancel()
        with SQLiteBackend(small_basket_db) as backend:
            with pytest.raises(ExecutionCancelled):
                backend.evaluate_flock(basket_flock, guard=as_guard(token))


class TestWallClockBudget:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_zero_deadline_aborts_every_strategy(
        self, strategy, small_basket_db, basket_flock
    ):
        with pytest.raises(BudgetExceededError) as exc:
            mine(
                small_basket_db,
                basket_flock,
                strategy=strategy,
                budget=ResourceBudget(seconds=0),
            )
        assert exc.value.limit == "seconds"
        assert exc.value.trace is not None
        assert len(exc.value.trace.steps) > 0, "partial trace must be non-empty"

    def test_zero_deadline_aborts_sqlite_naive(self, small_basket_db, basket_flock):
        with pytest.raises(BudgetExceededError) as exc:
            evaluate_flock_sqlite(
                small_basket_db, basket_flock, guard=ResourceBudget(seconds=0)
            )
        assert exc.value.limit == "seconds"
        assert len(exc.value.trace.steps) > 0

    def test_zero_deadline_aborts_sqlite_plan(self, small_basket_db, basket_flock):
        plan = optimize(small_basket_db, basket_flock)
        with pytest.raises(BudgetExceededError) as exc:
            execute_plan_sqlite(
                small_basket_db, basket_flock, plan,
                guard=ResourceBudget(seconds=0),
            )
        assert len(exc.value.trace.steps) > 0

    def test_generous_deadline_does_not_interfere(
        self, small_basket_db, basket_flock
    ):
        unbudgeted = evaluate_flock(small_basket_db, basket_flock)
        budgeted = evaluate_flock(
            small_basket_db, basket_flock, guard=ResourceBudget(seconds=300)
        )
        assert budgeted == unbudgeted


class TestRowBudgets:
    def test_intermediate_row_budget_aborts(self, small_basket_db, basket_flock):
        with pytest.raises(BudgetExceededError) as exc:
            evaluate_flock(
                small_basket_db,
                basket_flock,
                guard=ResourceBudget(max_intermediate_rows=1),
            )
        assert exc.value.limit == "intermediate_rows"

    def test_answer_row_budget_aborts(self, small_basket_db, basket_flock):
        full = evaluate_flock(small_basket_db, basket_flock)
        assert len(full) >= 2  # sanity: budget below is genuinely binding
        with pytest.raises(BudgetExceededError) as exc:
            evaluate_flock(
                small_basket_db,
                basket_flock,
                guard=ResourceBudget(max_answer_rows=len(full) - 1),
            )
        assert exc.value.limit == "answer_rows"

    def test_sufficient_row_budget_matches_unbudgeted(
        self, small_basket_db, basket_flock
    ):
        unbudgeted = evaluate_flock(small_basket_db, basket_flock)
        guard = ResourceBudget(max_intermediate_rows=10**9).start()
        budgeted = evaluate_flock(small_basket_db, basket_flock, guard=guard)
        assert budgeted == unbudgeted
        assert guard.high_water_rows > 0

    def test_high_water_mark_is_a_binding_threshold(
        self, small_basket_db, basket_flock
    ):
        """Budgeting one row below the observed high-water mark aborts."""
        probe = ResourceBudget().start()
        evaluate_flock(small_basket_db, basket_flock, guard=probe)
        high = probe.high_water_rows
        assert high > 0
        with pytest.raises(BudgetExceededError):
            evaluate_flock(
                small_basket_db,
                basket_flock,
                guard=ResourceBudget(max_intermediate_rows=high - 1),
            )


class TestGuardSharing:
    def test_one_guard_spans_strategies(self, small_basket_db, basket_flock):
        """A shared guard accumulates trace across evaluations."""
        guard = ResourceBudget().start()
        evaluate_flock(small_basket_db, basket_flock, guard=guard)
        after_first = len(guard.trace.steps)
        evaluate_flock_dynamic(small_basket_db, basket_flock, guard=guard)
        assert len(guard.trace.steps) > after_first

    def test_mine_rejects_guard_plus_budget(self, small_basket_db, basket_flock):
        with pytest.raises(ValueError):
            mine(
                small_basket_db,
                basket_flock,
                guard=ExecutionGuard(),
                budget=ResourceBudget(seconds=1),
            )


class TestErrorDiagnostics:
    def test_parse_error_renders_caret(self):
        error = ParseError("unexpected token", text="answer(B :- x", position=9)
        rendered = str(error)
        lines = rendered.split("\n")
        assert lines[0] == "unexpected token"
        assert lines[1].strip() == "answer(B :- x"
        assert lines[2].index("^") == 2 + 9  # two-space indent + position

    def test_parse_error_caret_multiline_text(self):
        error = ParseError("bad filter", text="QUERY:\nanswerB", position=10)
        rendered = str(error)
        assert "answerB" in rendered
        assert rendered.split("\n")[-1].index("^") == 2 + 3

    def test_parse_error_without_position_is_plain(self):
        assert str(ParseError("oops", text="zzz")) == "oops"

    def test_evaluation_error_carries_sql(self):
        error = EvaluationError("SQLite error: no such table", sql="SELECT 1")
        assert error.sql == "SELECT 1"
        assert "while executing: SELECT 1" in str(error)


class TestDeadlineEdgeCases:
    """The deadline arithmetic the retry supervisor leans on: behaviour
    exactly at, and past, the wall-clock boundary."""

    def test_remaining_seconds_unbounded_is_none(self):
        guard = ResourceBudget().start()
        assert guard.remaining_seconds is None

    def test_remaining_seconds_never_negative(self):
        guard = ResourceBudget(seconds=0.0).start()
        # already at (or past) the deadline: clamped to zero, not negative
        assert guard.remaining_seconds == 0.0

    def test_remaining_seconds_decreases_monotonically(self):
        import time

        guard = ResourceBudget(seconds=60.0).start()
        first = guard.remaining_seconds
        time.sleep(0.01)
        second = guard.remaining_seconds
        assert second < first <= 60.0

    def test_clamp_sleep_unbounded_passes_through(self):
        guard = ResourceBudget().start()
        assert guard.clamp_sleep(123.0) == 123.0

    def test_clamp_sleep_bounded_by_remaining(self):
        guard = ResourceBudget(seconds=60.0).start()
        clamped = guard.clamp_sleep(10_000.0)
        assert 0 < clamped <= 60.0

    def test_clamp_sleep_zero_at_expired_deadline(self):
        guard = ResourceBudget(seconds=0.0).start()
        assert guard.clamp_sleep(5.0) == 0.0

    def test_clamp_sleep_rejects_negative_as_zero(self):
        guard = ResourceBudget(seconds=60.0).start()
        assert guard.clamp_sleep(-3.0) == 0.0

    def test_checkpoint_raises_exactly_at_deadline(self):
        guard = ResourceBudget(seconds=0.0).start()
        with pytest.raises(BudgetExceededError) as exc:
            guard.checkpoint(node="edge")
        assert exc.value.limit == "seconds"
        assert exc.value.node == "edge"

    def test_child_budget_unbounded_is_none(self):
        guard = ResourceBudget().start()
        assert guard.child_budget() is None

    def test_child_budget_carries_remaining_not_original(self):
        import time

        guard = ResourceBudget(seconds=60.0).start()
        time.sleep(0.01)
        child = guard.child_budget()
        assert child is not None
        assert child.seconds is not None
        assert child.seconds < 60.0

    def test_child_budget_nearly_exhausted_stays_nonnegative(self):
        guard = ResourceBudget(seconds=0.0).start()
        child = guard.child_budget()
        assert child is not None
        assert child.seconds == 0.0
        # ...and a guard started from it aborts at its first checkpoint
        with pytest.raises(BudgetExceededError):
            child.start().checkpoint(node="child")

    def test_child_budget_preserves_row_caps(self):
        guard = ResourceBudget(
            seconds=60.0, max_intermediate_rows=100, max_answer_rows=10
        ).start()
        child = guard.child_budget()
        assert child.max_intermediate_rows == 100
        assert child.max_answer_rows == 10

    def test_supervisor_backoff_never_sleeps_past_deadline(self):
        """The cross-layer contract: RetrySupervisor.backoff sleeps are
        clamp_sleep()-bounded, so total backoff can never overshoot the
        budget the retry is trying to save."""
        from repro import RetryPolicy, RetrySupervisor

        guard = ResourceBudget(seconds=1.0).start()
        supervisor = RetrySupervisor(
            RetryPolicy(max_attempts=10, base_delay=5.0, jitter=0.0),
            guard=guard,
            sleep=lambda _s: None,
        )
        supervisor.backoff(1, site="edge")
        supervisor.backoff(2, site="edge")
        assert all(s <= 1.0 for s in supervisor.slept)
