"""Tests for intermediate predicates (the Example 2.2 extension)."""

import pytest

from repro.datalog import Program, materialize_views, negated, parse_rule, rule
from repro.errors import EvaluationError, SafetyError
from repro.flocks import QueryFlock, evaluate_flock, support_filter
from repro.relational import database_from_dict


@pytest.fixture
def multi_disease_db():
    """Patient 1 has TWO diseases; flu causes fever, pox causes rash.
    Under the naive Fig. 3 flock (one diagnosis joined per row), the
    rash would look unexplained via the flu row — the intermediate
    'explained' predicate fixes that."""
    return database_from_dict(
        {
            "diagnoses": (
                ("P", "D"),
                [(1, "flu"), (1, "pox"), (2, "flu"), (3, "flu")],
            ),
            "exhibits": (
                ("P", "S"),
                [(1, "fever"), (1, "rash"), (2, "rash"), (3, "rash")],
            ),
            "treatments": (
                ("P", "M"),
                [(1, "aspirin"), (2, "aspirin"), (3, "aspirin")],
            ),
            "causes": (("D", "S"), [("flu", "fever"), ("pox", "rash")]),
        }
    )


EXPLAINED = parse_rule("explained(P, S) :- diagnoses(P, D) AND causes(D, S)")


class TestProgramValidation:
    def test_builds(self):
        Program((EXPLAINED,))

    def test_unsafe_rule_rejected(self):
        bad = rule("v", ["X"], [negated("r", "X")])
        with pytest.raises(SafetyError):
            Program((bad,))

    def test_parameters_rejected(self):
        bad = parse_rule("v(P) :- r(P, $x)")
        with pytest.raises(SafetyError):
            Program((bad,))

    def test_arity_conflict_rejected(self):
        r1 = parse_rule("v(X) :- r(X, Y)")
        r2 = parse_rule("v(X, Y) :- r(X, Y)")
        with pytest.raises(EvaluationError):
            Program((r1, r2))

    def test_recursion_rejected(self):
        r1 = parse_rule("v(X) :- w(X)")
        r2 = parse_rule("w(X) :- v(X)")
        with pytest.raises(EvaluationError):
            Program((r1, r2))

    def test_self_recursion_rejected(self):
        r = parse_rule("v(X) :- v(X)")
        with pytest.raises(EvaluationError):
            Program((r,))


class TestMaterialize:
    def test_view_contents(self, multi_disease_db):
        scratch = materialize_views(multi_disease_db, [EXPLAINED])
        explained = scratch.get("explained")
        assert explained.columns == ("P", "S")
        assert (1, "fever") in explained
        assert (1, "rash") in explained   # via pox
        assert (2, "rash") not in explained

    def test_base_db_untouched(self, multi_disease_db):
        materialize_views(multi_disease_db, [EXPLAINED])
        assert "explained" not in multi_disease_db

    def test_union_of_rules_same_head(self):
        db = database_from_dict(
            {"r": (("X",), [(1,)]), "s": (("X",), [(2,)])}
        )
        r1 = parse_rule("v(X) :- r(X)")
        r2 = parse_rule("v(Y) :- s(Y)")
        scratch = materialize_views(db, [r1, r2])
        assert scratch.get("v").tuples == frozenset({(1,), (2,)})

    def test_layered_views(self):
        db = database_from_dict({"r": (("X", "Y"), [(1, 2), (2, 3)])})
        hop1 = parse_rule("hop1(X, Z) :- r(X, Y) AND r(Y, Z)")
        hop2 = parse_rule("hop2(X, Z) :- hop1(X, Y) AND r(Y, Z)")
        # Register out of order: topological sort must fix it.
        scratch = materialize_views(db, [hop2, hop1])
        assert scratch.get("hop1").tuples == frozenset({(1, 3)})
        assert len(scratch.get("hop2")) == 0

    def test_evaluation_order(self):
        hop1 = parse_rule("hop1(X, Z) :- r(X, Y) AND r(Y, Z)")
        hop2 = parse_rule("hop2(X, Z) :- hop1(X, Y) AND r(Y, Z)")
        program = Program((hop2, hop1))
        order = program.evaluation_order()
        assert order.index("hop1") < order.index("hop2")


class TestMultiDiseaseFlock:
    """The paper's motivating case for the extension."""

    def flock(self):
        query = parse_rule(
            "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
            "NOT explained(P,$s)"
        )
        return QueryFlock(query, support_filter(2, target="P"))

    def naive_fig3_flock(self):
        query = parse_rule(
            "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
            "diagnoses(P,D) AND NOT causes(D,$s)"
        )
        return QueryFlock(query, support_filter(2, target="P"))

    def test_view_flock_correct_for_multi_disease(self, multi_disease_db):
        scratch = materialize_views(multi_disease_db, [EXPLAINED])
        result = evaluate_flock(scratch, self.flock())
        # rash/aspirin unexplained only for patients 2 and 3 (patient
        # 1's rash is explained by pox): support 2 met.
        assert result.tuples == frozenset({("aspirin", "rash")})

    def test_naive_fig3_overcounts_multi_disease(self, multi_disease_db):
        """Demonstrates *why* the paper needs the extension: with one
        diagnosis joined per row, patient 1's rash pairs with the flu
        row and looks unexplained, inflating the count to 3."""
        from repro.flocks import flock_answer_relation

        answer = flock_answer_relation(multi_disease_db, self.naive_fig3_flock())
        rash_rows = {
            row for row in answer.tuples if row[1] == "rash"
        }
        patients = {row[2] for row in rash_rows}
        assert 1 in patients  # the spurious unexplained-rash witness
