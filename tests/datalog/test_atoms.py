"""Unit tests for repro.datalog.atoms."""

import pytest

from repro.datalog.atoms import ComparisonOp, RelationalAtom, atom, comparison, negated, subgoal_terms
from repro.datalog.terms import Parameter, Variable


class TestRelationalAtom:
    def test_constructor_helper(self):
        a = atom("baskets", "B", "$1")
        assert a.predicate == "baskets"
        assert a.terms == (Variable("B"), Parameter("1"))
        assert not a.negated

    def test_str(self):
        assert str(atom("baskets", "B", "$1")) == "baskets(B, $1)"

    def test_negated_str(self):
        assert str(negated("causes", "D", "$s")) == "NOT causes(D, $s)"

    def test_arity(self):
        assert atom("link", "A", "D1", "D2").arity == 3

    def test_bindable_terms_excludes_constants(self):
        a = atom("baskets", "B", "'beer'")
        assert a.bindable_terms() == (Variable("B"),)

    def test_variables_and_parameters(self):
        a = atom("exhibits", "P", "$s")
        assert a.variables() == frozenset({Variable("P")})
        assert a.parameters() == frozenset({Parameter("s")})

    def test_negate_round_trip(self):
        a = atom("causes", "D", "$s")
        assert a.negate().negated
        assert a.negate().negate() == a

    def test_with_positive_polarity(self):
        n = negated("causes", "D", "$s")
        assert not n.with_positive_polarity().negated
        p = atom("causes", "D", "$s")
        assert p.with_positive_polarity() is p

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            RelationalAtom("", (Variable("X"),))


class TestComparisonOp:
    def test_from_symbol(self):
        assert ComparisonOp.from_symbol("<") is ComparisonOp.LT
        assert ComparisonOp.from_symbol(">=") is ComparisonOp.GE
        assert ComparisonOp.from_symbol("==") is ComparisonOp.EQ
        assert ComparisonOp.from_symbol("<>") is ComparisonOp.NE

    def test_from_symbol_unknown(self):
        with pytest.raises(ValueError):
            ComparisonOp.from_symbol("~")

    def test_flipped(self):
        assert ComparisonOp.LT.flipped() is ComparisonOp.GT
        assert ComparisonOp.EQ.flipped() is ComparisonOp.EQ

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (ComparisonOp.LT, 1, 2, True),
            (ComparisonOp.LT, 2, 1, False),
            (ComparisonOp.LE, 2, 2, True),
            (ComparisonOp.GT, 3, 2, True),
            (ComparisonOp.GE, 2, 3, False),
            (ComparisonOp.EQ, "a", "a", True),
            (ComparisonOp.NE, "a", "b", True),
        ],
    )
    def test_fn(self, op, a, b, expected):
        assert op.fn(a, b) is expected


class TestComparison:
    def test_constructor_helper(self):
        c = comparison("$1", "<", "$2")
        assert c.left == Parameter("1")
        assert c.op is ComparisonOp.LT
        assert c.right == Parameter("2")

    def test_str(self):
        assert str(comparison("$1", "<", "$2")) == "$1 < $2"

    def test_evaluate_with_binding(self):
        c = comparison("$1", "<", "$2")
        assert c.evaluate({Parameter("1"): "apple", Parameter("2"): "beer"})
        assert not c.evaluate({Parameter("1"): "beer", Parameter("2"): "apple"})

    def test_evaluate_with_constant_side(self):
        c = comparison("X", ">=", 20)
        assert c.evaluate({Variable("X"): 25})
        assert not c.evaluate({Variable("X"): 10})

    def test_evaluate_unbound_raises(self):
        c = comparison("X", "<", "Y")
        with pytest.raises(KeyError):
            c.evaluate({Variable("X"): 1})

    def test_bindable_terms(self):
        c = comparison("X", "<", 20)
        assert c.bindable_terms() == (Variable("X"),)


class TestSubgoalTerms:
    def test_collects_across_subgoals(self):
        sgs = [
            atom("baskets", "B", "$1"),
            atom("baskets", "B", "$2"),
            comparison("$1", "<", "$2"),
        ]
        assert subgoal_terms(sgs) == frozenset(
            {Variable("B"), Parameter("1"), Parameter("2")}
        )

    def test_empty(self):
        assert subgoal_terms([]) == frozenset()
