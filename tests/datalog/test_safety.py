"""Safety-condition tests, centered on the paper's Example 3.2."""

import pytest

from repro.datalog import (
    SafetyReport,
    SafetyRule,
    assert_safe,
    atom,
    binding_witnesses,
    check_safety,
    comparison,
    is_safe,
    negated,
    parse_rule,
    rule,
    safety_diagnostics,
    verify_safety_report,
    UnionQuery,
)
from repro.errors import SafetyError


class TestBasicSafety:
    def test_market_basket_query_is_safe(self, basket_query):
        assert is_safe(basket_query)

    def test_medical_query_is_safe(self, medical_query):
        assert is_safe(medical_query)

    def test_union_query_is_safe(self, web_union_query):
        assert is_safe(web_union_query)

    def test_head_variable_unbound_is_unsafe(self):
        q = rule("answer", ["X"], [atom("r", "Y")])
        report = check_safety(q)
        assert not report.is_safe
        assert report.violations[0].rule is SafetyRule.HEAD_VARIABLE

    def test_head_constant_is_fine(self):
        q = rule("answer", [1], [atom("r", "Y")])
        assert is_safe(q)

    def test_empty_body_with_variable_head_unsafe(self):
        q = rule("answer", ["X"], [])
        assert not is_safe(q)


class TestNegationSafety:
    def test_only_negated_subgoal_is_unsafe(self):
        # The paper: "answer(P) :- NOT causes(D,$s)" makes no sense.
        q = rule("answer", ["P"], [negated("causes", "D", "$s")])
        report = check_safety(q)
        assert not report.is_safe
        rules = {v.rule for v in report.violations}
        assert SafetyRule.HEAD_VARIABLE in rules
        assert SafetyRule.NEGATED_SUBGOAL in rules

    def test_negated_variable_needs_positive_binding(self):
        q = rule(
            "answer",
            ["P"],
            [atom("exhibits", "P", "$s"), negated("causes", "D", "$s")],
        )
        report = check_safety(q)
        assert not report.is_safe
        # D is unbound; $s is bound by exhibits.
        assert [str(v.term) for v in report.violations] == ["D"]

    def test_negated_parameter_needs_positive_binding(self):
        q = rule(
            "answer",
            ["P"],
            [atom("diagnoses", "P", "D"), negated("causes", "D", "$s")],
        )
        report = check_safety(q)
        assert not report.is_safe
        assert [str(v.term) for v in report.violations] == ["$s"]

    def test_fully_bound_negation_is_safe(self):
        q = rule(
            "answer",
            ["P"],
            [
                atom("diagnoses", "P", "D"),
                atom("exhibits", "P", "$s"),
                negated("causes", "D", "$s"),
            ],
        )
        assert is_safe(q)


class TestArithmeticSafety:
    def test_comparison_needs_positive_bindings(self):
        q = rule("answer", ["B"], [atom("baskets", "B", "$1"), comparison("$1", "<", "$2")])
        report = check_safety(q)
        assert not report.is_safe
        assert report.violations[0].rule is SafetyRule.ARITHMETIC_SUBGOAL
        assert str(report.violations[0].term) == "$2"

    def test_comparison_with_constant_side_is_safe(self):
        q = rule("answer", ["X"], [atom("scores", "X", "N"), comparison("N", ">=", 20)])
        assert is_safe(q)

    def test_ordered_basket_query_is_safe(self, basket_query_ordered):
        assert is_safe(basket_query_ordered)


class TestExample32:
    """Example 3.2: the 14 nontrivial subgoal subsets of the medical flock."""

    def test_head_only_condition_rules_out_one(self, medical_query):
        # Only {NOT causes(D,$s)} lacks P in a positive subgoal.
        q = medical_query.with_body_subset([3])
        assert not is_safe(q)

    def test_negation_requires_both_diagnoses_and_exhibits(self, medical_query):
        # NOT causes + diagnoses alone: $s unbound.
        assert not is_safe(medical_query.with_body_subset([2, 3]))
        # NOT causes + exhibits alone: D unbound.
        assert not is_safe(medical_query.with_body_subset([0, 3]))
        # NOT causes + treatments: both D and $s unbound.
        assert not is_safe(medical_query.with_body_subset([1, 3]))
        # All three positives + negation is the full query (safe).
        assert is_safe(medical_query.with_body_subset([0, 1, 2, 3]))
        # exhibits + diagnoses + NOT causes: safe (subquery 3 of the paper).
        assert is_safe(medical_query.with_body_subset([0, 2, 3]))


class TestAssertSafe:
    def test_passes_for_safe(self, medical_query):
        assert_safe(medical_query)

    def test_raises_with_details(self):
        q = rule("answer", ["P"], [negated("causes", "D", "$s")])
        with pytest.raises(SafetyError) as exc:
            assert_safe(q)
        assert "D" in str(exc.value)

    def test_union_any_unsafe_rule_fails(self, basket_query):
        bad = rule("answer", ["B"], [negated("baskets", "B", "$1")])
        union = UnionQuery((basket_query, bad))
        assert not is_safe(union)
        with pytest.raises(SafetyError):
            assert_safe(union)

    def test_report_is_truthy_when_safe(self, basket_query):
        assert check_safety(basket_query)

    def test_violation_str_mentions_rule_number(self):
        q = parse_rule("answer(P) :- exhibits(P,$s) AND NOT causes(D,$s)")
        report = check_safety(q)
        assert "rule 2" in str(report.violations[0])


class TestSafetyEdgeCases:
    def test_parameter_bound_only_by_arithmetic_chain_is_unsafe(self):
        # $q reaches a relationally bound term only through the chain
        # $q < $p < N; arithmetic subgoals are not bindings, so both
        # parameters violate rule 3.
        q = rule(
            "answer",
            ["X"],
            [
                atom("scores", "X", "N"),
                comparison("$p", "<", "N"),
                comparison("$q", "<", "$p"),
            ],
        )
        report = check_safety(q)
        assert not report.is_safe
        assert {str(v.term) for v in report.violations} == {"$p", "$q"}
        assert all(
            v.rule is SafetyRule.ARITHMETIC_SUBGOAL for v in report.violations
        )

    def test_negation_only_body_violates_rules_1_and_2(self):
        q = rule("answer", ["X"], [negated("r", "X", "$p")])
        report = check_safety(q)
        assert {v.rule for v in report.violations} == {
            SafetyRule.HEAD_VARIABLE,
            SafetyRule.NEGATED_SUBGOAL,
        }
        # Nothing is positively bound, so there are no witnesses either.
        assert report.witnesses == ()

    def test_union_branches_with_differing_safe_sets(self):
        safe = rule("answer", ["B"], [atom("r", "B", "$1")])
        unsafe = rule(
            "answer", ["B"],
            [atom("r", "B", "$1"), comparison("$1", "<", "$2")],
        )
        union = UnionQuery((safe, unsafe))
        # The union is unsafe as a whole, but per-branch reports differ:
        # branch 1 is fine, branch 2 leaves $2 unbound.
        assert not is_safe(union)
        assert check_safety(safe).is_safe
        report = check_safety(unsafe)
        assert [str(v.term) for v in report.violations] == ["$2"]


class TestSafetyWitnesses:
    def test_first_binding_subgoal_is_the_witness(self, basket_query):
        witnesses = binding_witnesses(basket_query)
        first, second = basket_query.body[0], basket_query.body[1]
        assert witnesses[basket_query.head_terms[0]] == first
        by_name = {str(t): sg for t, sg in witnesses.items()}
        assert by_name["$1"] == first
        assert by_name["$2"] == second

    def test_report_carries_witnesses(self, medical_query):
        report = check_safety(medical_query)
        assert report.is_safe
        witnessed = {str(t) for t, _ in report.witnesses}
        assert witnessed == {"P", "D", "$s", "$m"}

    def test_verify_roundtrip_safe_and_unsafe(self, medical_query):
        assert verify_safety_report(check_safety(medical_query))
        unsafe = medical_query.with_body_subset([0, 3])
        assert verify_safety_report(check_safety(unsafe))

    def test_tampered_witness_rejected(self, basket_query):
        report = check_safety(basket_query)
        forged = SafetyReport(
            report.query,
            report.violations,
            ((report.witnesses[0][0], atom("zzz", "B")),)
            + report.witnesses[1:],
        )
        assert not verify_safety_report(forged)

    def test_suppressed_violation_rejected(self, medical_query):
        unsafe = medical_query.with_body_subset([0, 3])
        report = check_safety(unsafe)
        whitewashed = SafetyReport(
            report.query, (), report.witnesses
        )
        assert not verify_safety_report(whitewashed)


class TestSafetyDiagnostics:
    def test_codes_match_the_three_rules(self):
        q = rule(
            "answer",
            ["X"],
            [negated("r", "X"), comparison("$p", "<", 3)],
        )
        report = safety_diagnostics(check_safety(q), location="query")
        codes = {d.code for d in report}
        assert codes == {"safety-rule-1", "safety-rule-2", "safety-rule-3"}
        assert all(d.location == "query" for d in report)
        assert all("positive relational subgoal" in (d.hint or "")
                   for d in report)

    def test_safe_query_has_no_diagnostics(self, basket_query):
        assert len(safety_diagnostics(check_safety(basket_query))) == 0
