"""Safe-subquery enumeration tests, reproducing Examples 3.1–3.3."""


from repro.datalog import Parameter, parameter_subsets, safe_subqueries, safe_subqueries_with_parameters, minimal_safe_subqueries_with_parameters, subgoal_subsets, union_subqueries_with_parameters, unsafe_subqueries


class TestSubgoalSubsets:
    def test_nontrivial_count_for_four_subgoals(self, medical_query):
        # 2^4 - 2 = 14 nontrivial subsets (Example 3.2).
        assert len(list(subgoal_subsets(medical_query))) == 14

    def test_include_full_and_empty(self, medical_query):
        assert len(list(subgoal_subsets(medical_query, True, True))) == 16

    def test_sizes_ascending(self, medical_query):
        sizes = [len(s) for s in subgoal_subsets(medical_query)]
        assert sizes == sorted(sizes)


class TestExample31:
    """The basket flock has exactly two nontrivial subqueries, and they
    prune symmetric parameter sets."""

    def test_two_nontrivial_safe_subqueries(self, basket_query):
        candidates = safe_subqueries(basket_query)
        assert len(candidates) == 2
        texts = {str(c.query) for c in candidates}
        assert texts == {
            "answer(B) :- baskets(B, $1)",
            "answer(B) :- baskets(B, $2)",
        }

    def test_each_restricts_one_parameter(self, basket_query):
        by_params = {c.parameters for c in safe_subqueries(basket_query)}
        assert by_params == {
            frozenset({Parameter("1")}),
            frozenset({Parameter("2")}),
        }


class TestExample32:
    """Of the 14 nontrivial subsets, exactly 8 are safe and 6 unsafe."""

    def test_eight_safe(self, medical_query):
        assert len(safe_subqueries(medical_query)) == 8

    def test_six_unsafe(self, medical_query):
        assert len(unsafe_subqueries(medical_query)) == 6

    def test_papers_four_candidates_present(self, medical_query):
        texts = {str(c.query) for c in safe_subqueries(medical_query)}
        assert "answer(P) :- exhibits(P, $s)" in texts
        assert "answer(P) :- treatments(P, $m)" in texts
        assert (
            "answer(P) :- exhibits(P, $s) AND diagnoses(P, D) AND "
            "NOT causes(D, $s)" in texts
        )
        assert "answer(P) :- exhibits(P, $s) AND treatments(P, $m)" in texts

    def test_safe_plus_unsafe_is_fourteen(self, medical_query):
        total = len(safe_subqueries(medical_query)) + len(
            unsafe_subqueries(medical_query)
        )
        assert total == 14


class TestParameterRestriction:
    def test_subqueries_for_symptom_only(self, medical_query):
        cands = safe_subqueries_with_parameters(medical_query, [Parameter("s")])
        texts = {str(c.query) for c in cands}
        # Candidates mentioning exactly $s: subqueries (1) and (3) of the
        # paper, plus (1)+diagnoses.
        assert "answer(P) :- exhibits(P, $s)" in texts
        assert all("$m" not in t for t in texts)

    def test_minimal_candidates(self, medical_query):
        minimal = minimal_safe_subqueries_with_parameters(
            medical_query, [Parameter("s")]
        )
        texts = {str(c.query) for c in minimal}
        assert texts == {"answer(P) :- exhibits(P, $s)"}

    def test_pair_parameter_set(self, medical_query):
        cands = minimal_safe_subqueries_with_parameters(
            medical_query, [Parameter("s"), Parameter("m")]
        )
        texts = {str(c.query) for c in cands}
        assert "answer(P) :- exhibits(P, $s) AND treatments(P, $m)" in texts

    def test_no_candidates_for_unknown_parameter(self, medical_query):
        assert (
            safe_subqueries_with_parameters(medical_query, [Parameter("zzz")])
            == []
        )


class TestExample33:
    """Union subqueries restricted to parameter $1: one forced choice per
    rule of the Fig. 4 union."""

    def test_branch_shapes(self, web_union_query):
        cands = union_subqueries_with_parameters(web_union_query, [Parameter("1")])
        assert cands, "expected at least one union bound"
        best = cands[0]
        texts = [str(b.query) for b in best.branches]
        assert texts == [
            "answer(D) :- inTitle(D, $1)",
            "answer(A) :- inAnchor(A, $1)",
            "answer(A) :- link(A, D1, D2) AND inTitle(D2, $1)",
        ]

    def test_cheapest_choice_subgoal_counts(self, web_union_query):
        # The paper notes there is "essentially only one choice" per rule:
        # the cheapest candidates keep 1, 1, and 2 subgoals respectively
        # (the third rule needs link() to bind D2).
        cands = union_subqueries_with_parameters(web_union_query, [Parameter("1")])
        best = cands[0]
        assert [b.subgoal_count for b in best.branches] == [1, 1, 2]

    def test_union_parameters(self, web_union_query):
        cands = union_subqueries_with_parameters(web_union_query, [Parameter("1")])
        assert cands[0].parameters == frozenset({Parameter("1")})

    def test_max_candidates_cap(self, web_union_query):
        cands = union_subqueries_with_parameters(
            web_union_query, [Parameter("1")], max_candidates=1
        )
        assert len(cands) == 1

    def test_empty_when_rule_cannot_participate(self, web_union_query, basket_query):
        # Parameter $9 appears nowhere: no bound exists.
        assert (
            union_subqueries_with_parameters(web_union_query, [Parameter("9")])
            == []
        )


class TestParameterSubsets:
    def test_all_subsets_by_size(self, medical_query):
        subsets = list(parameter_subsets(medical_query))
        assert subsets == [
            frozenset({Parameter("m")}),
            frozenset({Parameter("s")}),
            frozenset({Parameter("m"), Parameter("s")}),
        ]

    def test_max_size_cap(self, medical_query):
        subsets = list(parameter_subsets(medical_query, max_size=1))
        assert all(len(s) == 1 for s in subsets)
