"""Unit tests for the Datalog parser against the paper's figure texts."""

import pytest

from repro.datalog import ComparisonOp, ConjunctiveQuery, UnionQuery, parse_query, parse_rule
from repro.datalog.terms import Constant, Parameter, Variable
from repro.errors import ParseError


class TestParseRule:
    def test_fig2_market_basket(self):
        q = parse_rule("answer(B) :- baskets(B,$1) AND baskets(B,$2)")
        assert q.head_name == "answer"
        assert q.head_terms == (Variable("B"),)
        assert len(q.body) == 2
        assert q.parameters() == {Parameter("1"), Parameter("2")}

    def test_fig3_medical_with_negation(self):
        q = parse_rule(
            """
            answer(P) :-
                exhibits(P,$s) AND
                treatments(P,$m) AND
                diagnoses(P,D) AND
                NOT causes(D,$s)
            """
        )
        assert len(q.body) == 4
        assert q.negated_atoms()[0].predicate == "causes"
        assert q.parameters() == {Parameter("s"), Parameter("m")}

    def test_arithmetic_subgoal(self):
        q = parse_rule("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2")
        comp = q.comparisons()[0]
        assert comp.op is ComparisonOp.LT
        assert comp.left == Parameter("1")
        assert comp.right == Parameter("2")

    def test_comma_separator(self):
        q = parse_rule("answer(B) :- baskets(B,$1), baskets(B,$2)")
        assert len(q.body) == 2

    def test_trailing_period(self):
        q = parse_rule("answer(X) :- arc($1,X).")
        assert len(q.body) == 1

    def test_string_constant(self):
        q = parse_rule("answer(B) :- baskets(B,'beer')")
        assert q.body[0].terms[1] == Constant("beer")

    def test_numeric_constant(self):
        q = parse_rule("answer(X) :- scores(X,N) AND N >= 20")
        assert q.comparisons()[0].right == Constant(20)

    def test_lowercase_bare_word_is_constant(self):
        q = parse_rule("answer(X) :- color(X, red)")
        assert q.body[0].terms[1] == Constant("red")

    def test_comments_ignored(self):
        q = parse_rule(
            "answer(B) :- baskets(B,$1) # first item\n AND baskets(B,$2)"
        )
        assert len(q.body) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("answer(B) :- baskets(B,$1) extra(B)")

    def test_missing_implies_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("answer(B) baskets(B,$1)")

    def test_bad_character_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("answer(B) :- baskets(B,@1)")

    def test_parse_error_has_position(self):
        with pytest.raises(ParseError) as exc:
            parse_rule("answer(B) :- baskets(B,@1)")
        assert exc.value.position is not None


class TestParseQuery:
    def test_single_rule_returns_cq(self):
        q = parse_query("answer(B) :- baskets(B,$1)")
        assert isinstance(q, ConjunctiveQuery)

    def test_fig4_union_three_rules(self):
        text = """
        answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
        answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
        answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
        """
        q = parse_query(text)
        assert isinstance(q, UnionQuery)
        assert len(q.rules) == 3
        assert q.parameters() == {Parameter("1"), Parameter("2")}

    def test_round_trip_through_str(self):
        text = "answer(P) :- exhibits(P, $s) AND NOT causes(D, $s) AND diagnoses(P, D)"
        q = parse_rule(text)
        again = parse_rule(str(q))
        assert again == q

    def test_union_round_trip(self, web_union_query):
        again = parse_query(str(web_union_query))
        assert again == web_union_query

    def test_zero_arity_atom(self):
        q = parse_rule("answer(X) :- flag() AND data(X)")
        assert q.body[0].arity == 0
