"""Containment edge cases the cache leans on (Section 3.1).

The session cache reuses results across queries via containment, so the
corners matter: parameters act as distinguished variables, constants in
heads must map to themselves, and bounds in the presence of negation
fall back to the subgoal-subset criterion.
"""

import pytest

from repro.datalog import atom, comparison, contains, contains_extended, is_subquery_bound, rule
from repro.session.canonical import alpha_equivalent, canonical_key


class TestParametersAsDistinguishedVariables:
    def test_parameter_cannot_absorb_variable(self):
        # r(B,$1) vs r(B,X): the parameterized query is NOT contained in
        # nor containing the variable one — $1 maps only to itself.
        with_param = rule("answer", ["B"], [atom("r", "B", "$1")])
        with_var = rule("answer", ["B"], [atom("r", "B", "X")])
        assert not contains(with_param, with_var)
        # The variable query contains the parameterized one: X -> $1.
        assert contains(with_var, with_param)

    def test_distinct_parameters_never_unify(self):
        q12 = rule(
            "answer", ["B"],
            [atom("r", "B", "$1"), atom("r", "B", "$2")],
        )
        q11 = rule("answer", ["B"], [atom("r", "B", "$1")])
        # q11 contains q12 (drop the $2 subgoal), but q12 does not
        # contain q11 — the $2 subgoal has no image.
        assert contains(q11, q12)
        assert not contains(q12, q11)

    def test_swapped_parameters_not_equivalent(self):
        q1 = rule("answer", ["B"], [atom("r", "B", "$1"), atom("s", "B", "$2")])
        q2 = rule("answer", ["B"], [atom("r", "B", "$2"), atom("s", "B", "$1")])
        assert not contains(q1, q2)
        assert not alpha_equivalent(q1, q2)
        assert canonical_key(q1) != canonical_key(q2)


class TestConstantsInHeads:
    def test_identical_head_constants_contained(self):
        q1 = rule("answer", ["X", "'flagged'"], [atom("r", "X", "Y")])
        q2 = rule("answer", ["X", "'flagged'"], [atom("r", "X", "X")])
        assert contains(q1, q2)

    def test_different_head_constants_not_contained(self):
        q1 = rule("answer", ["X", "'a'"], [atom("r", "X")])
        q2 = rule("answer", ["X", "'b'"], [atom("r", "X")])
        assert not contains(q1, q2)
        assert not alpha_equivalent(q1, q2)
        assert canonical_key(q1) != canonical_key(q2)

    def test_head_variable_maps_to_constant(self):
        # q2 fixes the head's second position to 'a'; the general query
        # contains it (Y -> 'a').
        general = rule("answer", ["X", "Y"], [atom("r", "X", "Y")])
        fixed = rule("answer", ["X", "'a'"], [atom("r", "X", "'a'")])
        assert contains(general, fixed)
        assert not contains(fixed, general)

    def test_head_constant_round_trips_canonicalization(self):
        q = rule("answer", ["X", "'a'"], [atom("r", "X", "Z")])
        twin = rule("answer", ["W", "'a'"], [atom("r", "W", "V")])
        assert canonical_key(q) == canonical_key(twin)
        assert alpha_equivalent(q, twin)


class TestNegatedSubgoalSubsetBounds:
    def test_dropping_negated_subgoal_is_a_bound(self, medical_query):
        # Removing NOT causes(D,$s) can only widen the answer.
        widened = medical_query.with_body_subset([0, 1, 2])
        assert is_subquery_bound(widened, medical_query)

    def test_dropping_positive_subgoal_is_a_bound(self, medical_query):
        widened = medical_query.with_body_subset([0, 2, 3])
        assert is_subquery_bound(widened, medical_query)

    def test_superset_is_not_a_bound(self, medical_query):
        widened = medical_query.with_body_subset([0, 1, 2])
        # The full query is NOT a bound for the widened one.
        assert not is_subquery_bound(medical_query, widened)

    def test_extended_containment_rejects_negation(self, medical_query):
        widened = medical_query.with_body_subset([0, 1, 2])
        with pytest.raises(ValueError):
            contains_extended(widened, medical_query)


class TestExtendedContainmentEdges:
    def test_le_contains_lt(self):
        le = rule(
            "answer", ["B"],
            [atom("r", "B", "$1"), atom("r", "B", "$2"),
             comparison("$1", "<=", "$2")],
        )
        lt = rule(
            "answer", ["B"],
            [atom("r", "B", "$1"), atom("r", "B", "$2"),
             comparison("$1", "<", "$2")],
        )
        assert contains_extended(le, lt)
        assert not contains_extended(lt, le)

    def test_constant_range_entailment(self):
        wide = rule("answer", ["X"], [atom("r", "X", "N"), comparison("N", "<", "10")])
        narrow = rule("answer", ["X"], [atom("r", "X", "N"), comparison("N", "<", "5")])
        assert contains_extended(wide, narrow)
        assert not contains_extended(narrow, wide)
