"""Unit tests for repro.datalog.terms."""

import pytest

from repro.datalog.terms import (
    Constant,
    Parameter,
    Variable,
    is_bindable,
    make_term,
)


class TestVariable:
    def test_str(self):
        assert str(Variable("B")) == "B"

    def test_equality_by_name(self):
        assert Variable("P") == Variable("P")
        assert Variable("P") != Variable("D")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_rejects_dollar_prefix(self):
        with pytest.raises(ValueError):
            Variable("$s")


class TestParameter:
    def test_str_includes_sigil(self):
        assert str(Parameter("s")) == "$s"

    def test_numeric_parameter_names(self):
        assert str(Parameter("1")) == "$1"

    def test_rejects_sigil_in_name(self):
        with pytest.raises(ValueError):
            Parameter("$s")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Parameter("")

    def test_distinct_from_variable(self):
        assert Parameter("s") != Variable("s")


class TestConstant:
    def test_string_renders_quoted(self):
        assert str(Constant("beer")) == "'beer'"

    def test_number_renders_bare(self):
        assert str(Constant(20)) == "20"

    def test_equality(self):
        assert Constant(3) == Constant(3)
        assert Constant(3) != Constant("3")


class TestIsBindable:
    def test_variable_and_parameter_bindable(self):
        assert is_bindable(Variable("X"))
        assert is_bindable(Parameter("x"))

    def test_constant_not_bindable(self):
        assert not is_bindable(Constant(1))


class TestMakeTerm:
    def test_dollar_string_is_parameter(self):
        assert make_term("$1") == Parameter("1")
        assert make_term("$item") == Parameter("item")

    def test_capitalized_is_variable(self):
        assert make_term("B") == Variable("B")
        assert make_term("Disease") == Variable("Disease")

    def test_underscore_is_variable(self):
        assert make_term("_x") == Variable("_x")

    def test_quoted_is_string_constant(self):
        assert make_term("'beer'") == Constant("beer")
        assert make_term('"beer"') == Constant("beer")

    def test_int_passthrough(self):
        assert make_term(20) == Constant(20)

    def test_numeric_string(self):
        assert make_term("20") == Constant(20)
        assert make_term("2.5") == Constant(2.5)

    def test_lowercase_is_string_constant(self):
        assert make_term("beer") == Constant("beer")

    def test_term_passthrough(self):
        v = Variable("X")
        assert make_term(v) is v

    def test_bool_becomes_constant(self):
        assert make_term(True) == Constant(True)

    def test_empty_string_rejected(self):
        with pytest.raises(ValueError):
            make_term("")

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            make_term(object())
