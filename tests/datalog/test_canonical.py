"""Canonical forms for cache keys (repro.session.canonical)."""


from repro.datalog import UnionQuery, atom, comparison, negated, rule
from repro.session.canonical import (
    MAX_TIE_PERMUTATIONS,
    alpha_equivalent,
    canonical_key,
    canonicalize,
    serves_as_bound,
)


class TestCanonicalize:
    def test_idempotent(self, basket_query_ordered):
        once = canonicalize(basket_query_ordered)
        twice = canonicalize(once)
        assert str(once) == str(twice)

    def test_round_trip_preserves_meaning(self, basket_query_ordered):
        canon = canonicalize(basket_query_ordered)
        assert alpha_equivalent(canon, basket_query_ordered)

    def test_alpha_variants_share_form(self):
        q1 = rule("answer", ["B"], [atom("r", "B", "X"), atom("s", "X", "Y")])
        q2 = rule("answer", ["Q"], [atom("s", "W", "Z"), atom("r", "Q", "W")])
        assert str(canonicalize(q1)) == str(canonicalize(q2))

    def test_distinct_queries_stay_distinct(self):
        # p(X, X) is NOT alpha-equivalent to p(X, Y).
        q1 = rule("answer", ["X"], [atom("p", "X", "X")])
        q2 = rule("answer", ["X"], [atom("p", "X", "Y")])
        assert str(canonicalize(q1)) != str(canonicalize(q2))

    def test_comparison_orientation_normalized(self):
        lt = rule(
            "answer", ["B"],
            [atom("r", "B", "$1"), atom("r", "B", "$2"),
             comparison("$1", "<", "$2")],
        )
        gt = rule(
            "answer", ["B"],
            [atom("r", "B", "$1"), atom("r", "B", "$2"),
             comparison("$2", ">", "$1")],
        )
        assert str(canonicalize(lt)) == str(canonicalize(gt))
        assert alpha_equivalent(lt, gt)

    def test_negation_preserved(self, medical_query):
        canon = canonicalize(medical_query)
        assert sum(
            1 for sg in canon.body
            if getattr(sg, "negated", False)
        ) == 1
        assert alpha_equivalent(canon, medical_query)

    def test_tie_groups_resolved(self):
        # Two structurally identical atoms whose order must not matter.
        q1 = rule("answer", ["B"], [atom("r", "B", "X"), atom("r", "B", "Y"),
                                    atom("s", "X", "Y")])
        q2 = rule("answer", ["B"], [atom("r", "B", "Y"), atom("r", "B", "X"),
                                    atom("s", "X", "Y")])
        assert str(canonicalize(q1)) == str(canonicalize(q2))

    def test_degraded_mode_still_deterministic(self):
        # A body of many interchangeable atoms blows the permutation cap;
        # the key degrades but stays stable and alpha_equivalent-exact.
        import math

        n = 8
        assert math.factorial(n) > MAX_TIE_PERMUTATIONS
        body1 = [atom("e", f"X{i}", f"X{(i + 1) % n}") for i in range(n)]
        body2 = list(reversed(body1))
        q1 = rule("answer", ["X0"], body1)
        q2 = rule("answer", ["X0"], body2)
        assert str(canonicalize(q1)) == str(canonicalize(q1))
        assert alpha_equivalent(q1, q2)


class TestCanonicalKey:
    def test_alpha_variants_share_key(self, basket_query_ordered):
        renamed = rule(
            "answer", ["Bkt"],
            [atom("baskets", "Bkt", "$2"), atom("baskets", "Bkt", "$1"),
             comparison("$1", "<", "$2")],
        )
        assert canonical_key(basket_query_ordered) == canonical_key(renamed)

    def test_parameters_are_distinguishing(self):
        q1 = rule("answer", ["B"], [atom("r", "B", "$1")])
        q2 = rule("answer", ["B"], [atom("r", "B", "$2")])
        assert canonical_key(q1) != canonical_key(q2)

    def test_constants_are_distinguishing(self):
        q1 = rule("answer", ["B"], [atom("r", "B", "'a'")])
        q2 = rule("answer", ["B"], [atom("r", "B", "'b'")])
        assert canonical_key(q1) != canonical_key(q2)

    def test_union_branch_order_irrelevant(self):
        r1 = rule("answer", ["B"], [atom("r", "B", "$1")])
        r2 = rule("answer", ["B"], [atom("s", "B", "$1")])
        assert canonical_key(UnionQuery((r1, r2))) == canonical_key(
            UnionQuery((r2, r1))
        )

    def test_union_key_distinct_from_branch_key(self):
        r1 = rule("answer", ["B"], [atom("r", "B", "$1")])
        r2 = rule("answer", ["B"], [atom("s", "B", "$1")])
        assert canonical_key(UnionQuery((r1, r2))) != canonical_key(r1)


class TestAlphaEquivalent:
    def test_reflexive(self, basket_query, medical_query, web_union_query):
        for q in (basket_query, medical_query, web_union_query):
            assert alpha_equivalent(q, q)

    def test_renamed_variables(self):
        q1 = rule("answer", ["X"], [atom("r", "X", "Y"), atom("s", "Y", "Z")])
        q2 = rule("answer", ["A"], [atom("r", "A", "B"), atom("s", "B", "C")])
        assert alpha_equivalent(q1, q2)

    def test_not_equivalent_on_collapse(self):
        q1 = rule("answer", ["X"], [atom("r", "X", "Y")])
        q2 = rule("answer", ["X"], [atom("r", "X", "X")])
        assert not alpha_equivalent(q1, q2)

    def test_head_name_matters(self):
        q1 = rule("answer", ["X"], [atom("r", "X")])
        q2 = rule("result", ["X"], [atom("r", "X")])
        assert not alpha_equivalent(q1, q2)

    def test_union_vs_single(self, basket_query):
        assert not alpha_equivalent(
            basket_query, UnionQuery((basket_query, basket_query))
        )

    def test_union_branch_permutation(self, web_union_query):
        shuffled = UnionQuery(tuple(reversed(web_union_query.rules)))
        assert alpha_equivalent(web_union_query, shuffled)

    def test_negation_must_match(self):
        q1 = rule("answer", ["X"], [atom("r", "X", "Y"), atom("s", "Y")])
        q2 = rule("answer", ["X"], [atom("r", "X", "Y"), negated("s", "Y")])
        assert not alpha_equivalent(q1, q2)


class TestServesAsBound:
    def test_equivalent_serves(self, basket_query):
        assert serves_as_bound(basket_query, basket_query)

    def test_subgoal_subset_serves_as_bound(self, basket_query,
                                            basket_query_ordered):
        # Dropping the tie-break widens the query: plain contains ordered.
        assert serves_as_bound(basket_query, basket_query_ordered)
        assert not serves_as_bound(basket_query_ordered, basket_query)

    def test_pure_cq_containment(self):
        wide = rule("answer", ["X"], [atom("r", "X", "Y")])
        narrow = rule("answer", ["X"], [atom("r", "X", "X")])
        assert serves_as_bound(wide, narrow)
        assert not serves_as_bound(narrow, wide)

    def test_arithmetic_entailment(self):
        le = rule(
            "answer", ["B"],
            [atom("r", "B", "$1"), atom("r", "B", "$2"),
             comparison("$1", "<=", "$2")],
        )
        lt = rule(
            "answer", ["B"],
            [atom("r", "B", "$1"), atom("r", "B", "$2"),
             comparison("$1", "<", "$2")],
        )
        # $1 < $2 entails $1 <= $2, so the <= query contains the < one.
        assert serves_as_bound(le, lt)
        assert not serves_as_bound(lt, le)

    def test_negated_subgoal_subset(self, medical_query):
        # Dropping the negated subgoal widens the query, and the
        # subgoal-subset criterion is the sound fallback with negation.
        widened = medical_query.with_body_subset([0, 1, 2])
        assert serves_as_bound(widened, medical_query)

    def test_union_bounded_per_branch(self, web_union_query):
        # Each branch of the union bounds itself.
        assert serves_as_bound(web_union_query, web_union_query)
        single = web_union_query.rules[0]
        # A single branch does not bound the whole union.
        assert not serves_as_bound(single, web_union_query)
        # But the union bounds each of its branches.
        assert serves_as_bound(web_union_query, single)
