"""Unit tests for repro.datalog.query."""

import pytest

from repro.datalog import ConjunctiveQuery, UnionQuery, as_union, atom, rule
from repro.datalog.terms import Constant, Parameter, Variable


class TestConjunctiveQuery:
    def test_str_matches_paper_notation(self, basket_query):
        assert str(basket_query) == "answer(B) :- baskets(B, $1) AND baskets(B, $2)"

    def test_parameters(self, medical_query):
        assert medical_query.parameters() == frozenset(
            {Parameter("s"), Parameter("m")}
        )

    def test_variables_include_head_and_body(self, medical_query):
        assert medical_query.variables() == frozenset(
            {Variable("P"), Variable("D")}
        )

    def test_positive_negated_split(self, medical_query):
        assert len(medical_query.positive_atoms()) == 3
        assert len(medical_query.negated_atoms()) == 1
        assert medical_query.negated_atoms()[0].predicate == "causes"

    def test_comparisons(self, basket_query_ordered):
        assert len(basket_query_ordered.comparisons()) == 1

    def test_predicates(self, medical_query):
        assert medical_query.predicates() == frozenset(
            {"exhibits", "treatments", "diagnoses", "causes"}
        )

    def test_parameter_in_head_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery("answer", (Parameter("s"),), ())

    def test_with_body_subset_preserves_order(self, medical_query):
        sub = medical_query.with_body_subset([2, 0])
        assert [s.predicate for s in sub.body] == ["exhibits", "diagnoses"]

    def test_with_body_subset_out_of_range(self, medical_query):
        with pytest.raises(IndexError):
            medical_query.with_body_subset([99])

    def test_without_subgoals(self, medical_query):
        sub = medical_query.without_subgoals([3])
        assert len(sub.body) == 3
        assert sub.predicates() == frozenset({"exhibits", "treatments", "diagnoses"})

    def test_with_extra_subgoals_appends(self, medical_query):
        extra = atom("okS", "$s")
        extended = medical_query.with_extra_subgoals([extra])
        assert extended.body[-1] == extra
        assert len(extended.body) == 5

    def test_with_extra_subgoals_prepends(self, medical_query):
        extra = atom("okS", "$s")
        extended = medical_query.with_extra_subgoals([extra], prepend=True)
        assert extended.body[0] == extra

    def test_instantiate_replaces_parameters(self, basket_query):
        inst = basket_query.instantiate(
            {Parameter("1"): "beer", Parameter("2"): "diapers"}
        )
        assert inst.parameters() == frozenset()
        assert inst.body[0].terms[1] == Constant("beer")
        assert inst.body[1].terms[1] == Constant("diapers")

    def test_instantiate_partial(self, basket_query):
        inst = basket_query.instantiate({Parameter("1"): "beer"})
        assert inst.parameters() == frozenset({Parameter("2")})

    def test_instantiate_comparison_sides(self, basket_query_ordered):
        inst = basket_query_ordered.instantiate(
            {Parameter("1"): "a", Parameter("2"): "b"}
        )
        comp = inst.comparisons()[0]
        assert comp.left == Constant("a")
        assert comp.right == Constant("b")

    def test_instantiate_preserves_negation(self, medical_query):
        inst = medical_query.instantiate({Parameter("s"): "rash"})
        assert inst.negated_atoms()[0].negated

    def test_rename_head(self, basket_query):
        assert basket_query.rename_head("ok").head_name == "ok"

    def test_empty_head_name_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery("", (Variable("X"),), ())


class TestUnionQuery:
    def test_head_name_and_arity(self, web_union_query):
        assert web_union_query.head_name == "answer"
        assert web_union_query.head_arity == 1

    def test_parameters_across_rules(self, web_union_query):
        assert web_union_query.parameters() == frozenset(
            {Parameter("1"), Parameter("2")}
        )

    def test_predicates_across_rules(self, web_union_query):
        assert web_union_query.predicates() == frozenset(
            {"inTitle", "inAnchor", "link"}
        )

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            UnionQuery(())

    def test_requires_same_head_name(self, basket_query):
        other = rule("other", ["B"], [atom("baskets", "B", "$1")])
        with pytest.raises(ValueError):
            UnionQuery((basket_query, other))

    def test_requires_same_arity(self, basket_query):
        wide = rule("answer", ["B", "C"], [atom("pairs", "B", "C", "$1")])
        with pytest.raises(ValueError):
            UnionQuery((basket_query, wide))

    def test_instantiate(self, web_union_query):
        inst = web_union_query.instantiate(
            {Parameter("1"): "alpha", Parameter("2"): "beta"}
        )
        assert inst.parameters() == frozenset()

    def test_as_union_wraps_single_rule(self, basket_query):
        u = as_union(basket_query)
        assert isinstance(u, UnionQuery)
        assert u.rules == (basket_query,)

    def test_as_union_passthrough(self, web_union_query):
        assert as_union(web_union_query) is web_union_query
