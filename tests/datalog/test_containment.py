"""Containment-mapping tests (Chandra–Merlin, Section 3.1)."""

import pytest

from repro.datalog import atom, contains, equivalent, find_containment_mapping, is_subquery_bound, minimize, rule
from repro.datalog.terms import Variable


class TestContains:
    def test_reflexive(self, basket_query):
        assert contains(basket_query, basket_query)

    def test_subgoal_subset_contains_full(self, basket_query):
        sub = basket_query.with_body_subset([0])
        assert contains(sub, basket_query)

    def test_full_does_not_contain_subset(self, basket_query):
        sub = basket_query.with_body_subset([0])
        # A one-subgoal query returns at least as much; containment the
        # other way fails because the $2 subgoal cannot be mapped.
        assert not contains(basket_query, sub)

    def test_parameters_map_only_to_themselves(self):
        q1 = rule("answer", ["B"], [atom("baskets", "B", "$1")])
        q2 = rule("answer", ["B"], [atom("baskets", "B", "$2")])
        # Different parameters: not containment in the flock sense.
        assert not contains(q1, q2)

    def test_variable_can_collapse(self):
        # q1: r(X,Y); q2: r(X,X). q2 ⊆ q1 by mapping Y -> X.
        q1 = rule("answer", ["X"], [atom("r", "X", "Y")])
        q2 = rule("answer", ["X"], [atom("r", "X", "X")])
        assert contains(q1, q2)
        assert not contains(q2, q1)

    def test_different_predicates_not_contained(self):
        q1 = rule("answer", ["X"], [atom("r", "X")])
        q2 = rule("answer", ["X"], [atom("s", "X")])
        assert not contains(q1, q2)

    def test_different_head_arity_not_contained(self):
        q1 = rule("answer", ["X"], [atom("r", "X", "Y")])
        q2 = rule("answer", ["X", "Y"], [atom("r", "X", "Y")])
        assert not contains(q1, q2)

    def test_constant_must_match(self):
        q1 = rule("answer", ["X"], [atom("r", "X", "'a'")])
        q2 = rule("answer", ["X"], [atom("r", "X", "'b'")])
        assert not contains(q1, q2)
        assert contains(q1, q1)

    def test_classic_redundant_subgoal(self):
        # q2 has a redundant subgoal r(X,Z): mapping shows equivalence.
        q1 = rule("answer", ["X"], [atom("r", "X", "Y")])
        q2 = rule("answer", ["X"], [atom("r", "X", "Y"), atom("r", "X", "Z")])
        assert contains(q1, q2)
        assert contains(q2, q1)
        assert equivalent(q1, q2)

    def test_rejects_extended_queries(self, medical_query):
        with pytest.raises(ValueError):
            contains(medical_query, medical_query)

    def test_mapping_witness_structure(self, basket_query):
        sub = basket_query.with_body_subset([0])
        mapping = find_containment_mapping(sub, basket_query)
        assert mapping is not None
        assert mapping[Variable("B")] == Variable("B")


class TestIsSubqueryBound:
    def test_subset_is_bound(self, medical_query):
        sub = medical_query.with_body_subset([0, 1])
        assert is_subquery_bound(sub, medical_query)

    def test_full_query_bounds_itself(self, medical_query):
        assert is_subquery_bound(medical_query, medical_query)

    def test_superset_is_not_bound(self, medical_query):
        extra = medical_query.with_extra_subgoals([atom("okS", "$s")])
        assert not is_subquery_bound(extra, medical_query)

    def test_works_with_negation_and_arithmetic(self, basket_query_ordered):
        sub = basket_query_ordered.with_body_subset([0])
        assert is_subquery_bound(sub, basket_query_ordered)

    def test_head_mismatch_rejected(self, medical_query):
        renamed = medical_query.rename_head("other")
        assert not is_subquery_bound(renamed, medical_query)

    def test_modified_subgoal_not_bound(self, basket_query):
        tweaked = rule(
            "answer", ["B"], [atom("baskets", "B", "$3")]
        )
        assert not is_subquery_bound(tweaked, basket_query)

    def test_duplicate_subgoals_respect_multiplicity(self):
        q = rule("answer", ["X"], [atom("r", "X"), atom("r", "X")])
        twice = rule("answer", ["X"], [atom("r", "X"), atom("r", "X"), atom("r", "X")])
        assert is_subquery_bound(q, twice)
        assert not is_subquery_bound(twice, q)


class TestMinimize:
    def test_removes_redundant_subgoal(self):
        q = rule("answer", ["X"], [atom("r", "X", "Y"), atom("r", "X", "Z")])
        core = minimize(q)
        assert len(core.body) == 1

    def test_keeps_necessary_subgoals(self, basket_query):
        core = minimize(basket_query)
        # $1 and $2 subgoals are both necessary (parameters are fixed).
        assert len(core.body) == 2

    def test_idempotent(self):
        q = rule("answer", ["X"], [atom("r", "X", "Y"), atom("r", "X", "Z")])
        once = minimize(q)
        assert minimize(once) == once

    def test_rejects_extended(self, medical_query):
        with pytest.raises(ValueError):
            minimize(medical_query)
