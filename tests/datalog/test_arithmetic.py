"""Tests for comparison entailment and arithmetic-aware containment
(the [Klu82]/[ZO93] machinery of Section 3.3)."""

import pytest

from repro.datalog import (
    ComparisonSystem,
    atom,
    comparison,
    contains_extended,
    entails,
    is_satisfiable,
    negated,
    rule,
)


def cmp(*args):
    return comparison(*args)


class TestEntailment:
    def test_transitivity(self):
        assert entails([cmp("X", "<", "Y"), cmp("Y", "<", "Z")],
                       [cmp("X", "<", "Z")])

    def test_strictness_not_invented(self):
        assert not entails([cmp("X", "<=", "Y")], [cmp("X", "<", "Y")])

    def test_mixed_strict_chain(self):
        assert entails([cmp("X", "<=", "Y"), cmp("Y", "<", "Z")],
                       [cmp("X", "<", "Z")])

    def test_antisymmetry_yields_equality(self):
        assert entails([cmp("X", "<=", "Y"), cmp("Y", "<=", "X")],
                       [cmp("X", "=", "Y")])

    def test_equality_implies_le_and_ge(self):
        assert entails([cmp("X", "=", "Y")], [cmp("X", "<=", "Y")])
        assert entails([cmp("X", "=", "Y")], [cmp("X", ">=", "Y")])

    def test_constant_ordering(self):
        assert entails([cmp("X", "<", 5)], [cmp("X", "<", 10)])
        assert not entails([cmp("X", "<", 10)], [cmp("X", "<", 5)])

    def test_constant_equality(self):
        assert entails([cmp("X", "=", 3)], [cmp("X", "<=", 3)])
        assert entails([cmp("X", "=", 3)], [cmp("X", "<", 4)])

    def test_strict_implies_disequality(self):
        assert entails([cmp("X", "<", "Y")], [cmp("X", "!=", "Y")])

    def test_explicit_disequality(self):
        assert entails([cmp("X", "!=", "Y")], [cmp("X", "!=", "Y")])
        assert not entails([cmp("X", "!=", "Y")], [cmp("X", "<", "Y")])

    def test_gt_ge_normalized(self):
        assert entails([cmp("X", ">", "Y")], [cmp("Y", "<", "X")])
        assert entails([cmp("X", ">=", "Y"), cmp("Y", ">=", "X")],
                       [cmp("X", "=", "Y")])

    def test_string_constants_ordered(self):
        assert entails([cmp("X", "<", "'apple'")], [cmp("X", "<", "'berry'")])

    def test_mixed_constant_families_conservative(self):
        # Numbers vs strings: no derivable order, so no entailment.
        assert not entails([cmp("X", "<", 5)], [cmp("X", "<", "'zzz'")])

    def test_empty_premises(self):
        assert entails([], [])
        assert not entails([], [cmp("X", "<", "Y")])

    def test_inconsistent_premises_entail_anything(self):
        assert entails([cmp("X", "<", "Y"), cmp("Y", "<", "X")],
                       [cmp("A", "=", "B")])


class TestSatisfiability:
    def test_cycle_unsatisfiable(self):
        assert not is_satisfiable([cmp("X", "<", "Y"), cmp("Y", "<", "X")])

    def test_longer_cycle(self):
        assert not is_satisfiable(
            [cmp("X", "<", "Y"), cmp("Y", "<", "Z"), cmp("Z", "<=", "X")]
        )

    def test_le_cycle_satisfiable(self):
        assert is_satisfiable([cmp("X", "<=", "Y"), cmp("Y", "<=", "X")])

    def test_eq_with_ne_unsatisfiable(self):
        assert not is_satisfiable([cmp("X", "=", "Y"), cmp("X", "!=", "Y")])

    def test_self_disequality_unsatisfiable(self):
        assert not is_satisfiable([cmp("X", "!=", "X")])

    def test_constant_contradiction(self):
        assert not is_satisfiable([cmp("X", "<", 3), cmp("X", ">", 7)])

    def test_plain_conjunction_satisfiable(self):
        assert is_satisfiable([cmp("X", "<", "Y"), cmp("Y", "<", "Z")])

    def test_eq_collapse_with_strict_unsat(self):
        assert not is_satisfiable(
            [cmp("X", "=", "Y"), cmp("X", "<", "Y")]
        )


class TestContainsExtended:
    def test_weaker_comparison_contains(self):
        q_le = rule("answer", ["X"], [atom("r", "X", "Y"), cmp("X", "<=", "Y")])
        q_lt = rule("answer", ["X"], [atom("r", "X", "Y"), cmp("X", "<", "Y")])
        assert contains_extended(q_le, q_lt)
        assert not contains_extended(q_lt, q_le)

    def test_no_comparisons_reduces_to_cm(self):
        q1 = rule("answer", ["X"], [atom("r", "X", "Y")])
        q2 = rule("answer", ["X"], [atom("r", "X", "Y"), atom("r", "X", "Z")])
        assert contains_extended(q1, q2)
        assert contains_extended(q2, q1)

    def test_constant_threshold_containment(self):
        q10 = rule("answer", ["X"], [atom("r", "X", "Y"), cmp("Y", "<", 10)])
        q5 = rule("answer", ["X"], [atom("r", "X", "Y"), cmp("Y", "<", 5)])
        assert contains_extended(q10, q5)
        assert not contains_extended(q5, q10)

    def test_unsatisfiable_contained_in_anything(self):
        q = rule("answer", ["X"], [atom("r", "X", "Y"), cmp("X", "<", "Y")])
        empty = rule(
            "answer",
            ["X"],
            [atom("r", "X", "Y"), cmp("X", "<", "Y"), cmp("Y", "<", "X")],
        )
        assert contains_extended(q, empty)

    def test_mapping_must_respect_comparisons(self):
        # container: r(X,Y), X<Y; contained: r(A,B) with no ordering —
        # the mapping exists but the comparison is not entailed.
        container = rule("answer", ["X"], [atom("r", "X", "Y"), cmp("X", "<", "Y")])
        contained = rule("answer", ["A"], [atom("r", "A", "B")])
        assert not contains_extended(container, contained)
        assert contains_extended(contained, container)

    def test_parameters_fixed(self):
        q1 = rule("answer", ["B"], [atom("baskets", "B", "$1")])
        q2 = rule("answer", ["B"], [atom("baskets", "B", "$2")])
        assert not contains_extended(q1, q2)

    def test_negation_rejected(self):
        q = rule("answer", ["P"], [atom("e", "P", "$s"), negated("c", "P", "$s")])
        with pytest.raises(ValueError):
            contains_extended(q, q)

    def test_head_arity_mismatch(self):
        q1 = rule("answer", ["X"], [atom("r", "X", "Y")])
        q2 = rule("answer", ["X", "Y"], [atom("r", "X", "Y")])
        assert not contains_extended(q1, q2)


class TestComparisonSystem:
    def test_reusable_for_many_queries(self):
        system = ComparisonSystem.from_comparisons(
            [cmp("X", "<", "Y"), cmp("Y", "<=", "Z")]
        )
        assert system.is_consistent()
        assert system.entails_comparison(cmp("X", "<", "Z"))
        assert system.entails_comparison(cmp("X", "!=", "Z"))
        assert not system.entails_comparison(cmp("Z", "<", "X"))
