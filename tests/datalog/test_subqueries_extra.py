"""Additional subquery-enumeration coverage."""


from repro.datalog import (
    Parameter,
    safe_subqueries,
    union_subqueries_with_parameters,
)


class TestIncludeFull:
    def test_full_query_admitted(self, basket_query):
        with_full = safe_subqueries(basket_query, include_full=True)
        without = safe_subqueries(basket_query)
        assert len(with_full) == len(without) + 1
        full = max(with_full, key=lambda c: c.subgoal_count)
        assert full.query == basket_query

    def test_candidate_str(self, basket_query):
        candidate = safe_subqueries(basket_query)[0]
        assert str(candidate) == str(candidate.query)

    def test_candidate_parameters_property(self, basket_query):
        candidates = safe_subqueries(basket_query)
        assert all(
            isinstance(c.parameters, frozenset) for c in candidates
        )


class TestUnionCandidates:
    def test_union_candidate_query_builds(self, web_union_query):
        cands = union_subqueries_with_parameters(
            web_union_query, [Parameter("1")]
        )
        union = cands[0].query
        assert union.head_name == "answer"
        assert len(union.rules) == 3

    def test_union_candidate_str(self, web_union_query):
        cands = union_subqueries_with_parameters(
            web_union_query, [Parameter("1")]
        )
        text = str(cands[0])
        assert "inTitle(D, $1)" in text
        assert "\n" in text  # one branch per line

    def test_cross_product_of_choices(self, web_union_query):
        # With include_full choices per rule, the cross product yields
        # several distinct candidates for $1.
        cands = union_subqueries_with_parameters(
            web_union_query, [Parameter("1")]
        )
        assert len(cands) > 1
        assert len({str(c) for c in cands}) == len(cands)
