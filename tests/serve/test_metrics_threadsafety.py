"""Contention regressions for the metrics registry and run registry.

The conlint lock-discipline pass proves every ``GUARDED`` attribute in
``repro.serve.metrics`` and ``repro.serve.app`` moves under its lock;
these tests are the runtime half — hammer the hot paths from threads
and assert no update is lost and no read is torn.
"""

from __future__ import annotations

import threading

from repro.serve.app import RunRegistry
from repro.serve.metrics import MetricsRegistry

THREADS = 8
ITERS = 400


def _run_all(workers):
    threads = [threading.Thread(target=fn) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestMetricContention:
    def test_counter_loses_no_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "contended counter")

        def bump():
            for _ in range(ITERS):
                counter.inc()

        _run_all([bump] * THREADS)
        assert counter.total() == THREADS * ITERS

    def test_labelled_counter_cells_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_by", "per-thread cells", labels=("t",))

        def bump(tid: str):
            for _ in range(ITERS):
                counter.inc(t=tid)

        _run_all([lambda tid=str(i): bump(tid) for i in range(THREADS)])
        for i in range(THREADS):
            assert counter.value(t=str(i)) == ITERS

    def test_gauge_balanced_inc_dec_nets_zero(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g_depth", "contended gauge")

        def churn():
            for _ in range(ITERS):
                gauge.inc()
                gauge.dec()

        _run_all([churn] * THREADS)
        assert gauge.value() == 0

    def test_histogram_count_matches_under_concurrent_render(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_lat", "contended histogram")
        stop = threading.Event()

        def observe():
            for i in range(ITERS):
                histogram.observe(i / ITERS)

        def scrape():
            while not stop.is_set():
                registry.render()
                histogram.quantile(0.99)

        scrapers = [threading.Thread(target=scrape) for _ in range(2)]
        for thread in scrapers:
            thread.start()
        _run_all([observe] * THREADS)
        stop.set()
        for thread in scrapers:
            thread.join()

        assert histogram.count == THREADS * ITERS
        # Cumulative buckets must sum to the count (no torn bucket row).
        rendered = histogram.render()
        assert f'le="+Inf"}} {THREADS * ITERS}' in rendered

    def test_concurrent_registration_returns_one_instance(self):
        registry = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def register():
            metric = registry.counter("shared_total", "raced registration")
            with lock:
                seen.append(metric)

        _run_all([register] * THREADS)
        assert len({id(metric) for metric in seen}) == 1


class TestRunRegistrySnapshots:
    def test_snapshot_is_never_torn(self):
        """A finished status must always arrive with its timestamps —
        the torn read ``run_status`` had before it used snapshot()."""
        registry = RunRegistry()
        registry.create("r1", tenant="t")
        stop = threading.Event()
        torn: list[dict] = []

        def flip():
            for _ in range(ITERS):
                registry.mark_running("r1")
                registry.finish("r1", "complete", summary={"rows": 1})

        def watch():
            while not stop.is_set():
                snap = registry.snapshot("r1")
                if snap is None:
                    continue
                if snap["status"] == "complete" and (
                    "finished_unix" not in snap or "summary" not in snap
                ):
                    torn.append(snap)

        watchers = [threading.Thread(target=watch) for _ in range(3)]
        for thread in watchers:
            thread.start()
        _run_all([flip] * 2)
        stop.set()
        for thread in watchers:
            thread.join()
        assert torn == []

    def test_snapshot_missing_run_is_none(self):
        assert RunRegistry().snapshot("nope") is None
