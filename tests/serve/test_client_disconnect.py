"""Client-disconnect cancellation: an abandoned request must abort
cleanly — releasing its queue slot and recording the abort — never
finish silently for nobody.

The verdict vocabulary is the chaos harness's
(:class:`repro.testing.chaos.ChaosVerdict`): a disconnected request
whose run record ends ``aborted`` is a **clean-abort**; one that kept
computing to completion is the property violation the harness calls a
**silent-partial** (work the client never received, produced after the
contract ended).  The "fault" here is not an injected exception but the
client itself vanishing — an empty :class:`FaultSchedule` documents
that.
"""

import json
import socket
import time

import pytest

from repro import database_from_dict
from repro.serve import (
    MiningClient,
    MiningService,
    ServerConfig,
    server_in_thread,
)
from repro.testing.chaos import ChaosVerdict, FaultSchedule

#: Sized so one naive evaluation takes seconds — a socket closed a few
#: hundred ms in is mid-mine with a wide margin on any machine.
SLOW_FLOCK = """
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2

FILTER:
COUNT(answer.B) >= 2
"""

CHEAP_FLOCK = """
QUERY:
answer(P) :- pairs(P,$1)

FILTER:
COUNT(answer.P) >= 1
"""

#: The disconnect scenario's "schedule": no injected faults — the
#: client hanging up *is* the fault.
DISCONNECT_SCHEDULE = FaultSchedule(seed=0, faults=())


def make_slow_db():
    n_baskets, items_per_basket, n_items = 1500, 50, 400
    return database_from_dict({
        "baskets": (
            ["BID", "item"],
            [
                (basket, f"i{(basket * 7 + slot * 3) % n_items}")
                for basket in range(n_baskets)
                for slot in range(items_per_basket)
            ],
        ),
        "pairs": (["PID", "x"], [(p, p % 3) for p in range(9)]),
    })


def abandon_mine(host: str, port: int, flock: str,
                 hold_seconds: float) -> None:
    """Send a well-formed POST /v1/mine, then hang up without reading
    the response — the impatient client."""
    body = json.dumps({"flock": flock, "strategy": "naive"}).encode()
    head = (
        "POST /v1/mine HTTP/1.1\r\n"
        "Host: test\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.sendall(head.encode() + body)
        time.sleep(hold_seconds)
    # Context exit closes the socket: the server's watchdog read sees
    # EOF and cancels the evaluation.


def wait_until(predicate, timeout: float = 60.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def classify(record) -> ChaosVerdict:
    """Map a finished server-side run record onto the chaos verdicts."""
    if record.status == "aborted":
        return ChaosVerdict(
            kind="clean-abort",
            schedule=DISCONNECT_SCHEDULE,
            detail=record.error or "",
        )
    if record.status == "complete":
        return ChaosVerdict(
            kind="silent-partial",
            schedule=DISCONNECT_SCHEDULE,
            detail="request completed after the client disconnected",
        )
    return ChaosVerdict(
        kind=record.status, schedule=DISCONNECT_SCHEDULE,
        detail=record.error or "",
    )


@pytest.fixture()
def service():
    built = MiningService(
        make_slow_db(), ServerConfig(port=0, workers=1)
    )
    yield built
    # server_in_thread closes the service; this is belt and braces for
    # tests that fail before reaching it.
    built.close()


class TestMidMineDisconnect:
    def test_disconnect_cancels_and_records_clean_abort(self, service):
        with server_in_thread(service) as server:
            abandon_mine(server.host, server.port, SLOW_FLOCK,
                         hold_seconds=0.3)
            # The evaluation was mid-flight; the guard's next checkpoint
            # must surface the cancellation.
            assert wait_until(
                lambda: service.runs.counts().get("aborted", 0) == 1
            ), f"run never aborted: {service.runs.counts()}"

            record = service.runs.records()[-1]
            verdict = classify(record)
            assert verdict.kind == "clean-abort", str(verdict)
            assert "ExecutionCancelled" in (record.error or "")

            # The slot was released: nothing queued, nothing running.
            assert wait_until(lambda: service.dispatcher.active() == 0)
            assert service.dispatcher.queue_depth() == 0
            stats = service.dispatcher.tenant_stats()["default"]
            assert stats["occupancy"] == 0
            assert stats["cancelled"] == 1

            # The abort is visible to observers, not silent.
            client = MiningClient(server.address)
            status = client.run_status(record.run_id)
            assert status["status"] == "aborted"
            assert client.metric_value(
                "repro_mine_requests_total",
                tenant="default", outcome="aborted",
            ) == 1
            assert client.metric_value(
                "repro_mine_requests_total",
                tenant="default", outcome="complete",
            ) in (None, 0)

            # And the server is healthy: the next request completes.
            result = client.mine(CHEAP_FLOCK)
            assert result["status"] == "complete"


class TestQueuedDisconnect:
    def test_disconnect_while_queued_drops_without_running(self, service):
        import threading

        gate = threading.Event()
        try:
            with server_in_thread(service) as server:
                # Occupy the single worker so the HTTP request queues.
                service.dispatcher.submit("blocker", gate.wait)
                abandon_mine(server.host, server.port, SLOW_FLOCK,
                             hold_seconds=0.3)
                # The doomed job sits queued with a cancelled token
                # until the worker frees up...
                assert wait_until(
                    lambda: service.runs.counts().get("queued", 0) == 1
                )
                # abandon_mine has returned, so the socket is closed;
                # give the event loop a beat to see the EOF and cancel
                # the token before the worker is released.
                time.sleep(1.0)
                gate.set()
                # ...at which point dispatch drops it unrun.
                assert wait_until(
                    lambda: service.runs.counts().get("aborted", 0) == 1
                ), f"queued run never dropped: {service.runs.counts()}"

                record = service.runs.records()[-1]
                assert classify(record).kind == "clean-abort"
                assert record.started_at is None  # never ran
                stats = service.dispatcher.tenant_stats()["default"]
                assert stats["cancelled"] == 1
                assert stats["occupancy"] == 0
        finally:
            gate.set()
