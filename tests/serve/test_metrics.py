"""The serve layer's metrics registry: semantics and Prometheus text."""

import threading

import pytest

from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total", "help text")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3
        assert counter.total() == 3

    def test_labelled_cells_are_independent(self):
        counter = Counter("c_total", "h", labels=("endpoint",))
        counter.inc(endpoint="/a")
        counter.inc(5, endpoint="/b")
        assert counter.value(endpoint="/a") == 1
        assert counter.value(endpoint="/b") == 5
        assert counter.total() == 6

    def test_wrong_labels_rejected(self):
        counter = Counter("c_total", "h", labels=("endpoint",))
        with pytest.raises(ValueError):
            counter.inc(status="200")
        with pytest.raises(ValueError):
            counter.inc()

    def test_counters_only_go_up(self):
        counter = Counter("c_total", "h")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_render_sorted_with_type_and_help(self):
        counter = Counter("c_total", "things counted", labels=("kind",))
        counter.inc(kind="b")
        counter.inc(kind="a")
        text = counter.render()
        lines = text.splitlines()
        assert lines[0] == "# HELP c_total things counted"
        assert lines[1] == "# TYPE c_total counter"
        assert lines[2] == 'c_total{kind="a"} 1'
        assert lines[3] == 'c_total{kind="b"} 1'

    def test_unlabelled_counter_renders_zero_sample(self):
        assert "c_total 0" in Counter("c_total", "h").render()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "h")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_gauges_may_go_negative(self):
        gauge = Gauge("g", "h")
        gauge.dec(3)
        assert gauge.value() == -3


class TestHistogram:
    def test_cumulative_buckets(self):
        histogram = Histogram("h_seconds", "h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        text = histogram.render()
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="1"} 3' in text
        assert 'h_seconds_bucket{le="+Inf"} 4' in text
        assert "h_seconds_count 4" in text
        assert "h_seconds_sum 6.05" in text

    def test_observation_on_bound_lands_in_that_bucket(self):
        # Prometheus buckets are upper-inclusive: le="1" includes 1.0.
        histogram = Histogram("h", "h", buckets=(1.0,))
        histogram.observe(1.0)
        assert 'h_bucket{le="1"} 1' in histogram.render()

    def test_quantiles_exact_over_reservoir(self):
        histogram = Histogram("h", "h")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 100.0
        assert histogram.quantile(0.5) == pytest.approx(50.0, abs=1)
        assert histogram.quantile(0.99) == pytest.approx(99.0, abs=1)

    def test_quantile_empty_is_none(self):
        assert Histogram("h", "h").quantile(0.5) is None

    def test_reservoir_eviction_keeps_recent(self):
        from repro.serve import metrics as m

        histogram = Histogram("h", "h")
        for _ in range(m.RESERVOIR_SIZE):
            histogram.observe(1000.0)
        for _ in range(m.RESERVOIR_SIZE):
            histogram.observe(1.0)
        # The old large observations have been evicted from the
        # reservoir (quantiles track recent behaviour)...
        assert histogram.quantile(0.99) == 1.0
        # ...but the cumulative counters never forget.
        assert histogram.count == 2 * m.RESERVOIR_SIZE


class TestRegistry:
    def test_idempotent_registration_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "h")
        second = registry.counter("c_total", "h")
        assert first is second

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", "h")
        with pytest.raises(ValueError):
            registry.gauge("x", "h")

    def test_render_concatenates_sorted_with_trailing_newline(self):
        registry = MetricsRegistry()
        registry.counter("zz_total", "h").inc()
        registry.gauge("aa", "h").set(1)
        text = registry.render()
        assert text.endswith("\n")
        assert text.index("aa") < text.index("zz_total")

    def test_get(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "h")
        assert registry.get("c_total") is counter
        assert registry.get("absent") is None


class TestThreadSafety:
    def test_concurrent_increments_lose_nothing(self):
        counter = Counter("c_total", "h", labels=("worker",))
        histogram = Histogram("h_seconds", "h")
        threads = 8
        per_thread = 500

        def work(worker: int) -> None:
            for _ in range(per_thread):
                counter.inc(worker=str(worker % 2))
                histogram.observe(0.01)

        pool = [
            threading.Thread(target=work, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.total() == threads * per_thread
        assert histogram.count == threads * per_thread
