"""Admission control and fair dispatch (transport-free unit level)."""

import threading
import time

import pytest

from repro.errors import ExecutionCancelled
from repro.guard import CancellationToken, ResourceBudget
from repro.serve.tenants import AdmissionError, FairDispatcher, TenantPolicy


class TestTenantPolicy:
    def test_effective_budget_clamps_limitwise(self):
        policy = TenantPolicy(
            budget=ResourceBudget(seconds=10, max_intermediate_rows=1000)
        )
        effective = policy.effective_budget(
            ResourceBudget(seconds=60, max_intermediate_rows=50)
        )
        assert effective.seconds == 10          # tenant cap wins
        assert effective.max_intermediate_rows == 50  # request tightened

    def test_effective_budget_without_cap_passes_through(self):
        requested = ResourceBudget(seconds=5)
        assert TenantPolicy().effective_budget(requested) is requested
        assert TenantPolicy().effective_budget(None) is None

    def test_effective_budget_cap_without_request(self):
        cap = ResourceBudget(seconds=10)
        assert TenantPolicy(budget=cap).effective_budget(None) == cap

    def test_max_queued_must_be_positive(self):
        with pytest.raises(ValueError):
            TenantPolicy(max_queued=0)


class TestResourceBudgetClamp:
    def test_none_limits_are_unbounded(self):
        tight = ResourceBudget(seconds=None, max_intermediate_rows=10)
        loose = ResourceBudget(seconds=5, max_intermediate_rows=None)
        merged = tight.clamp(loose)
        assert merged.seconds == 5
        assert merged.max_intermediate_rows == 10

    def test_clamp_none_returns_self(self):
        budget = ResourceBudget(seconds=3)
        assert budget.clamp(None) is budget


class TestDispatcherBasics:
    def test_runs_jobs_and_resolves_futures(self):
        with FairDispatcher(workers=2) as dispatcher:
            futures = [
                dispatcher.submit("t", lambda i=i: i * i) for i in range(10)
            ]
            assert sorted(f.result(timeout=10) for f in futures) == [
                i * i for i in range(10)
            ]

    def test_job_exception_lands_on_future(self):
        with FairDispatcher(workers=1) as dispatcher:
            def boom():
                raise ValueError("no")
            future = dispatcher.submit("t", boom)
            with pytest.raises(ValueError, match="no"):
                future.result(timeout=10)

    def test_submit_after_close_raises(self):
        dispatcher = FairDispatcher(workers=1)
        dispatcher.close()
        with pytest.raises(RuntimeError):
            dispatcher.submit("t", lambda: None)

    def test_close_drains_queued_work(self):
        gate = threading.Event()
        with FairDispatcher(workers=1) as dispatcher:
            slow = dispatcher.submit("t", gate.wait)
            queued = [dispatcher.submit("t", lambda i=i: i) for i in range(5)]
            gate.set()
        # close() waits: everything already admitted still completes.
        assert slow.result(timeout=1) is True
        assert [f.result(timeout=1) for f in queued] == list(range(5))


class TestAdmissionControl:
    def test_full_queue_rejects_with_429_payload(self):
        gate = threading.Event()
        try:
            with FairDispatcher(
                workers=1, default_policy=TenantPolicy(max_queued=2)
            ) as dispatcher:
                dispatcher.submit("t", gate.wait)   # occupies the worker
                dispatcher.submit("t", lambda: 1)   # queued
                with pytest.raises(AdmissionError) as excinfo:
                    dispatcher.submit("t", lambda: 2)
                assert excinfo.value.tenant == "t"
                assert excinfo.value.limit == 2
                assert dispatcher.tenant_stats()["t"]["rejected"] == 1
        finally:
            gate.set()

    def test_rejection_is_per_tenant(self):
        gate = threading.Event()
        try:
            with FairDispatcher(
                workers=1, default_policy=TenantPolicy(max_queued=1)
            ) as dispatcher:
                dispatcher.submit("a", gate.wait)
                with pytest.raises(AdmissionError):
                    dispatcher.submit("a", lambda: 1)
                # A different tenant still gets in.
                future = dispatcher.submit("b", lambda: 2)
                gate.set()
                assert future.result(timeout=10) == 2
        finally:
            gate.set()

    def test_completion_releases_the_slot(self):
        with FairDispatcher(
            workers=1, default_policy=TenantPolicy(max_queued=1)
        ) as dispatcher:
            dispatcher.submit("t", lambda: 1).result(timeout=10)
            # Slot released: the next submit is admitted again.
            assert dispatcher.submit("t", lambda: 2).result(timeout=10) == 2
            stats = dispatcher.tenant_stats()["t"]
            assert stats["occupancy"] == 0
            assert stats["completed"] == 2


class TestFairness:
    def test_round_robin_interleaves_tenants(self):
        """With one worker, a burst from tenant A queued ahead of
        tenant B must not run all of A first: dispatch order must
        alternate A, B, A, B, ..."""
        gate = threading.Event()
        order = []
        lock = threading.Lock()

        def job(tag):
            with lock:
                order.append(tag)

        with FairDispatcher(workers=1) as dispatcher:
            blocker = dispatcher.submit("warmup", gate.wait)
            for i in range(4):
                dispatcher.submit("a", lambda i=i: job(("a", i)))
            for i in range(4):
                dispatcher.submit("b", lambda i=i: job(("b", i)))
            gate.set()
            blocker.result(timeout=10)
        tags = [tenant for tenant, _ in order]
        # Strict alternation once both queues are populated.
        assert tags == ["a", "b", "a", "b", "a", "b", "a", "b"]
        # FIFO within each tenant.
        assert [i for t, i in order if t == "a"] == [0, 1, 2, 3]
        assert [i for t, i in order if t == "b"] == [0, 1, 2, 3]


class TestCancellation:
    def test_queued_job_with_cancelled_token_is_dropped(self):
        """A client that disconnects while queued releases its slot
        without the job ever running."""
        gate = threading.Event()
        ran = threading.Event()
        token = CancellationToken()
        try:
            with FairDispatcher(workers=1) as dispatcher:
                blocker = dispatcher.submit("t", gate.wait)
                doomed = dispatcher.submit("t", ran.set, cancel=token)
                token.cancel()
                gate.set()
                blocker.result(timeout=10)
                with pytest.raises(ExecutionCancelled):
                    doomed.result(timeout=10)
                assert not ran.is_set()
                stats = dispatcher.tenant_stats()["t"]
                assert stats["cancelled"] == 1
                assert stats["occupancy"] == 0
        finally:
            gate.set()

    def test_running_job_cancels_cooperatively(self):
        """A running job that honours its token raises
        ExecutionCancelled, which the dispatcher counts as cancelled."""
        token = CancellationToken()
        started = threading.Event()

        def cooperative():
            started.set()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if token.cancelled:
                    raise ExecutionCancelled("stopped at a checkpoint")
                time.sleep(0.005)
            raise AssertionError("never cancelled")

        with FairDispatcher(workers=1) as dispatcher:
            future = dispatcher.submit("t", cooperative, cancel=token)
            assert started.wait(timeout=10)
            token.cancel()
            with pytest.raises(ExecutionCancelled):
                future.result(timeout=10)
            assert dispatcher.tenant_stats()["t"]["cancelled"] == 1
