"""End-to-end: the HTTP server over real sockets, via the thin client.

One module-scoped server instance: these tests exercise *the same*
process-wide session/cache the way concurrent production clients would,
so sharing it across tests is the point, not a shortcut.  Tests that
need isolation (admission, disconnects) build their own server.
"""

import json

import pytest

from repro import database_from_dict, mine, parse_flock
from repro.serve import (
    MiningClient,
    MiningService,
    ServeError,
    ServerConfig,
    server_in_thread,
)

FLOCK = """
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2

FILTER:
COUNT(answer.B) >= 4
"""

#: Alpha-variant of FLOCK (atoms reordered) — a different client asking
#: the same question in a different spelling must share cache entries.
#: (Renaming the *filter target* head variable is a documented
#: conservative miss, so the variant keeps ``B``.)
FLOCK_RENAMED = """
QUERY:
answer(B) :- baskets(B,$2) AND baskets(B,$1) AND $1 < $2

FILTER:
COUNT(answer.B) >= 4
"""


def make_db():
    return database_from_dict({
        "baskets": (
            ["BID", "item"],
            [
                (basket, f"i{item}")
                for basket in range(24)
                for item in range(6)
                if (basket + item) % 3
            ],
        ),
    })


@pytest.fixture(scope="module")
def server():
    service = MiningService(
        make_db(), ServerConfig(port=0, workers=2)
    )
    with server_in_thread(service) as running:
        yield running


@pytest.fixture()
def client(server):
    return MiningClient(server.address)


class TestMine:
    def test_mine_matches_direct_library_call(self, client):
        expected, _ = mine(make_db(), parse_flock(FLOCK))
        result = client.mine(FLOCK)
        assert result["status"] == "complete"
        assert result["columns"] == list(expected.columns)
        assert result["row_count"] == len(expected)
        assert {tuple(row) for row in result["rows"]} == expected.tuples
        assert result["report"]["strategy_used"] in (
            "naive", "optimized", "stats", "dynamic", "cache"
        )

    def test_cache_shared_across_requests(self, client):
        cold = client.mine(FLOCK)
        warm = client.mine(FLOCK_RENAMED)  # alpha-equivalent
        assert warm["report"]["cache_hits"] == 1
        assert warm["rows"] == cold["rows"]

    def test_stricter_threshold_served_by_containment(self, client):
        client.mine(FLOCK)
        stricter = client.mine(FLOCK, threshold=6)
        assert stricter["report"]["cache_hits"] == 1
        assert stricter["row_count"] <= client.mine(FLOCK)["row_count"]

    def test_limit_truncates_but_reports_full_count(self, client):
        result = client.mine(FLOCK, limit=2)
        assert len(result["rows"]) == 2
        assert result["truncated"] is True
        assert result["row_count"] > 2

    def test_report_round_trips_through_client(self, client):
        report = client.mine_report(FLOCK)
        assert report.strategy_used in (
            "naive", "optimized", "stats", "dynamic", "cache"
        )
        assert report.seconds >= 0

    def test_budget_exceeded_maps_to_408(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.mine(FLOCK.replace(">= 4", ">= 2"), max_rows=1)
        assert excinfo.value.status == 408
        assert excinfo.value.body.get("status") == "aborted"


class TestValidation:
    def test_malformed_flock_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.mine("not a flock at all")
        assert excinfo.value.status == 400

    def test_missing_flock_field_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("POST", "/v1/mine", {"threshold": 4})
        assert excinfo.value.status == 400

    def test_unknown_strategy_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.mine(FLOCK, strategy="quantum")
        assert excinfo.value.status == 400

    def test_unknown_join_order_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.mine(FLOCK, join_order="alphabetical")
        assert excinfo.value.status == 400

    def test_non_boolean_runtime_filters_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request(
                "POST", "/v1/mine",
                {"flock": FLOCK, "runtime_filters": "yes"},
            )
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/v1/nothing")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/v1/mine")
        assert excinfo.value.status == 405

    def test_invalid_json_body_is_400(self, client, server):
        import http.client

        connection = http.client.HTTPConnection(
            client.host, client.port, timeout=30
        )
        try:
            connection.request(
                "POST", "/v1/mine", body=b"{nope",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert "JSON" in body["error"]


class TestRuns:
    def test_run_status_after_completion(self, client):
        result = client.mine(FLOCK)
        status = client.run_status(result["run_id"])
        assert status["status"] == "complete"
        assert status["summary"]["row_count"] == result["row_count"]

    def test_unknown_run_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.run_status("no-such-run")
        assert excinfo.value.status == 404


class TestData:
    def test_load_and_mine_new_relation(self, client):
        client.load_relation(
            "pairs", ["a", "b"], [[1, 2], [1, 3], [2, 3], [3, 3]]
        )
        result = client.mine(
            """
            QUERY:
            answer(A) :- pairs(A,$1)

            FILTER:
            COUNT(answer.A) >= 2
            """
        )
        assert result["status"] == "complete"

    def test_reload_bumps_version_and_invalidates(self, client):
        flock = FLOCK.replace(">= 4", ">= 5")
        client.mine(flock)
        warm = client.mine(flock)
        assert warm["report"]["cache_hits"] == 1
        # Mutating the base relation must drop the derived entries...
        db = make_db()
        rows = [list(r) for r in sorted(db.get("baskets").tuples)]
        response = client.load_relation("baskets", ["BID", "item"], rows)
        assert response["cache_entries_invalidated"] >= 1
        # ...so the next ask re-evaluates rather than serving stale rows.
        cold = client.mine(flock)
        assert cold["report"]["cache_hits"] == 0

    def test_append_merges_rows(self, client):
        client.load_relation("seen", ["x"], [[1], [2]])
        response = client.load_relation("seen", ["x"], [[2], [3]],
                                        mode="append")
        assert response["rows"] == 3

    def test_append_with_wrong_columns_is_400(self, client):
        client.load_relation("typed", ["x"], [[1]])
        with pytest.raises(ServeError) as excinfo:
            client.load_relation("typed", ["y"], [[2]], mode="append")
        assert excinfo.value.status == 400


class TestObservability:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert "baskets" in health["relations"]
        assert health["session"]["queries"] >= 0

    def test_metrics_exposition_format(self, client):
        client.mine(FLOCK)
        text = client.metrics()
        assert "# TYPE repro_mine_seconds histogram" in text
        assert "# TYPE repro_cache_hits_total counter" in text
        assert 'repro_http_requests_total{endpoint="/v1/mine",status="200"}' in text
        assert text.endswith("\n")

    def test_cache_hit_counters_move(self, client):
        before = client.metric_value("repro_cache_hits_total") or 0
        client.mine(FLOCK)  # warm (other tests may have cached it)
        client.mine(FLOCK)  # guaranteed hit
        after = client.metric_value("repro_cache_hits_total")
        assert after >= before + 1

    def test_latency_histogram_counts_requests(self, client):
        client.mine(FLOCK)
        count = client.metric_value("repro_mine_seconds_count")
        assert count >= 1

    # A query shape no other test mines: the shared session cache
    # cannot serve it (exactly or by containment), so the knobs below
    # demonstrably reach a live evaluation.
    TRIPLE_FLOCK = """
    QUERY:
    answer(B) :- baskets(B,$1) AND baskets(B,$2) AND baskets(B,$3)
                 AND $1 < $2 AND $2 < $3
    FILTER:
    COUNT(answer.B) >= 2
    """

    def test_join_order_and_filters_reach_the_report(self, client):
        result = client.mine(
            self.TRIPLE_FLOCK, strategy="optimized", join_order="ues",
        )
        report = result["report"]
        assert report["join_order"] == "ues"
        assert report["runtime_filters"] is True

    def test_pruned_rows_counter_exposed(self, client):
        client.mine(
            self.TRIPLE_FLOCK.replace(">= 2", ">= 3"),
            strategy="stats", join_order="ues", runtime_filters=True,
        )
        text = client.metrics()
        assert "# TYPE repro_runtime_filter_rows_pruned counter" in text
        value = client.metric_value("repro_runtime_filter_rows_pruned")
        assert value is not None and value >= 0


class TestAdmission:
    def test_full_tenant_queue_is_429(self):
        import threading

        service = MiningService(
            make_db(),
            ServerConfig(port=0, workers=1, max_queued_per_tenant=1),
        )
        gate = threading.Event()
        # Occupy the single worker out-of-band so the HTTP request
        # finds the tenant's one slot taken.
        service.dispatcher.submit("greedy", gate.wait)
        try:
            with server_in_thread(service) as running:
                client = MiningClient(running.address, tenant="greedy")
                with pytest.raises(ServeError) as excinfo:
                    client.mine(FLOCK)
                assert excinfo.value.status == 429
                assert excinfo.value.body["tenant"] == "greedy"
                gate.set()  # release the worker for the next tenant
                # Another tenant was never blocked from admission.
                other = MiningClient(running.address, tenant="patient")
                assert other.mine(FLOCK)["status"] == "complete"
        finally:
            gate.set()


class TestCheckpointedRuns:
    def test_checkpoint_run_reports_manifest_progress(self, tmp_path):
        service = MiningService(
            make_db(),
            ServerConfig(
                port=0, workers=1,
                checkpoint_path=str(tmp_path / "ckpt.sqlite"),
            ),
        )
        with server_in_thread(service) as running:
            client = MiningClient(running.address)
            result = client.mine(FLOCK, checkpoint=True)
            assert result["report"]["steps_checkpointed"] >= 1
            status = client.run_status(result["run_id"])
            assert status["status"] == "complete"
            manifest = status["checkpoint"]
            assert manifest["status"] == "complete"
            assert manifest["steps_completed"] == manifest["steps_total"]

    def test_checkpoint_without_store_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.mine(FLOCK, checkpoint=True)
        assert excinfo.value.status == 400
