"""ResultCache unit tests: threshold reuse, bounds, LRU, invalidation."""

import pytest

from repro.datalog import atom, comparison, rule
from repro.flocks import parse_filter, support_filter
from repro.relational import Relation
from repro.session import (
    KIND_AGGREGATES,
    KIND_SURVIVORS,
    ResultCache,
    query_relations,
)


@pytest.fixture
def pair_query():
    return rule(
        "answer", ["B"],
        [atom("baskets", "B", "$1"), atom("baskets", "B", "$2"),
         comparison("$1", "<", "$2")],
    )


@pytest.fixture
def aggregates_relation():
    """Survivors of COUNT >= 2 with their counts kept."""
    return Relation(
        "ok", ("$1", "$2", "_agg0"),
        [("beer", "diapers", 3), ("beer", "chips", 2)],
    )


def put_aggregates(cache, query, relation, threshold=2, versions=None):
    return cache.put(
        query,
        support_filter(threshold, target="B"),
        KIND_AGGREGATES,
        relation,
        versions if versions is not None else {"baskets": 0},
        source_rows=10,
        param_columns=("$1", "$2"),
    )


class TestThresholdReuse:
    def test_same_threshold_hits(self, pair_query, aggregates_relation):
        cache = ResultCache()
        put_aggregates(cache, pair_query, aggregates_relation, threshold=2)
        entry = cache.find_exact(pair_query, support_filter(2, target="B"))
        assert entry is not None
        assert cache.stats.hits == 1

    def test_stricter_threshold_hits_and_refilters(self, pair_query,
                                                   aggregates_relation):
        cache = ResultCache()
        put_aggregates(cache, pair_query, aggregates_relation, threshold=2)
        entry = cache.find_exact(pair_query, support_filter(3, target="B"))
        assert entry is not None
        served = cache.serve_exact(entry, support_filter(3, target="B"))
        assert set(served.tuples) == {("beer", "diapers")}
        assert set(served.columns) == {"$1", "$2"}

    def test_weaker_threshold_misses(self, pair_query, aggregates_relation):
        cache = ResultCache()
        put_aggregates(cache, pair_query, aggregates_relation, threshold=2)
        assert cache.find_exact(pair_query, support_filter(1, target="B")) is None
        assert cache.stats.misses == 1

    def test_alpha_variant_hits(self, pair_query, aggregates_relation):
        cache = ResultCache()
        put_aggregates(cache, pair_query, aggregates_relation, threshold=2)
        twin = rule(
            "answer", ["B"],
            [atom("baskets", "B", "$2"), atom("baskets", "B", "$1"),
             comparison("$1", "<", "$2")],
        )
        assert cache.find_exact(twin, support_filter(3, target="B")) is not None

    def test_renamed_filter_target_misses(self, pair_query,
                                          aggregates_relation):
        # The filter names the head variable ("COUNT(answer.B)"); renaming
        # it changes the filter signature, so the entry is (conservatively)
        # not reused — a miss, never a wrong answer.
        cache = ResultCache()
        put_aggregates(cache, pair_query, aggregates_relation, threshold=2)
        twin = rule(
            "answer", ["Bkt"],
            [atom("baskets", "Bkt", "$1"), atom("baskets", "Bkt", "$2"),
             comparison("$1", "<", "$2")],
        )
        assert cache.find_exact(twin, support_filter(2, target="Bkt")) is None

    def test_different_signature_misses(self, pair_query, aggregates_relation):
        cache = ResultCache()
        put_aggregates(cache, pair_query, aggregates_relation, threshold=2)
        sum_filter = parse_filter("SUM(baskets.Item) >= 2")
        assert cache.find_exact(pair_query, sum_filter) is None

    def test_weaker_incumbent_kept(self, pair_query, aggregates_relation):
        cache = ResultCache()
        put_aggregates(cache, pair_query, aggregates_relation, threshold=2)
        smaller = Relation("ok", ("$1", "$2", "_agg0"),
                           [("beer", "diapers", 3)])
        # Storing the threshold-3 result must not clobber the more
        # general threshold-2 entry in the same slot.
        assert put_aggregates(cache, pair_query, smaller, threshold=3) is None
        entry = cache.find_exact(pair_query, support_filter(2, target="B"))
        assert entry is not None and len(entry.relation) == 2


class TestBounds:
    def test_containing_query_serves_as_bound(self, pair_query):
        cache = ResultCache()
        plain = rule(
            "answer", ["B"],
            [atom("baskets", "B", "$1"), atom("baskets", "B", "$2")],
        )
        survivors = Relation("ok", ("$1", "$2"),
                             [("beer", "diapers"), ("diapers", "beer")])
        cache.put(plain, support_filter(2, target="B"), KIND_SURVIVORS,
                  survivors, {"baskets": 0}, 10, ("$1", "$2"))
        # pair_query (with the tie-break) is contained in plain.
        entry = cache.find_bound(
            pair_query, support_filter(2, target="B"), ("$1", "$2")
        )
        assert entry is not None
        assert cache.stats.bound_hits == 1
        assert set(entry.survivor_relation("ok").columns) == {"$1", "$2"}

    def test_contained_query_is_not_a_bound(self, pair_query):
        cache = ResultCache()
        survivors = Relation("ok", ("$1", "$2"), [("beer", "diapers")])
        cache.put(pair_query, support_filter(2, target="B"), KIND_SURVIVORS,
                  survivors, {"baskets": 0}, 10, ("$1", "$2"))
        plain = rule(
            "answer", ["B"],
            [atom("baskets", "B", "$1"), atom("baskets", "B", "$2")],
        )
        # The tie-broken query's survivors under-approximate plain's.
        assert cache.find_bound(
            plain, support_filter(2, target="B"), ("$1", "$2")
        ) is None

    def test_tightest_bound_wins(self, pair_query):
        cache = ResultCache()
        plain = rule(
            "answer", ["B"],
            [atom("baskets", "B", "$1"), atom("baskets", "B", "$2")],
        )
        single = rule("answer", ["B"], [atom("baskets", "B", "$1"),
                                        atom("baskets", "B", "$2"),
                                        comparison("$1", "<=", "$2")])
        big = Relation("ok", ("$1", "$2"),
                       [(a, b) for a in "abc" for b in "abc"])
        small = Relation("ok", ("$1", "$2"), [("a", "b"), ("b", "c")])
        cache.put(plain, support_filter(2, target="B"), KIND_SURVIVORS,
                  big, {"baskets": 0}, 10, ("$1", "$2"))
        cache.put(single, support_filter(2, target="B"), KIND_SURVIVORS,
                  small, {"baskets": 0}, 10, ("$1", "$2"))
        entry = cache.find_bound(
            pair_query, support_filter(2, target="B"), ("$1", "$2")
        )
        assert entry is not None
        assert len(entry.relation) == 2

    def test_find_count_requires_equal_thresholds(self, pair_query,
                                                  aggregates_relation):
        cache = ResultCache()
        put_aggregates(cache, pair_query, aggregates_relation, threshold=2)
        assert cache.find_count(pair_query, support_filter(2, target="B")) == 2
        # A stricter threshold could re-filter, but the count would be
        # wrong for the optimizer's cost model: no count served.
        assert cache.find_count(pair_query, support_filter(3, target="B")) is None


class TestLRUEviction:
    def queries(self, n):
        return [
            rule("answer", ["B"], [atom(f"rel{i}", "B", "$1")])
            for i in range(n)
        ]

    def test_entry_cap_evicts_least_recently_used(self):
        cache = ResultCache(max_rows=None, max_entries=2)
        q0, q1, q2 = self.queries(3)
        rel = Relation("ok", ("$1",), [("a",)])
        f = support_filter(2, target="B")
        cache.put(q0, f, KIND_SURVIVORS, rel, {"rel0": 0}, 1, ("$1",))
        cache.put(q1, f, KIND_SURVIVORS, rel, {"rel1": 0}, 1, ("$1",))
        # Touch q0 so q1 becomes the LRU victim.
        assert cache.find_bound(q0, f, ("$1",)) is not None
        cache.put(q2, f, KIND_SURVIVORS, rel, {"rel2": 0}, 1, ("$1",))
        assert cache.stats.evicted == 1
        assert cache.find_bound(q0, f, ("$1",)) is not None
        assert cache.find_bound(q1, f, ("$1",)) is None

    def test_row_cap_evicts(self):
        cache = ResultCache(max_rows=5, max_entries=None)
        q0, q1 = self.queries(2)
        f = support_filter(2, target="B")
        big = Relation("ok", ("$1",), [(i,) for i in range(4)])
        cache.put(q0, f, KIND_SURVIVORS, big, {"rel0": 0}, 4, ("$1",))
        cache.put(q1, f, KIND_SURVIVORS, big, {"rel1": 0}, 4, ("$1",))
        assert cache.total_rows() <= 5 or len(cache) == 1
        assert cache.stats.evicted == 1

    def test_oversize_result_rejected(self):
        cache = ResultCache(max_rows=3, max_entries=None)
        (q0,) = self.queries(1)
        huge = Relation("ok", ("$1",), [(i,) for i in range(10)])
        stored = cache.put(q0, support_filter(2, target="B"), KIND_SURVIVORS,
                           huge, {"rel0": 0}, 10, ("$1",))
        assert stored is None
        assert cache.stats.rejected_oversize == 1
        assert len(cache) == 0


class TestInvalidation:
    def test_only_dependent_entries_dropped(self):
        cache = ResultCache()
        qa = rule("answer", ["B"], [atom("a_rel", "B", "$1")])
        qb = rule("answer", ["B"], [atom("b_rel", "B", "$1")])
        rel = Relation("ok", ("$1",), [("x",)])
        f = support_filter(2, target="B")
        cache.put(qa, f, KIND_SURVIVORS, rel, {"a_rel": 0}, 1, ("$1",))
        cache.put(qb, f, KIND_SURVIVORS, rel, {"b_rel": 0}, 1, ("$1",))
        versions = {"a_rel": 1, "b_rel": 0}  # a_rel was mutated
        dropped = cache.invalidate_stale(lambda n: versions[n])
        assert dropped == 1
        assert cache.find_bound(qb, f, ("$1",)) is not None
        assert cache.find_bound(qa, f, ("$1",)) is None

    def test_query_relations_spans_union(self, web_union_query):
        assert query_relations(web_union_query) == {
            "inTitle", "inAnchor", "link"
        }
