"""Session counter races fixed alongside the conlint annotation sweep.

Two regressions:

* ``_persist_entry`` must mint a *unique* sequence per persisted entry
  even when worker threads publish finals concurrently — the increment
  and the read now happen under ``_counter_lock`` in one critical
  section (two threads used to be able to read the same value and
  overwrite one another's ``_repro_cache_<n>`` table);
* ``stats()`` reads the query counter and the cache counters under the
  declared session → cache lock order while miners bump them.
"""

from __future__ import annotations

import threading

from repro.session import MiningSession, with_support_threshold

THREADS = 8
ITERS = 50


class RecordingBackend:
    """Stands in for the SQLite backend; records persisted table names."""

    def __init__(self):
        self._lock = threading.Lock()
        self.names: list[str] = []

    def persist_cached_result(self, name, relation, metadata):
        with self._lock:
            self.names.append(name)

    def close(self):
        pass


def test_persist_sequence_is_unique_across_threads(
    small_basket_db, basket_flock
):
    session = MiningSession(small_basket_db)
    session.mine(basket_flock)
    (entry,) = session.cache.entries()
    backend = RecordingBackend()
    session._persist_backend = backend

    def publish():
        for _ in range(ITERS):
            session._persist_entry(entry)

    threads = [threading.Thread(target=publish) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(backend.names) == THREADS * ITERS
    # Every persisted table got its own sequence number.
    assert len(set(backend.names)) == THREADS * ITERS


def test_stats_consistent_while_miners_run(small_basket_db, basket_flock):
    session = MiningSession(small_basket_db)
    errors: list[BaseException] = []
    mines = 6

    def miner():
        try:
            for threshold in (2, 3, 2, 3, 2, 3):
                session.mine(with_support_threshold(basket_flock, threshold))
        except BaseException as error:  # pragma: no cover - fail path
            errors.append(error)

    def reader():
        try:
            for _ in range(200):
                stats = session.stats()
                assert stats.queries >= 0
                assert stats.cache_hits + stats.cache_misses <= stats.queries
        except BaseException as error:  # pragma: no cover - fail path
            errors.append(error)

    threads = [threading.Thread(target=miner)] + [
        threading.Thread(target=reader) for _ in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    assert session.stats().queries == mines
