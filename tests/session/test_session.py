"""MiningSession end-to-end tests: the PR's acceptance criteria live here.

* a flock re-asked at a higher threshold is answered with **zero**
  base-relation reads (the database is poisoned on the warm call);
* mutating a base relation invalidates exactly the dependent entries;
* guards thread through cache hits; non-monotone filters bypass the
  cache; sqlite persistence warms a brand-new process's session.
"""

import pytest

from repro.errors import BudgetExceededError, FilterError
from repro.flocks import QueryFlock, parse_filter
from repro.flocks.naive import evaluate_flock
from repro.guard import ResourceBudget
from repro.session import MiningSession, with_support_threshold


@pytest.fixture
def session(small_basket_db):
    return MiningSession(small_basket_db)


def poison_reads(db):
    """Make any base-relation read blow up (version checks stay legal)."""

    def boom(name):
        raise AssertionError(f"base relation {name!r} was read")

    db.get = boom


class TestThresholdReuseAcceptance:
    def test_higher_threshold_reads_no_base_relations(
        self, session, basket_flock, small_basket_db
    ):
        cold, report_cold = session.mine(basket_flock)
        assert report_cold.strategy_used != "cache"
        assert report_cold.cache_misses == 1

        hotter = with_support_threshold(basket_flock, 3)
        expected = evaluate_flock(small_basket_db, hotter)
        poison_reads(session.db)
        warm, report_warm = session.mine(hotter)
        assert report_warm.strategy_used == "cache"
        assert report_warm.cache_hits == 1
        assert report_warm.rows_saved > 0
        assert warm == expected

    def test_same_threshold_rerun_hits(self, session, basket_flock):
        cold, _ = session.mine(basket_flock)
        warm, report = session.mine(basket_flock)
        assert report.strategy_used == "cache"
        assert warm == cold

    def test_weaker_threshold_misses(self, session, basket_flock):
        session.mine(with_support_threshold(basket_flock, 3))
        _, report = session.mine(basket_flock)  # support 2: weaker
        assert report.strategy_used != "cache"
        assert report.cache_misses == 1

    @pytest.mark.parametrize("strategy", ["naive", "optimized", "dynamic"])
    def test_every_strategy_warms_the_cache(
        self, small_basket_db, basket_flock, strategy
    ):
        session = MiningSession(small_basket_db)
        cold, _ = session.mine(basket_flock, strategy=strategy)
        warm, report = session.mine(
            with_support_threshold(basket_flock, 3), strategy=strategy
        )
        assert report.strategy_used == "cache"
        assert warm.tuples <= cold.tuples

    def test_cache_result_matches_each_strategy(
        self, small_basket_db, basket_flock
    ):
        session = MiningSession(small_basket_db)
        session.mine(basket_flock, strategy="naive")
        hotter = with_support_threshold(basket_flock, 3)
        expected = evaluate_flock(small_basket_db, hotter)
        served, report = session.mine(hotter, strategy="optimized")
        assert report.strategy_used == "cache"
        assert served == expected


class TestInvalidation:
    def test_mutation_invalidates_exactly_dependent_entries(
        self, small_basket_db, small_medical_db, basket_flock, medical_flock
    ):
        # One database holding both domains, one cache over both.
        db = small_basket_db
        for name in ("diagnoses", "exhibits", "treatments", "causes"):
            db.add(small_medical_db.get(name))
        session = MiningSession(db)
        session.mine(basket_flock)
        session.mine(medical_flock)

        # Mutating baskets must drop the basket entry and keep medical's.
        baskets = db.get("baskets")
        db.add_rows("baskets", baskets.columns,
                    list(baskets.tuples) + [(99, "soap")])
        _, medical_report = session.mine(medical_flock)
        assert medical_report.strategy_used == "cache"
        _, basket_report = session.mine(basket_flock)
        assert basket_report.strategy_used != "cache"
        assert session.cache.stats.invalidated >= 1

    def test_fresh_result_after_mutation_is_correct(
        self, session, basket_flock
    ):
        session.mine(basket_flock)
        baskets = session.db.get("baskets")
        session.db.add_rows(
            "baskets", baskets.columns,
            [t for t in baskets.tuples if t[0] != 4],
        )
        fresh, report = session.mine(basket_flock)
        assert report.strategy_used != "cache"
        expected = evaluate_flock(session.db, basket_flock)
        assert fresh == expected


class TestGuards:
    def test_budget_applies_to_cache_hit(self, session, basket_flock):
        session.mine(basket_flock)
        tiny = ResourceBudget(max_answer_rows=1)
        with pytest.raises(BudgetExceededError):
            session.mine(basket_flock, budget=tiny)

    def test_session_default_budget_used(self, small_basket_db, basket_flock):
        session = MiningSession(
            small_basket_db, budget=ResourceBudget(max_answer_rows=1)
        )
        with pytest.raises(BudgetExceededError):
            session.mine(basket_flock)

    def test_per_call_budget_overrides_default(
        self, small_basket_db, basket_flock
    ):
        session = MiningSession(
            small_basket_db, budget=ResourceBudget(max_answer_rows=1)
        )
        rel, _ = session.mine(
            basket_flock, budget=ResourceBudget(max_answer_rows=10_000)
        )
        assert len(rel) > 1


class TestNonMonotone:
    def test_non_monotone_filter_bypasses_cache(
        self, small_basket_db, basket_query_ordered
    ):
        flock = QueryFlock(
            basket_query_ordered, parse_filter("COUNT(answer.B) = 2")
        )
        session = MiningSession(small_basket_db)
        _, first = session.mine(flock, lint=False)
        _, second = session.mine(flock, lint=False)
        assert first.strategy_used != "cache"
        assert second.strategy_used != "cache"
        assert len(session.cache) == 0


class TestWithSupportThreshold:
    def test_replaces_support_conjunct(self, basket_flock):
        hotter = with_support_threshold(basket_flock, 7)
        assert "7" in str(hotter.filter)
        assert hotter.query is basket_flock.query

    def test_preserves_other_conjuncts(self, basket_query_ordered):
        flock = QueryFlock(
            basket_query_ordered,
            parse_filter("COUNT(answer.B) >= 2 AND SUM(answer.B) <= 100"),
        )
        hotter = with_support_threshold(flock, 5)
        assert "5" in str(hotter.filter)
        assert "100" in str(hotter.filter)

    def test_no_support_conjunct_raises(self, basket_query_ordered):
        flock = QueryFlock(
            basket_query_ordered, parse_filter("SUM(answer.B) <= 100")
        )
        with pytest.raises(FilterError):
            with_support_threshold(flock, 5)


class TestPersistence:
    def test_second_session_starts_warm(
        self, tmp_path, small_basket_db, basket_flock
    ):
        path = str(tmp_path / "cache.db")
        with MiningSession(small_basket_db, persist_path=path) as first:
            cold, _ = first.mine(basket_flock)

        with MiningSession(small_basket_db, persist_path=path) as second:
            warm, report = second.mine(basket_flock)
        assert report.strategy_used == "cache"
        assert warm == cold

    def test_changed_cardinality_blocks_adoption(
        self, tmp_path, small_basket_db, basket_flock
    ):
        path = str(tmp_path / "cache.db")
        with MiningSession(small_basket_db, persist_path=path) as first:
            first.mine(basket_flock)

        baskets = small_basket_db.get("baskets")
        small_basket_db.add_rows(
            "baskets", baskets.columns,
            list(baskets.tuples) + [(99, "soap")],
        )
        with MiningSession(small_basket_db, persist_path=path) as second:
            _, report = second.mine(basket_flock)
        assert report.strategy_used != "cache"


class TestStats:
    def test_stats_reflect_traffic(self, session, basket_flock):
        session.mine(basket_flock)
        session.mine(basket_flock)
        stats = session.stats()
        assert stats.queries == 2
        assert stats.cache_hits == 1
        assert stats.cache_misses >= 1
        assert stats.entries >= 1
        text = str(stats)
        assert "2 queries" in text and "1 exact hits" in text

    def test_shared_cache_across_sessions(
        self, small_basket_db, basket_flock
    ):
        first = MiningSession(small_basket_db)
        first.mine(basket_flock)
        second = MiningSession(small_basket_db, cache=first.cache)
        _, report = second.mine(basket_flock)
        assert report.strategy_used == "cache"


class TestUnionFlocks:
    def test_union_flock_round_trips(self, small_web_db, web_flock):
        session = MiningSession(small_web_db)
        cold, report_cold = session.mine(web_flock)
        assert report_cold.strategy_used != "cache"
        warm, report_warm = session.mine(web_flock)
        assert report_warm.strategy_used == "cache"
        assert warm == cold
