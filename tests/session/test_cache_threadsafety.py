"""Concurrent-access stress for the shared result cache.

The serve layer points many dispatcher worker threads at one
process-wide :class:`~repro.session.MiningSession`, so the cache's LRU
bookkeeping (every *lookup* mutates recency order) must hold up under
contention: no corruption, no lost entries, and — the subtle one — no
**double-miss**, where two threads racing on an alpha-equivalent flock
both fail to see the warm entry and both re-evaluate.
"""

import threading

import pytest

from repro import database_from_dict, parse_flock
from repro.session import MiningSession, ResultCache, with_support_threshold

FLOCK = """
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2

FILTER:
COUNT(answer.B) >= 3
"""

#: Alpha-equivalent spellings (atom order permuted, comparison flipped):
#: all share one canonical cache key.
VARIANTS = [
    FLOCK,
    """
    QUERY:
    answer(B) :- baskets(B,$2) AND baskets(B,$1) AND $1 < $2

    FILTER:
    COUNT(answer.B) >= 3
    """,
    """
    QUERY:
    answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $2 > $1

    FILTER:
    COUNT(answer.B) >= 3
    """,
]


def make_db():
    return database_from_dict({
        "baskets": (
            ["BID", "item"],
            [
                (basket, f"i{item}")
                for basket in range(30)
                for item in range(8)
                if (basket + item) % 3
            ],
        ),
    })


def run_threads(count, work):
    """Run ``work(index)`` on ``count`` threads from a start barrier;
    re-raises the first failure."""
    barrier = threading.Barrier(count)
    failures = []

    def runner(index):
        barrier.wait()
        try:
            work(index)
        except BaseException as error:  # noqa: BLE001 - reported below
            failures.append(error)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


class TestWarmCacheUnderContention:
    def test_no_double_miss_on_alpha_equivalent_flocks(self):
        """After one warming call, every concurrent alpha-equivalent
        mine must hit — a single spurious miss means a lookup raced the
        LRU mutation of another."""
        session = MiningSession(make_db())
        baseline, warm_report = session.mine(parse_flock(FLOCK))
        assert warm_report.cache_hits == 0

        threads, rounds = 12, 8
        results = [None] * threads

        def work(index):
            for _ in range(rounds):
                flock = parse_flock(VARIANTS[index % len(VARIANTS)])
                relation, report = session.mine(flock)
                assert report.cache_hits == 1, (
                    f"thread {index} missed a warm cache"
                )
                results[index] = relation

        run_threads(threads, work)
        assert all(r.tuples == baseline.tuples for r in results)
        # Exactly the warming call missed; nobody double-missed.
        assert session.cache.stats.misses == 1
        assert session.stats().queries == 1 + threads * rounds

    def test_threshold_ladder_served_concurrently(self):
        """Stricter-threshold asks re-filter the same warm entry from
        many threads at once."""
        session = MiningSession(make_db())
        base = parse_flock(FLOCK)
        session.mine(base)

        def work(index):
            threshold = 3 + (index % 4)  # all >= the warmed threshold
            relation, report = session.mine(
                with_support_threshold(base, threshold)
            )
            assert report.cache_hits == 1
            assert len(relation) <= 1000

        run_threads(12, work)
        assert session.cache.stats.misses == 1


class TestColdCacheUnderContention:
    def test_concurrent_distinct_flocks_respect_bounds(self):
        """Many threads mining *different* flocks race puts and
        evictions on a tiny cache; the bounds must hold throughout and
        afterwards."""
        session = MiningSession(
            make_db(), max_cache_entries=4, max_cache_rows=2_000
        )

        def work(index):
            threshold = 2 + index  # distinct filters -> distinct slots
            relation, _ = session.mine(
                with_support_threshold(parse_flock(FLOCK), threshold)
            )
            assert len(session.cache) <= 4
            assert session.cache.total_rows() <= 2_000

        run_threads(10, work)
        assert len(session.cache) <= 4
        assert session.cache.total_rows() <= 2_000

    def test_mixed_readers_writers_and_invalidation(self):
        """Readers, writers, and invalidators interleaving must neither
        crash nor corrupt the entry table."""
        db = make_db()
        session = MiningSession(db, max_cache_entries=8)
        base = parse_flock(FLOCK)
        session.mine(base)

        def work(index):
            if index % 5 == 4:
                # Invalidator: bump a version, then drop stale entries.
                rows = sorted(db.get("baskets").tuples)
                db.add_rows("baskets", ["BID", "item"], rows)
                session.invalidate_stale()
            else:
                relation, _ = session.mine(
                    with_support_threshold(base, 3 + index % 3)
                )
                assert relation.columns is not None

        run_threads(10, work)
        # The table survived: every remaining entry still serves.
        for entry in session.cache.entries():
            assert len(entry.relation) >= 0
        stats = session.cache.stats
        assert stats.stored >= 1
        assert stats.invalidated >= 0


class TestRawCacheRaces:
    def test_hammered_lru_never_loses_counts(self):
        """Direct cache-level hammering: concurrent exact lookups on a
        warm key each count exactly one hit (no lost updates on the
        stats counters, no KeyError from racing move_to_end)."""
        from repro.flocks import support_filter
        from repro.datalog import atom, rule

        cache = ResultCache()
        query = rule(
            "answer", ["B"],
            [atom("baskets", "B", "$1"), atom("baskets", "B", "$2")],
        )
        from repro.relational import Relation

        cache.put(
            query,
            support_filter(2, target="B"),
            "aggregates",
            Relation("r", ["$1", "$2", "_agg0"], {("a", "b", 5)}),
            versions={"baskets": 0},
            source_rows=10,
            param_columns=("$1", "$2"),
        )
        threads, rounds = 16, 200

        def work(index):
            for _ in range(rounds):
                entry = cache.find_exact(
                    query, support_filter(3, target="B")
                )
                assert entry is not None

        run_threads(threads, work)
        assert cache.stats.hits == threads * rounds
        assert cache.stats.misses == 0
