"""Verifier totality properties.

Every plan the library itself produces must satisfy its own verifiers:
greedy and Selinger lowerings type-check against the IR schema, dynamic
re-planned suffixes type-check, and every legal FILTER-step plan earns a
legality certificate that independently re-validates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import certify_plan, check_physical_plan, verify_certificate
from repro.datalog.subqueries import safe_subqueries
from repro.engine import lower_rule
from repro.engine.planner import complete_order
from repro.flocks import (
    FlockOptimizer,
    execute_step,
    fig3_flock,
    plan_from_subqueries,
)
from repro.flocks.executor import lower_filter_step
from repro.relational import database_from_dict


diag = st.lists(
    st.tuples(st.integers(0, 6), st.sampled_from(["d1", "d2", "d3"])),
    max_size=7,
    unique_by=lambda t: t[0],
)
exh = st.frozensets(
    st.tuples(st.integers(0, 6), st.sampled_from(["s1", "s2"])), max_size=14
)
trt = st.frozensets(
    st.tuples(st.integers(0, 6), st.sampled_from(["m1", "m2"])), max_size=14
)
cse = st.frozensets(
    st.tuples(st.sampled_from(["d1", "d2", "d3"]), st.sampled_from(["s1", "s2"])),
    max_size=6,
)
supports = st.integers(1, 3)


def medical_db(diag, exh, trt, cse):
    return database_from_dict(
        {
            "diagnoses": (("P", "D"), diag),
            "exhibits": (("P", "S"), exh),
            "treatments": (("P", "M"), trt),
            "causes": (("D", "S"), cse),
        }
    )


class TestLoweringAlwaysTypeChecks:
    @given(diag, exh, trt, cse, st.sampled_from(["greedy", "selinger"]))
    @settings(max_examples=30, deadline=None)
    def test_lowered_rule_plans_are_clean(
        self, diag, exh, trt, cse, strategy
    ):
        db = medical_db(diag, exh, trt, cse)
        query = fig3_flock(support=2).rules[0]
        plan = lower_rule(db, query, order_strategy=strategy)
        assert check_physical_plan(plan, db=db).is_clean

    @given(diag, exh, trt, cse, st.integers(0, 2), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_replanned_suffixes_are_clean(
        self, diag, exh, trt, cse, start, observed
    ):
        """The dynamic strategy keeps an executed prefix and re-plans the
        suffix; every such completed order must lower to a clean plan."""
        db = medical_db(diag, exh, trt, cse)
        query = fig3_flock(support=2).rules[0]
        positives = query.positive_atoms()
        order = complete_order(db, positives, [start], observed)
        plan = lower_rule(db, query, join_order=order)
        assert check_physical_plan(plan, db=db).is_clean


class TestCertificatesAlwaysRevalidate:
    @given(diag, exh, trt, cse, supports)
    @settings(max_examples=15, deadline=None)
    def test_safe_subquery_plans_certify_and_type_check(
        self, diag, exh, trt, cse, support
    ):
        db = medical_db(diag, exh, trt, cse)
        flock = fig3_flock(support=support)
        for candidate in safe_subqueries(flock.rules[0]):
            if not candidate.parameters:
                continue
            plan = plan_from_subqueries(flock, [("okX", candidate)])
            certificate = certify_plan(flock, plan)
            assert certificate.ok
            assert all(
                branch.witness is not None
                for step in certificate.steps
                for branch in step.branches
            )
            assert verify_certificate(certificate).is_clean
            # Lower and type-check every step the way the executor does:
            # later steps see earlier steps' ok-relations in the catalog.
            scratch = db.scratch()
            for step in plan.steps:
                step_plan = lower_filter_step(scratch, flock, step)
                assert check_physical_plan(step_plan, db=scratch).is_clean
                ok, _ = execute_step(scratch, flock, step)
                scratch.add(ok)

    @given(diag, exh, trt, cse, supports)
    @settings(max_examples=15, deadline=None)
    def test_optimizer_best_plan_certificate_revalidates(
        self, diag, exh, trt, cse, support
    ):
        db = medical_db(diag, exh, trt, cse)
        flock = fig3_flock(support=support)
        scored = FlockOptimizer(db, flock).best_plan()
        assert scored.certificate is not None
        assert scored.certificate.ok
        assert verify_certificate(scored.certificate).is_clean
