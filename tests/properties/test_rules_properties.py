"""Property tests for association rules and intermediate predicates."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import parse_rule
from repro.datalog.program import materialize_views
from repro.flocks import apriori_itemsets, mine_association_rules
from repro.relational import (
    Database,
    Relation,
    evaluate_conjunctive,
    natural_join,
)


basket_rows = st.frozensets(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.sampled_from(["a", "b", "c", "d"]),
    ),
    min_size=1,
    max_size=30,
)


class TestRuleMeasureInvariants:
    @given(basket_rows, st.integers(1, 4))
    @settings(max_examples=80, deadline=None)
    def test_measure_definitions(self, rows, support):
        baskets = Relation("baskets", ("BID", "Item"), rows)
        n = baskets.distinct_count("BID")
        levels = apriori_itemsets(baskets, support)
        rules = mine_association_rules(baskets, min_support=support)
        for rule in rules:
            # support = count / N
            assert rule.support == rule.support_count / n
            # confidence in (0, 1]
            assert 0 < rule.confidence <= 1
            # the rule's itemset really is frequent with that count
            assert levels[len(rule.itemset)][rule.itemset] == rule.support_count
            # antecedent support >= rule support (downward closure)
            antecedent_count = levels[len(rule.antecedent)][rule.antecedent]
            assert antecedent_count >= rule.support_count
            # interest = confidence / P(consequent)
            consequent_count = levels[1][frozenset((rule.consequent,))]
            expected = rule.confidence / (consequent_count / n)
            assert abs(rule.interest - expected) < 1e-9

    @given(basket_rows, st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_confidence_filter_monotone(self, rows, support):
        baskets = Relation("baskets", ("BID", "Item"), rows)
        loose = mine_association_rules(baskets, min_support=support)
        strict = mine_association_rules(
            baskets, min_support=support, min_confidence=0.7
        )
        assert {str(r) for r in strict} <= {str(r) for r in loose}


rel_rows = st.frozensets(
    st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=15
)


class TestProgramSemantics:
    @given(rel_rows, rel_rows)
    @settings(max_examples=80, deadline=None)
    def test_view_equals_inline_expansion(self, r_rows, s_rows):
        """A query over a materialized view must equal the query with
        the view's definition spliced inline."""
        db = Database(
            [
                Relation("r", ("u", "v"), r_rows),
                Relation("s", ("u", "v"), s_rows),
            ]
        )
        view = parse_rule("v(X, Z) :- r(X, Y) AND s(Y, Z)")
        scratch = materialize_views(db, [view])

        over_view = parse_rule("answer(X, Z) :- v(X, Z)")
        inline = parse_rule("answer(X, Z) :- r(X, Y) AND s(Y, Z)")
        assert evaluate_conjunctive(scratch, over_view) == (
            evaluate_conjunctive(db, inline)
        )

    @given(rel_rows, rel_rows)
    @settings(max_examples=60, deadline=None)
    def test_view_contents_equal_direct_join(self, r_rows, s_rows):
        db = Database(
            [
                Relation("r", ("A", "B"), r_rows),
                Relation("s", ("B", "C"), s_rows),
            ]
        )
        view = parse_rule("v(A, C) :- r(A, B) AND s(B, C)")
        scratch = materialize_views(db, [view])
        direct = natural_join(db.get("r"), db.get("s")).project(["A", "C"])
        assert scratch.get("v").tuples == direct.tuples
