"""Property: budgets never change answers — they only abort.

For random basket flocks, evaluation under any *sufficient* budget is
identical to unbudgeted evaluation, and any *insufficient* budget
raises :class:`BudgetExceededError` rather than silently truncating.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BudgetExceededError, ResourceBudget, mine
from repro.flocks import (
    evaluate_flock,
    evaluate_flock_dynamic,
    itemset_flock,
)
from repro.relational import Database, Relation


basket_rows = st.frozensets(
    st.tuples(
        st.integers(min_value=0, max_value=11),
        st.sampled_from(["a", "b", "c", "d", "e"]),
    ),
    min_size=1,
    max_size=40,
)
supports = st.integers(min_value=1, max_value=4)


def basket_db(rows) -> Database:
    return Database([Relation("baskets", ("BID", "Item"), rows)])


GENEROUS = ResourceBudget(
    seconds=300, max_intermediate_rows=10**9, max_answer_rows=10**9
)


class TestSufficientBudgetIsInvisible:
    @given(basket_rows, supports)
    @settings(max_examples=60, deadline=None)
    def test_naive_matches_unbudgeted(self, rows, support):
        db = basket_db(rows)
        flock = itemset_flock(2, support=support)
        unbudgeted = evaluate_flock(db, flock)
        assert evaluate_flock(db, flock, guard=GENEROUS) == unbudgeted

    @given(basket_rows, supports)
    @settings(max_examples=40, deadline=None)
    def test_dynamic_matches_unbudgeted(self, rows, support):
        db = basket_db(rows)
        flock = itemset_flock(2, support=support)
        unbudgeted, _ = evaluate_flock_dynamic(db, flock)
        budgeted, _ = evaluate_flock_dynamic(db, flock, guard=GENEROUS)
        assert budgeted.relation == unbudgeted.relation

    @given(basket_rows, supports)
    @settings(max_examples=30, deadline=None)
    def test_exact_high_water_budget_still_suffices(self, rows, support):
        """The row bound is inclusive: budgeting exactly the observed
        high-water mark must succeed."""
        db = basket_db(rows)
        flock = itemset_flock(2, support=support)
        probe = ResourceBudget().start()
        unbudgeted = evaluate_flock(db, flock, guard=probe)
        exact = ResourceBudget(max_intermediate_rows=probe.high_water_rows)
        assert evaluate_flock(db, flock, guard=exact) == unbudgeted


class TestInsufficientBudgetRaises:
    @given(basket_rows, supports)
    @settings(max_examples=60, deadline=None)
    def test_below_high_water_raises_never_truncates(self, rows, support):
        db = basket_db(rows)
        flock = itemset_flock(2, support=support)
        probe = ResourceBudget().start()
        evaluate_flock(db, flock, guard=probe)
        starved = ResourceBudget(
            max_intermediate_rows=probe.high_water_rows - 1
        )
        try:
            evaluate_flock(db, flock, guard=starved)
        except BudgetExceededError as error:
            assert error.limit == "intermediate_rows"
        else:
            raise AssertionError("insufficient budget returned an answer")

    @given(basket_rows, supports)
    @settings(max_examples=40, deadline=None)
    def test_answer_cap_below_result_size_raises(self, rows, support):
        db = basket_db(rows)
        flock = itemset_flock(2, support=support)
        full = evaluate_flock(db, flock)
        if not full:
            return  # no answer to starve
        starved = ResourceBudget(max_answer_rows=len(full) - 1)
        try:
            evaluate_flock(db, flock, guard=starved)
        except BudgetExceededError as error:
            assert error.limit == "answer_rows"
        else:
            raise AssertionError("answer cap was silently ignored")


class TestAllOrNothing:
    @given(
        basket_rows,
        supports,
        st.integers(min_value=0, max_value=50),
        st.sampled_from(["naive", "optimized", "dynamic"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_row_budget_raises_or_agrees_exactly(
        self, rows, support, cap, strategy
    ):
        """The core contract: under an arbitrary budget, mine() either
        aborts loudly or returns exactly the unbudgeted answer — there
        is no in-between."""
        db = basket_db(rows)
        flock = itemset_flock(2, support=support)
        unbudgeted = evaluate_flock(db, flock)
        try:
            relation, _ = mine(
                db, flock, strategy=strategy,
                budget=ResourceBudget(max_intermediate_rows=cap),
            )
        except BudgetExceededError:
            return
        assert relation == unbudgeted
