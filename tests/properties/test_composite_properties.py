"""Property tests for composite filters: the conjunction-of-monotone
corollary to Section 5, plus plan soundness under composites."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.subqueries import SubqueryCandidate
from repro.flocks import (
    CompositeFilter,
    QueryFlock,
    evaluate_flock,
    evaluate_flock_dynamic,
    execute_plan,
    parse_filter,
    plan_from_subqueries,
)
from repro.datalog import atom, comparison, rule
from repro.relational import Relation, database_from_dict


monotone_texts = st.sampled_from(
    [
        "COUNT(answer.B) >= 2",
        "COUNT(answer.B) >= 3",
        "SUM(answer.W) >= 10",
        "SUM(answer.W) >= 25",
        "MAX(answer.W) >= 6",
        "MIN(answer.W) <= 4",
    ]
)

answer_rows = st.frozensets(
    st.tuples(st.integers(0, 5), st.integers(1, 9)), min_size=1, max_size=10
)
extra_rows = st.frozensets(
    st.tuples(st.integers(6, 11), st.integers(1, 9)), max_size=5
)


class TestCompositeMonotonicity:
    @given(
        st.lists(monotone_texts, min_size=2, max_size=3, unique=True),
        answer_rows,
        extra_rows,
    )
    @settings(max_examples=120, deadline=None)
    def test_conjunction_preserved_under_supersets(self, texts, base, extra):
        composite = CompositeFilter(
            tuple(parse_filter(t) for t in texts)
        )
        assert composite.is_monotone
        small = Relation("answer", ("B", "W"), base)
        big = Relation("answer", ("B", "W"), base | extra)
        if composite.test_relation(small):
            assert composite.test_relation(big)


basket_rows = st.frozensets(
    st.tuples(
        st.integers(0, 7), st.sampled_from(["a", "b", "c"])
    ),
    min_size=1,
    max_size=20,
)


class TestCompositePlanSoundness:
    @given(basket_rows, st.integers(1, 3), st.integers(5, 40))
    @settings(max_examples=60, deadline=None)
    def test_plan_and_dynamic_match_naive(self, rows, count_t, sum_t):
        bids = sorted({bid for bid, _ in rows})
        db = database_from_dict(
            {
                "baskets": (("BID", "Item"), rows),
                "importance": (
                    ("BID", "W"),
                    [(bid, (bid % 5) + 1) for bid in bids],
                ),
            }
        )
        query = rule(
            "answer",
            ["B", "W"],
            [
                atom("baskets", "B", "$1"),
                atom("baskets", "B", "$2"),
                atom("importance", "B", "W"),
                comparison("$1", "<", "$2"),
            ],
        )
        composite = CompositeFilter(
            (
                parse_filter(f"COUNT(answer.B) >= {count_t}"),
                parse_filter(f"SUM(answer.W) >= {sum_t}"),
            )
        )
        flock = QueryFlock(query, composite)
        naive = evaluate_flock(db, flock)

        candidate = SubqueryCandidate((0, 2), query.with_body_subset([0, 2]))
        plan = plan_from_subqueries(flock, [("okW1", candidate)])
        assert execute_plan(db, flock, plan).relation == naive

        dynamic, _ = evaluate_flock_dynamic(db, flock)
        assert dynamic.relation == naive
