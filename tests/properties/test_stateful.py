"""Stateful property test: a mutating database must never desynchronize
the evaluation strategies.

A hypothesis state machine adds and removes basket tuples, occasionally
changing the support threshold, and after every step checks that the
naive, plan-based, and dynamic evaluators agree (with the brute-force
oracle consulted at teardown).
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.flocks import (
    evaluate_flock,
    evaluate_flock_bruteforce,
    evaluate_flock_dynamic,
    execute_plan,
    itemset_flock,
    itemset_plan,
)
from repro.relational import Database, Relation


ITEMS = ["a", "b", "c", "d"]
BIDS = list(range(6))


class FlockConsistencyMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.rows: set[tuple] = {(0, "a"), (0, "b")}
        self.support = 1

    def _db(self) -> Database:
        return Database([Relation("baskets", ("BID", "Item"), self.rows)])

    @rule(bid=st.sampled_from(BIDS), item=st.sampled_from(ITEMS))
    def add_tuple(self, bid, item) -> None:
        self.rows.add((bid, item))

    @rule(bid=st.sampled_from(BIDS), item=st.sampled_from(ITEMS))
    def remove_tuple(self, bid, item) -> None:
        self.rows.discard((bid, item))
        if not self.rows:
            self.rows.add((0, "a"))

    @rule(support=st.integers(1, 4))
    def change_support(self, support) -> None:
        self.support = support

    @invariant()
    def strategies_agree(self) -> None:
        db = self._db()
        flock = itemset_flock(2, support=self.support)
        naive = evaluate_flock(db, flock)
        planned = execute_plan(
            db, flock, itemset_plan(flock), validate=False
        )
        dynamic, _ = evaluate_flock_dynamic(db, flock)
        assert planned.relation == naive
        assert dynamic.relation == naive

    def teardown(self) -> None:
        db = self._db()
        flock = itemset_flock(2, support=self.support)
        assert evaluate_flock_bruteforce(db, flock) == evaluate_flock(db, flock)


TestFlockConsistency = FlockConsistencyMachine.TestCase
TestFlockConsistency.settings = settings(
    max_examples=25, stateful_step_count=15, deadline=None
)
