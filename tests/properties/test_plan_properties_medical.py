"""Plan soundness under negation: every legal medical plan equals naive.

The basket property tests cover positive CQs; these cover the harder
case — plans over a flock with a negated subgoal (Fig. 3/5), where an
unsound pre-filter could interact with the anti-join.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.subqueries import safe_subqueries
from repro.flocks import evaluate_flock, evaluate_flock_bruteforce, evaluate_flock_dynamic, execute_plan, fig3_flock, fig5_plan, plan_from_subqueries
from repro.relational import database_from_dict


diag = st.lists(
    st.tuples(st.integers(0, 6), st.sampled_from(["d1", "d2", "d3"])),
    max_size=7,
    unique_by=lambda t: t[0],
)
exh = st.frozensets(
    st.tuples(st.integers(0, 6), st.sampled_from(["s1", "s2"])), max_size=14
)
trt = st.frozensets(
    st.tuples(st.integers(0, 6), st.sampled_from(["m1", "m2"])), max_size=14
)
cse = st.frozensets(
    st.tuples(st.sampled_from(["d1", "d2", "d3"]), st.sampled_from(["s1", "s2"])),
    max_size=6,
)
supports = st.integers(1, 3)


def medical_db(diag, exh, trt, cse):
    return database_from_dict(
        {
            "diagnoses": (("P", "D"), diag),
            "exhibits": (("P", "S"), exh),
            "treatments": (("P", "M"), trt),
            "causes": (("D", "S"), cse),
        }
    )


class TestMedicalPlanSoundness:
    @given(diag, exh, trt, cse, supports)
    @settings(max_examples=60, deadline=None)
    def test_fig5_plan_equals_naive(self, diag, exh, trt, cse, support):
        db = medical_db(diag, exh, trt, cse)
        flock = fig3_flock(support=support)
        naive = evaluate_flock(db, flock)
        plan = fig5_plan(flock)
        assert execute_plan(db, flock, plan).relation == naive

    @given(diag, exh, trt, cse, supports)
    @settings(max_examples=30, deadline=None)
    def test_every_safe_subquery_prefilter_is_sound(
        self, diag, exh, trt, cse, support
    ):
        """One plan per safe subquery of the medical flock — including
        the ones containing the negated subgoal."""
        db = medical_db(diag, exh, trt, cse)
        flock = fig3_flock(support=support)
        naive = evaluate_flock(db, flock)
        rule = flock.rules[0]
        for candidate in safe_subqueries(rule):
            if not candidate.parameters:
                continue
            plan = plan_from_subqueries(flock, [("okX", candidate)])
            assert execute_plan(db, flock, plan).relation == naive, (
                f"pre-filter {candidate.query} changed the answer"
            )

    @given(diag, exh, trt, cse, supports)
    @settings(max_examples=40, deadline=None)
    def test_dynamic_and_bruteforce_agree(self, diag, exh, trt, cse, support):
        db = medical_db(diag, exh, trt, cse)
        flock = fig3_flock(support=support)
        naive = evaluate_flock(db, flock)
        assert evaluate_flock_bruteforce(db, flock) == naive
        dynamic, _ = evaluate_flock_dynamic(db, flock)
        assert dynamic.relation == naive

    @given(diag, exh, trt, cse, supports)
    @settings(max_examples=30, deadline=None)
    def test_sqlite_backend_agrees(self, diag, exh, trt, cse, support):
        from repro.flocks import evaluate_flock_sqlite

        db = medical_db(diag, exh, trt, cse)
        flock = fig3_flock(support=support)
        assert evaluate_flock_sqlite(db, flock) == evaluate_flock(db, flock)
