"""Differential properties for the join orderers and runtime filters.

Join order and sideways information passing are pure *performance*
levers: for any catalog, any flock, any backend and any worker count,
``greedy``/``selinger``/``ues`` with or without runtime semi-join
filters must produce the identical survivor set.  Hypothesis drives
random small catalogs through the full knob space and compares against
the greedy/memory/serial baseline; a fixed grid covers the
process-parallel path.

The bound algebra's soundness is a property too: every number
:func:`chain_upper_bounds` certifies must dominate the rows the prefix
actually produces — on *any* input, not just the benchmark workloads.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import atom, comparison, rule
from repro.flocks import QueryFlock, parse_filter
from repro.flocks.mining import mine
from repro.relational import (
    chain_upper_bounds,
    database_from_dict,
    evaluate_conjunctive,
    ues_join_order,
)

values = st.integers(min_value=0, max_value=4)
r_rows = st.sets(st.tuples(values, values), min_size=1, max_size=20)
s_rows = st.sets(st.tuples(values, values), max_size=12)
thresholds = st.integers(min_value=1, max_value=3)

JOIN_ORDERS = ("greedy", "selinger", "ues")


def make_db(r, s):
    return database_from_dict(
        {"r": (("B", "I"), r), "s": (("I", "C"), s)}
    )


def pair_flock(threshold):
    """Two parameterized self-joins: the a-priori rewrite gives this
    flock a pre-filter step, so runtime filters have a source."""
    query = rule(
        "answer",
        ["B"],
        [atom("r", "B", "$1"), atom("r", "B", "$2"),
         comparison("$1", "<", "$2")],
    )
    return QueryFlock(query, parse_filter(f"COUNT(answer.B) >= {threshold}"))


def join_flock(threshold):
    query = rule(
        "answer", ["B"],
        [atom("r", "B", "$1"), atom("s", "$1", "C")],
    )
    return QueryFlock(query, parse_filter(f"COUNT(answer.B) >= {threshold}"))


def survivors(db, flock, **knobs):
    relation, report = mine(db, flock, strategy="optimized", **knobs)
    return relation.tuples, report


@pytest.mark.parametrize("make_flock", [pair_flock, join_flock])
@given(
    r=r_rows,
    s=s_rows,
    threshold=thresholds,
    join_order=st.sampled_from(JOIN_ORDERS),
    backend=st.sampled_from(("memory", "sqlite")),
    runtime_filters=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_knobs_never_change_survivors(
    make_flock, r, s, threshold, join_order, backend, runtime_filters
):
    db = make_db(r, s)
    flock = make_flock(threshold)
    baseline, _ = survivors(
        db, flock,
        backend="memory", parallelism=1,
        join_order="greedy", runtime_filters=False,
    )
    variant, report = survivors(
        db, flock,
        backend=backend, parallelism=1,
        join_order=join_order, runtime_filters=runtime_filters,
    )
    assert variant == baseline
    assert report.join_order == join_order
    assert report.runtime_filters is runtime_filters


@given(r=r_rows, threshold=thresholds)
@settings(max_examples=15, deadline=None)
def test_ues_defaults_runtime_filters_on(r, threshold):
    db = make_db(r, set())
    flock = pair_flock(threshold)
    baseline, _ = survivors(
        db, flock, backend="memory", parallelism=1, join_order="greedy"
    )
    variant, report = survivors(
        db, flock, backend="memory", parallelism=1, join_order="ues"
    )
    assert variant == baseline
    # runtime_filters=None resolves from the join order.
    assert report.runtime_filters is True


@pytest.mark.parametrize("join_order", JOIN_ORDERS)
@pytest.mark.parametrize("jobs", [1, 2])
def test_parallel_workers_agree(join_order, jobs):
    """The process-parallel path (explicit ``parallelism=2``) with
    runtime filters matches the serial greedy baseline exactly."""
    db = make_db(
        {(b, i) for b in range(30) for i in range(5) if (b + i) % 3},
        set(),
    )
    flock = pair_flock(3)
    baseline, _ = survivors(
        db, flock,
        backend="memory", parallelism=1,
        join_order="greedy", runtime_filters=False,
    )
    variant, _ = survivors(
        db, flock,
        backend="memory", parallelism=jobs,
        join_order=join_order, runtime_filters=True,
    )
    assert variant == baseline


@given(r=r_rows, s=s_rows)
@settings(max_examples=40, deadline=None)
def test_chain_bounds_are_sound(r, s):
    """Certified bounds dominate actual output at every prefix."""
    db = make_db(r, s)
    atoms = (atom("r", "B", "I"), atom("s", "I", "C"), atom("r", "Z", "I"))
    order = ues_join_order(db, atoms)
    bounds = chain_upper_bounds(db, atoms, order)
    for k in range(len(order)):
        prefix_atoms = [atoms[i] for i in order[: k + 1]]
        head = []
        for prefix_atom in prefix_atoms:
            for term in prefix_atom.terms:
                if str(term) not in head:
                    head.append(str(term))
        prefix = rule("answer", head, prefix_atoms)
        actual = evaluate_conjunctive(db, prefix)
        assert bounds[k] >= len(actual)
