"""Property-based tests for the Datalog layer: containment semantics,
safety/evaluation consistency, parser round-trips, monotone filters."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import atom, contains, is_safe, parse_rule, rule, safe_subqueries
from repro.errors import SafetyError
from repro.flocks import parse_filter
from repro.relational import Database, Relation, evaluate_conjunctive


# ----------------------------------------------------------------------
# Random pure CQs over two binary predicates r, s with vars X, Y, Z.
# ----------------------------------------------------------------------

var_names = st.sampled_from(["X", "Y", "Z"])
predicates = st.sampled_from(["r", "s"])


@st.composite
def pure_cq(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    body = []
    for _ in range(n):
        pred = draw(predicates)
        a = draw(var_names)
        b = draw(var_names)
        body.append(atom(pred, a, b))
    head_var = draw(var_names)
    # Keep safety: head var must appear in the body; retry by fallback.
    body_vars = {str(v) for sg in body for v in sg.variables()}
    if head_var not in body_vars:
        head_var = sorted(body_vars)[0]
    return rule("answer", [head_var], body)


rel_rows = st.frozensets(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=12
)


def make_db(r_rows, s_rows) -> Database:
    return Database(
        [
            Relation("r", ("u", "v"), r_rows),
            Relation("s", ("u", "v"), s_rows),
        ]
    )


class TestContainmentSemantics:
    @given(pure_cq(), pure_cq(), rel_rows, rel_rows)
    @settings(max_examples=80, deadline=None)
    def test_containment_implies_result_subset(self, q1, q2, r_rows, s_rows):
        """If contains(q1, q2) holds then q2's result is a subset of
        q1's on every database — the Chandra–Merlin direction we rely
        on for upper bounds."""
        if not contains(q1, q2):
            return
        db = make_db(r_rows, s_rows)
        res1 = evaluate_conjunctive(db, q1)
        res2 = evaluate_conjunctive(db, q2)
        assert res2.tuples <= res1.tuples

    @given(pure_cq())
    @settings(max_examples=40, deadline=None)
    def test_containment_reflexive(self, q):
        assert contains(q, q)

    @given(pure_cq(), rel_rows, rel_rows)
    @settings(max_examples=60, deadline=None)
    def test_subgoal_deletion_grows_result(self, q, r_rows, s_rows):
        """Deleting subgoals (when still safe) can only grow the result —
        the essence of the a-priori bound."""
        db = make_db(r_rows, s_rows)
        full = evaluate_conjunctive(db, q)
        for candidate in safe_subqueries(q):
            sub_result = evaluate_conjunctive(db, candidate.query)
            assert full.tuples <= sub_result.tuples


class TestSafetyEvaluationConsistency:
    @given(pure_cq(), rel_rows, rel_rows)
    @settings(max_examples=60, deadline=None)
    def test_safe_queries_evaluate(self, q, r_rows, s_rows):
        db = make_db(r_rows, s_rows)
        assert is_safe(q)
        evaluate_conjunctive(db, q)  # must not raise

    def test_unsafe_query_raises(self):
        db = make_db(frozenset(), frozenset())
        q = rule("answer", ["X"], [atom("r", "Y", "Z")])
        try:
            evaluate_conjunctive(db, q)
            raised = False
        except SafetyError:
            raised = True
        assert raised


class TestParserRoundTrip:
    @given(pure_cq())
    @settings(max_examples=60, deadline=None)
    def test_str_parse_identity(self, q):
        assert parse_rule(str(q)) == q


class TestMonotoneFilterProperty:
    """Section 5's definition, checked directly: a monotone condition
    true on a set stays true on any superset."""

    answer_rows = st.frozensets(
        st.tuples(st.integers(0, 5), st.integers(1, 9)), min_size=1, max_size=10
    )
    extra_rows = st.frozensets(
        st.tuples(st.integers(6, 11), st.integers(1, 9)), max_size=5
    )
    filters = st.sampled_from(
        [
            "COUNT(answer.B) >= 3",
            "COUNT(answer.B) > 1",
            "SUM(answer.W) >= 10",
            "MAX(answer.W) >= 5",
            "MIN(answer.W) <= 4",
        ]
    )

    @given(answer_rows, extra_rows, filters)
    @settings(max_examples=100, deadline=None)
    def test_superset_preserves_truth(self, base, extra, filter_text):
        condition = parse_filter(filter_text)
        assert condition.is_monotone
        small = Relation("answer", ("B", "W"), base)
        big = Relation("answer", ("B", "W"), base | extra)
        if condition.test_relation(small):
            assert condition.test_relation(big)

    non_monotone_filters = st.sampled_from(
        ["COUNT(answer.B) <= 3", "MIN(answer.W) >= 4", "MAX(answer.W) <= 5"]
    )

    @given(non_monotone_filters)
    def test_non_monotone_classified(self, filter_text):
        assert not parse_filter(filter_text).is_monotone
