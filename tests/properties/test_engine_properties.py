"""Property tests pairing alternative engine paths against each other.

Different join orders, different order strategies, and the
arithmetic-aware containment test all must agree with ground-truth
evaluation on random inputs.
"""

from itertools import permutations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import atom, comparison, contains_extended, rule
from repro.relational import (
    Database,
    Relation,
    evaluate_conjunctive,
    greedy_join_order,
    selinger_join_order,
)


rel_rows = st.frozensets(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=12
)


def make_db(r_rows, s_rows, t_rows) -> Database:
    return Database(
        [
            Relation("r", ("u", "v"), r_rows),
            Relation("s", ("u", "v"), s_rows),
            Relation("t", ("u", "v"), t_rows),
        ]
    )


@st.composite
def chain_query(draw):
    """r(A,B) ⋈ s(B,C) ⋈ t(C,D) with optional comparisons."""
    body = [atom("r", "A", "B"), atom("s", "B", "C"), atom("t", "C", "D")]
    if draw(st.booleans()):
        body.append(comparison("A", draw(st.sampled_from(["<", "<=", "!="])), "D"))
    return rule("answer", ["A", "D"], body)


class TestJoinOrderIndependence:
    @given(chain_query(), rel_rows, rel_rows, rel_rows)
    @settings(max_examples=60, deadline=None)
    def test_all_orders_agree(self, query, r_rows, s_rows, t_rows):
        db = make_db(r_rows, s_rows, t_rows)
        n = len(query.positive_atoms())
        reference = evaluate_conjunctive(db, query)
        for order in permutations(range(n)):
            assert evaluate_conjunctive(db, query, join_order=list(order)) == (
                reference
            )

    @given(chain_query(), rel_rows, rel_rows, rel_rows)
    @settings(max_examples=60, deadline=None)
    def test_selinger_equals_greedy_result(self, query, r_rows, s_rows, t_rows):
        db = make_db(r_rows, s_rows, t_rows)
        atoms = query.positive_atoms()
        dp = selinger_join_order(db, atoms)
        greedy = greedy_join_order(db, atoms)
        assert sorted(dp) == sorted(greedy) == list(range(len(atoms)))
        assert evaluate_conjunctive(db, query, join_order=dp) == (
            evaluate_conjunctive(db, query, join_order=greedy)
        )


@st.composite
def arith_query(draw):
    """One or two positive atoms over r/s plus zero..two comparisons
    among the variables A, B and small constants."""
    body = [atom("r", "A", "B")]
    if draw(st.booleans()):
        body.append(atom("s", "A", "B"))
    operands = ["A", "B", 1, 2]
    for _ in range(draw(st.integers(0, 2))):
        left = draw(st.sampled_from(operands))
        right = draw(st.sampled_from(operands))
        op = draw(st.sampled_from(["<", "<=", "=", "!="]))
        body.append(comparison(left, op, right))
    return rule("answer", ["A"], body)


class TestArithmeticContainmentSemantics:
    @given(arith_query(), arith_query(), rel_rows, rel_rows)
    @settings(max_examples=120, deadline=None)
    def test_contains_extended_sound(self, q1, q2, r_rows, s_rows):
        """If contains_extended(q1, q2), then result(q2) ⊆ result(q1)
        on every database."""
        if not contains_extended(q1, q2):
            return
        db = Database(
            [
                Relation("r", ("u", "v"), r_rows),
                Relation("s", ("u", "v"), s_rows),
            ]
        )
        res1 = evaluate_conjunctive(db, q1)
        res2 = evaluate_conjunctive(db, q2)
        assert res2.tuples <= res1.tuples, (
            f"{q1} claimed to contain {q2} but a result tuple escapes"
        )
