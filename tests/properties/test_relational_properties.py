"""Property-based tests for the relational engine (algebra laws)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.relational import (
    Relation,
    anti_join,
    natural_join,
    semi_join,
    union_all,
)


values = st.integers(min_value=0, max_value=5)
rows_ab = st.frozensets(st.tuples(values, values), max_size=30)
rows_bc = st.frozensets(st.tuples(values, values), max_size=30)


def rel_ab(rows):
    return Relation("r", ("a", "b"), rows)


def rel_bc(rows):
    return Relation("s", ("b", "c"), rows)


class TestJoinLaws:
    @given(rows_ab, rows_bc)
    def test_join_commutative_on_contents(self, r_rows, s_rows):
        r, s = rel_ab(r_rows), rel_bc(s_rows)
        rs = natural_join(r, s)
        sr = natural_join(s, r)
        assert rs.project(["a", "b", "c"]) == sr.project(["a", "b", "c"])

    @given(rows_ab)
    def test_self_join_is_identity(self, rows):
        r = rel_ab(rows)
        assert natural_join(r, r) == r.with_name("join")

    @given(rows_ab, rows_bc)
    def test_join_subset_of_product_size(self, r_rows, s_rows):
        r, s = rel_ab(r_rows), rel_bc(s_rows)
        assert len(natural_join(r, s)) <= len(r) * len(s)

    @given(rows_ab, rows_bc, st.frozensets(st.tuples(values, values), max_size=30))
    def test_join_associative(self, r_rows, s_rows, t_rows):
        r, s = rel_ab(r_rows), rel_bc(s_rows)
        t = Relation("t", ("c", "d"), t_rows)
        left = natural_join(natural_join(r, s), t)
        right = natural_join(r, natural_join(s, t))
        cols = ["a", "b", "c", "d"]
        assert left.project(cols) == right.project(cols)


class TestSemiAntiPartition:
    @given(rows_ab, rows_bc)
    def test_semi_plus_anti_is_identity(self, r_rows, s_rows):
        r, s = rel_ab(r_rows), rel_bc(s_rows)
        semi = semi_join(r, s)
        anti = anti_join(r, s)
        assert semi.tuples | anti.tuples == r.tuples
        assert not semi.tuples & anti.tuples

    @given(rows_ab, rows_bc)
    def test_semi_join_is_join_projection(self, r_rows, s_rows):
        r, s = rel_ab(r_rows), rel_bc(s_rows)
        semi = semi_join(r, s)
        joined = natural_join(r, s).project(["a", "b"])
        assert semi.tuples == joined.tuples


class TestSetSemantics:
    @given(rows_ab)
    def test_projection_never_grows(self, rows):
        r = rel_ab(rows)
        assert len(r.project(["a"])) <= len(r)

    @given(rows_ab, rows_ab)
    def test_union_bounds(self, a_rows, b_rows):
        a, b = rel_ab(a_rows), rel_ab(b_rows)
        u = union_all([a, b])
        assert max(len(a), len(b)) <= len(u) <= len(a) + len(b)

    @given(rows_ab)
    def test_select_is_subset(self, rows):
        r = rel_ab(rows)
        selected = r.select(lambda row: row["a"] % 2 == 0)
        assert selected.tuples <= r.tuples

    @given(rows_ab)
    def test_rename_preserves_contents(self, rows):
        r = rel_ab(rows)
        assert r.rename({"a": "x"}).tuples == r.tuples
