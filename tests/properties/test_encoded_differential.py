"""Differential property tests: encoded fast paths vs the row-set paths.

Every relational operator and engine kernel carries two implementations
since the columnar refactor — a vectorized path over dictionary codes
(taken when the inputs are encoded against one shared dictionary) and
the legacy path over value arrays.  Their outputs must be identical as
*sets of rows* for any input, including the inputs benchmarks never
produce: empty relations, single-column relations, and mixed non-string
value types whose Python equality semantics (``1 == 1.0 == True``) the
dictionary must reproduce exactly.

Each test builds the same logical relation twice — once encoded, once
plain — runs both through one operator, and compares.  The engine-level
test runs a full FILTER step under ``MemoryEngine(encode_scans=...)``
both ways and compares the canonical output arrays bit-for-bit.
"""

from hypothesis import given, settings, strategies as st

from repro.datalog import atom, comparison, negated, rule
from repro.engine.memory import MemoryEngine
from repro.flocks import QueryFlock, parse_filter
from repro.flocks.executor import lower_filter_step
from repro.flocks.plans import single_step_plan
from repro.relational import ValueDictionary, database_from_dict
from repro.relational.aggregates import AggregateFunction, group_aggregate
from repro.relational.operators import (
    anti_join,
    cartesian_product,
    natural_join,
    semi_join,
)
from repro.relational.relation import Relation

# Mixed types on purpose: 1 / 1.0 / True collapse under Python equality
# and must collapse identically in code space.
values = st.one_of(
    st.integers(min_value=-2, max_value=3),
    st.sampled_from(["a", "b", "", "1"]),
    st.booleans(),
    st.sampled_from([1.0, 2.5]),
    st.none(),
)
numbers = st.integers(min_value=-5, max_value=5)


def encoded_copy(relation: Relation, dictionary: ValueDictionary) -> Relation:
    """The same logical relation, born on the encoded representation."""
    columns = relation.columns_data()
    return Relation.from_encoded(
        relation.name,
        relation.columns,
        [dictionary.encode_column(col) for col in columns],
        dictionary,
        count=len(relation),
    )


def assert_same(left: Relation, right: Relation) -> None:
    assert left.columns == right.columns
    assert set(left.tuples) == set(right.tuples)
    assert len(left) == len(right)


ab_rows = st.sets(st.tuples(values, values), max_size=12)
bc_rows = st.sets(st.tuples(values, values), max_size=12)


@given(left=ab_rows, right=bc_rows)
@settings(max_examples=40, deadline=None)
def test_joins_encoded_vs_legacy(left, right):
    plain_l = Relation("l", ("A", "B"), left)
    plain_r = Relation("r", ("B", "C"), right)
    dictionary = ValueDictionary()
    enc_l = encoded_copy(plain_l, dictionary)
    enc_r = encoded_copy(plain_r, dictionary)
    for op in (natural_join, semi_join, anti_join):
        assert_same(op(enc_l, enc_r), op(plain_l, plain_r))


@given(left=ab_rows, right=st.sets(st.tuples(values), max_size=4))
@settings(max_examples=25, deadline=None)
def test_cartesian_encoded_vs_legacy(left, right):
    plain_l = Relation("l", ("A", "B"), left)
    plain_r = Relation("r", ("C",), right)
    dictionary = ValueDictionary()
    assert_same(
        cartesian_product(
            encoded_copy(plain_l, dictionary), encoded_copy(plain_r, dictionary)
        ),
        cartesian_product(plain_l, plain_r),
    )


@given(rows=ab_rows, value=values)
@settings(max_examples=40, deadline=None)
def test_select_project_take_encoded_vs_legacy(rows, value):
    plain = Relation("t", ("A", "B"), rows)
    encoded = encoded_copy(plain, ValueDictionary())
    assert_same(encoded.select_eq("A", value), plain.select_eq("A", value))
    for cols in (["A"], ["B"], ["B", "A"], ["A", "B"]):
        assert_same(encoded.project(cols), plain.project(cols))
    indexes = list(range(0, len(plain), 2))
    assert_same(encoded.take(indexes), plain.take(indexes))
    assert encoded.distinct_count("A") == plain.distinct_count("A")


@given(rows=st.sets(st.tuples(values, numbers, numbers), max_size=15))
@settings(max_examples=40, deadline=None)
def test_group_aggregate_encoded_vs_legacy(rows):
    plain = Relation("t", ("G", "X", "Y"), rows)
    encoded = encoded_copy(plain, ValueDictionary())
    cases = [
        (["G"], AggregateFunction.COUNT, None),       # full-member COUNT
        (["G"], AggregateFunction.COUNT, ["X"]),      # subset COUNT
        (["G"], AggregateFunction.SUM, ["X"]),
        (["G"], AggregateFunction.MIN, ["Y"]),
        (["G"], AggregateFunction.MAX, ["X"]),
        ([], AggregateFunction.COUNT, None),          # one global group
        (["G", "X"], AggregateFunction.COUNT, None),  # multi-key
    ]
    for group_by, fn, target in cases:
        assert_same(
            group_aggregate(encoded, group_by, fn, target=target),
            group_aggregate(plain, group_by, fn, target=target),
        )


@given(rows=st.sets(st.tuples(values), max_size=8))
@settings(max_examples=25, deadline=None)
def test_single_column_and_empty_relations(rows):
    plain = Relation("t", ("A",), rows)
    encoded = encoded_copy(plain, ValueDictionary())
    assert_same(encoded.project(["A"]), plain.project(["A"]))
    empty_plain = Relation("e", ("A",), set())
    empty_encoded = encoded_copy(empty_plain, ValueDictionary())
    assert_same(
        natural_join(empty_encoded, encoded_copy(plain, ValueDictionary())),
        natural_join(empty_plain, plain),
    )
    assert_same(
        group_aggregate(empty_encoded, [], AggregateFunction.COUNT),
        group_aggregate(empty_plain, [], AggregateFunction.COUNT),
    )


# -- engine kernels: whole FILTER steps, encoded scans on vs off --------

step_values = st.integers(min_value=0, max_value=4)
r_rows = st.sets(st.tuples(step_values, step_values), max_size=20)
bad_rows = st.sets(st.tuples(step_values), max_size=4)
thresholds = st.integers(min_value=1, max_value=4)


def step_flocks(threshold):
    pair = rule(
        "answer",
        ["B"],
        [atom("r", "B", "$1"), atom("r", "B", "$2"),
         comparison("$1", "<", "$2")],
    )
    negation = rule(
        "answer", ["B"], [atom("r", "B", "$1"), negated("bad", "B")]
    )
    condition = parse_filter(f"COUNT(answer.B) >= {threshold}")
    return [QueryFlock(pair, condition), QueryFlock(negation, condition)]


@given(r=r_rows, bad=bad_rows, threshold=thresholds)
@settings(max_examples=20, deadline=None)
def test_engine_kernels_encoded_vs_legacy(r, bad, threshold):
    for flock in step_flocks(threshold):
        db = database_from_dict(
            {"r": (("B", "I"), r), "bad": (("B",), bad)}
        )
        step = single_step_plan(flock, name="flock").final_step
        plan = lower_filter_step(db, flock, step)

        legacy = MemoryEngine(db.scratch(), encode_scans=False)
        answer_legacy = legacy.run_answer(plan)
        survivors_legacy = legacy.run_survivors(answer_legacy, plan)
        passed_legacy = legacy.run_group_filter(answer_legacy, plan)

        encoded = MemoryEngine(db.scratch(), encode_scans=True)
        answer_encoded = encoded.run_answer(plan)
        survivors_encoded = encoded.run_survivors(answer_encoded, plan)
        passed_encoded = encoded.run_group_filter(answer_encoded, plan)

        assert set(answer_encoded.tuples) == set(answer_legacy.tuples)
        # Survivor outputs are canonical: identical *arrays*, not just
        # identical sets — the contract parallel merging relies on.
        assert survivors_encoded.columns == survivors_legacy.columns
        assert (
            survivors_encoded.columns_data()
            == survivors_legacy.columns_data()
        )
        assert set(passed_encoded.tuples) == set(passed_legacy.tuples)
