"""Property-based tests of the paper's core soundness claims.

These are the theorems the whole optimization rests on:

* every legal plan computes exactly the naive flock result;
* classic a-priori equals flock evaluation for itemsets;
* a safe subquery upper-bounds the full query per assignment;
* the dynamic evaluator is sound for any decision thresholds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.subqueries import SubqueryCandidate, safe_subqueries
from repro.flocks import (
    QueryFlock,
    apriori_itemsets,
    evaluate_flock,
    evaluate_flock_bruteforce,
    evaluate_flock_dynamic,
    execute_plan,
    frequent_pairs,
    itemset_flock,
    itemsets_from_flock_result,
    plan_from_subqueries,
    single_step_plan,
    support_filter,
)
from repro.relational import Database, Relation, database_from_dict


# Small random basket databases: up to 12 baskets over 5 items.
basket_rows = st.frozensets(
    st.tuples(
        st.integers(min_value=0, max_value=11),
        st.sampled_from(["a", "b", "c", "d", "e"]),
    ),
    min_size=1,
    max_size=40,
)
supports = st.integers(min_value=1, max_value=4)


def basket_db(rows) -> Database:
    return Database([Relation("baskets", ("BID", "Item"), rows)])


class TestAprioriEquivalence:
    @given(basket_rows, supports)
    @settings(max_examples=60, deadline=None)
    def test_classic_equals_flock(self, rows, support):
        db = basket_db(rows)
        flock = itemset_flock(2, support=support)
        classic = frequent_pairs(db.get("baskets"), support)
        naive = itemsets_from_flock_result(evaluate_flock(db, flock))
        assert classic == naive

    @given(basket_rows, supports)
    @settings(max_examples=40, deadline=None)
    def test_every_level_matches_flock(self, rows, support):
        db = basket_db(rows)
        levels = apriori_itemsets(db.get("baskets"), support, max_size=3)
        for k in (1, 2, 3):
            flock = itemset_flock(k, support=support)
            naive = itemsets_from_flock_result(evaluate_flock(db, flock))
            assert set(levels.get(k, {})) == naive


class TestPlanSoundness:
    @given(basket_rows, supports)
    @settings(max_examples=60, deadline=None)
    def test_all_legal_plans_agree_with_naive(self, rows, support):
        db = basket_db(rows)
        flock = itemset_flock(2, support=support)
        naive = evaluate_flock(db, flock)
        rule = flock.rules[0]
        single_param = [
            (f"ok{i}", SubqueryCandidate((i,), rule.with_body_subset([i])))
            for i, sg in enumerate(rule.positive_atoms())
        ]
        plans = [single_step_plan(flock)]
        plans.append(plan_from_subqueries(flock, single_param[:1]))
        plans.append(plan_from_subqueries(flock, single_param))
        for plan in plans:
            result = execute_plan(db, flock, plan)
            assert result.relation == naive

    @given(basket_rows, supports)
    @settings(max_examples=40, deadline=None)
    def test_bruteforce_agrees(self, rows, support):
        db = basket_db(rows)
        flock = itemset_flock(2, support=support)
        assert evaluate_flock(db, flock) == evaluate_flock_bruteforce(db, flock)


class TestDynamicSoundness:
    @given(
        basket_rows,
        supports,
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_thresholds_sound(self, rows, support, factor, improvement):
        db = basket_db(rows)
        flock = itemset_flock(2, support=support)
        naive = evaluate_flock(db, flock)
        result, _ = evaluate_flock_dynamic(
            db, flock, decision_factor=factor, improvement_factor=improvement
        )
        assert result.relation == naive


class TestSubqueryUpperBound:
    @given(basket_rows, supports)
    @settings(max_examples=40, deadline=None)
    def test_subquery_result_is_superset_per_assignment(self, rows, support):
        """Section 3.1: a safe subquery's per-assignment answer count is
        an upper bound, so its surviving-assignment set contains the
        flock result projected to the subquery's parameters."""
        db = basket_db(rows)
        flock = itemset_flock(2, support=support)
        naive = evaluate_flock(db, flock)
        rule = flock.rules[0]
        for candidate in safe_subqueries(rule):
            if not candidate.parameters:
                continue
            params = tuple(
                sorted(candidate.parameters, key=lambda p: p.name)
            )
            sub_flock_query = candidate.query
            # Evaluate the subquery as its own flock.
            sub_flock = QueryFlock(
                sub_flock_query, support_filter(support, target="B")
            )
            survivors = evaluate_flock(db, sub_flock)
            param_cols = [str(p) for p in params]
            projected = naive.project(param_cols)
            assert projected.tuples <= survivors.project(param_cols).tuples


class TestMedicalRandomized:
    diag = st.lists(
        st.tuples(st.integers(0, 7), st.sampled_from(["d1", "d2"])),
        max_size=8,
        unique_by=lambda t: t[0],  # one disease per patient
    )
    exh = st.frozensets(
        st.tuples(st.integers(0, 7), st.sampled_from(["s1", "s2", "s3"])),
        max_size=20,
    )
    trt = st.frozensets(
        st.tuples(st.integers(0, 7), st.sampled_from(["m1", "m2"])),
        max_size=12,
    )
    cse = st.frozensets(
        st.tuples(st.sampled_from(["d1", "d2"]), st.sampled_from(["s1", "s2", "s3"])),
        max_size=6,
    )

    @given(diag, exh, trt, cse, st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_negation_flock_three_evaluators_agree(
        self, diag, exh, trt, cse, support
    ):
        db = database_from_dict(
            {
                "diagnoses": (("P", "D"), diag),
                "exhibits": (("P", "S"), exh),
                "treatments": (("P", "M"), trt),
                "causes": (("D", "S"), cse),
            }
        )
        from repro.datalog import atom, negated, rule as make_rule

        query = make_rule(
            "answer",
            ["P"],
            [
                atom("exhibits", "P", "$s"),
                atom("treatments", "P", "$m"),
                atom("diagnoses", "P", "D"),
                negated("causes", "D", "$s"),
            ],
        )
        flock = QueryFlock(query, support_filter(support, target="P"))
        naive = evaluate_flock(db, flock)
        brute = evaluate_flock_bruteforce(db, flock)
        dynamic, _ = evaluate_flock_dynamic(db, flock)
        assert naive == brute
        assert dynamic.relation == naive
