"""Property tests: the comparison-entailment engine against brute force.

Soundness of :func:`repro.datalog.arithmetic.entails` is load-bearing
for arithmetic containment, so we check it against exhaustive
evaluation over small value domains: if the closure claims
``premises ⊨ conclusion``, then no assignment may satisfy the premises
and falsify the conclusion.
"""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import ComparisonSystem, entails, is_satisfiable
from repro.datalog.atoms import Comparison, ComparisonOp
from repro.datalog.terms import Constant, Variable


VARIABLES = [Variable("X"), Variable("Y"), Variable("Z")]
OPS = list(ComparisonOp)


@st.composite
def random_comparison(draw):
    left = draw(st.sampled_from(VARIABLES + [Constant(1), Constant(3)]))
    right = draw(st.sampled_from(VARIABLES + [Constant(2), Constant(3)]))
    op = draw(st.sampled_from(OPS))
    return Comparison(left, op, right)


def _satisfying_assignments(comparisons, domain=range(0, 5)):
    """All assignments of X, Y, Z over a small integer domain that
    satisfy every comparison."""
    for values in product(domain, repeat=len(VARIABLES)):
        binding = dict(zip(VARIABLES, values))
        if all(c.evaluate(binding) for c in comparisons):
            yield binding


class TestEntailmentSoundness:
    @given(
        st.lists(random_comparison(), max_size=4),
        random_comparison(),
    )
    @settings(max_examples=300, deadline=None)
    def test_no_countermodel_when_entailed(self, premises, conclusion):
        if not entails(premises, [conclusion]):
            return
        for binding in _satisfying_assignments(premises):
            assert conclusion.evaluate(binding), (
                f"{premises} claimed to entail {conclusion} but "
                f"{binding} is a countermodel"
            )

    @given(st.lists(random_comparison(), max_size=4))
    @settings(max_examples=300, deadline=None)
    def test_unsatisfiable_has_no_models(self, comparisons):
        if is_satisfiable(comparisons):
            return
        models = list(_satisfying_assignments(comparisons))
        assert models == [], (
            f"{comparisons} judged unsatisfiable but {models[0]} satisfies it"
        )

    @given(st.lists(random_comparison(), min_size=1, max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_premises_entail_themselves(self, comparisons):
        if not is_satisfiable(comparisons):
            return
        assert entails(comparisons, comparisons)

    @given(st.lists(random_comparison(), max_size=3), random_comparison())
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_premises(self, premises, extra):
        """Adding a premise never loses an entailment."""
        if not ComparisonSystem.from_comparisons(premises).is_consistent():
            return
        for conclusion in premises:
            if entails(premises, [conclusion]):
                assert entails(premises + [extra], [conclusion])
