"""The chaos property: no fault schedule produces a silent partial result.

Each seed fully determines a schedule of injected faults across the
instrumented sites (transient errors, fatal errors, SQLite lock storms,
killed workers, stalled morsels) *and* the retry jitter of the run
executed under it.  The property — the safety argument of the whole
recovery ladder — is that ``mine()`` under any schedule either returns
a result bit-identical to the fault-free baseline or raises a clean,
library-typed error.  A differing result ("silent-partial") or a
non-library exception is a composed-handler bug, and the failing seed
replays it exactly.

The seed count scales with ``REPRO_CHAOS_SEEDS`` (default 25 locally;
CI runs 200).
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import QueryFlock, mine, support_filter
from repro.relational import database_from_dict
from repro.testing.chaos import (
    SITE_MENUS,
    chaos_schedule,
    run_under_chaos,
)

N_SEEDS = int(os.environ.get("REPRO_CHAOS_SEEDS", "25"))

#: Sites exercised by a serial in-memory mine() call.  The worker/hang
#: sites only fire under parallelism and are covered separately below —
#: arming them here would silently test nothing.
SERIAL_SITES = [
    "relational.join",
    "executor.step",
    "optimizer.search",
    "dynamic.join",
]
PARALLEL_SITES = ["parallel.worker", "relational.join", "executor.step"]


@pytest.fixture(scope="module")
def chaos_db():
    return database_from_dict(
        {
            "baskets": (
                ("BID", "Item"),
                [
                    (1, "beer"), (1, "diapers"),
                    (2, "beer"), (2, "diapers"),
                    (3, "beer"), (3, "diapers"),
                    (4, "beer"), (4, "chips"),
                    (5, "beer"), (5, "chips"),
                    (6, "soap"),
                    (7, "beer"),
                ],
            )
        }
    )


@pytest.fixture(scope="module")
def chaos_flock(chaos_db):
    from repro.datalog import atom, comparison, rule

    query = rule(
        "answer",
        ["B"],
        [
            atom("baskets", "B", "$1"),
            atom("baskets", "B", "$2"),
            comparison("$1", "<", "$2"),
        ],
    )
    return QueryFlock(query, support_filter(2, target="B"))


@pytest.fixture(scope="module")
def baseline(chaos_db, chaos_flock):
    relation, _ = mine(chaos_db, chaos_flock)
    return relation.tuples


@pytest.mark.chaos
@pytest.mark.faults
class TestChaosProperty:
    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_never_silent_partial(self, chaos_db, chaos_flock, baseline, seed):
        schedule = chaos_schedule(seed, sites=SERIAL_SITES)
        verdict = run_under_chaos(chaos_db, chaos_flock, schedule, baseline)
        assert verdict.kind != "silent-partial", (
            f"SILENT PARTIAL RESULT under seed {seed}: {verdict}"
        )

    @pytest.mark.parametrize("seed", range(0, N_SEEDS, 5))
    def test_never_silent_partial_sqlite(
        self, chaos_db, chaos_flock, baseline, seed
    ):
        """The SQLite backend under lock storms and statement faults."""
        schedule = chaos_schedule(seed, sites=["sqlite.execute"])
        verdict = run_under_chaos(
            chaos_db, chaos_flock, schedule, baseline,
            strategy="naive", backend="sqlite",
        )
        assert verdict.kind != "silent-partial", (
            f"SILENT PARTIAL RESULT under seed {seed}: {verdict}"
        )

    @pytest.mark.parametrize("seed", range(0, N_SEEDS, 5))
    def test_never_silent_partial_parallel(
        self, chaos_db, chaos_flock, baseline, seed
    ):
        """Two-job parallel execution under worker kills and transient
        faults — the salvage and full-serial rungs."""
        schedule = chaos_schedule(seed, sites=PARALLEL_SITES, max_sites=2)
        verdict = run_under_chaos(
            chaos_db, chaos_flock, schedule, baseline,
            strategy="naive", parallelism=2,
        )
        assert verdict.kind != "silent-partial", (
            f"SILENT PARTIAL RESULT under seed {seed}: {verdict}"
        )

    def test_schedules_are_deterministic(self):
        for seed in range(50):
            a = chaos_schedule(seed)
            b = chaos_schedule(seed)
            assert str(a) == str(b)
            assert [f.error_name for f in a.faults] == [
                f.error_name for f in b.faults
            ]

    def test_menus_cover_every_instrumented_site(self):
        from repro.testing import faults as faults_mod

        # every menu site must be a real trip()/maybe_hang() site —
        # grep the source so a renamed site can't silently un-arm chaos
        import pathlib

        src = pathlib.Path(faults_mod.__file__).parent.parent
        text = "\n".join(
            p.read_text() for p in src.rglob("*.py") if "testing" not in str(p)
        )
        for site in SITE_MENUS:
            assert f'"{site}"' in text, f"menu site {site!r} not in source"


@pytest.mark.chaos
@pytest.mark.faults
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_chaos_property_hypothesis(chaos_db, chaos_flock, baseline, seed):
    """Hypothesis sweeps the seed space beyond the fixed grid."""
    schedule = chaos_schedule(seed, sites=SERIAL_SITES)
    verdict = run_under_chaos(chaos_db, chaos_flock, schedule, baseline)
    assert verdict.kind != "silent-partial", (
        f"SILENT PARTIAL RESULT under seed {seed}: {verdict}"
    )
