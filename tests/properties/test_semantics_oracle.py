"""Differential testing of the CQ evaluator against a semantic oracle.

The oracle implements textbook Datalog semantics with none of the
engine's machinery: enumerate *every* assignment of the query's
variables and parameters over the active domain, check every subgoal
(positive membership, negated non-membership, comparison truth), and
collect the projected heads.  Exponential and dumb — which is the
point: any disagreement convicts the engine's joins, anti-joins,
selections, or projection.
"""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import atom, comparison, negated, rule
from repro.datalog.atoms import Comparison, RelationalAtom
from repro.datalog.safety import is_safe
from repro.datalog.terms import Constant
from repro.relational import Database, Relation, evaluate_conjunctive


def oracle_evaluate(db, query, output_terms):
    """Enumerate all bindings over the active domain; return the set of
    projected output tuples."""
    domain = set()
    for name in db.names():
        for row in db.get(name).tuples:
            domain.update(row)
    domain = sorted(domain, key=repr) or [0]

    bindables = sorted(
        {t for sg in query.body for t in sg.bindable_terms()}, key=str
    )

    def satisfied(binding):
        for sg in query.body:
            if isinstance(sg, RelationalAtom):
                values = tuple(
                    t.value if isinstance(t, Constant) else binding[t]
                    for t in sg.terms
                )
                present = values in db.get(sg.predicate).tuples
                if sg.negated and present:
                    return False
                if not sg.negated and not present:
                    return False
            elif isinstance(sg, Comparison):
                try:
                    if not sg.evaluate(binding):
                        return False
                except TypeError:
                    return False
        return True

    results = set()
    for values in product(domain, repeat=len(bindables)):
        binding = dict(zip(bindables, values))
        if satisfied(binding):
            results.add(
                tuple(
                    t.value if isinstance(t, Constant) else binding[t]
                    for t in output_terms
                )
            )
    return results


# ----------------------------------------------------------------------
# Random query generator over two binary relations, full language.
# ----------------------------------------------------------------------

VARS = ["X", "Y", "Z"]
PARAMS = ["$p", "$q"]


@st.composite
def full_query(draw):
    n_pos = draw(st.integers(1, 2))
    body = []
    for _ in range(n_pos):
        body.append(
            atom(
                draw(st.sampled_from(["r", "s"])),
                draw(st.sampled_from(VARS + PARAMS)),
                draw(st.sampled_from(VARS + PARAMS + ["0", "1"])),
            )
        )
    # Optional negation whose terms are bound by the positives.
    bound = [str(t) for sg in body for t in sg.bindable_terms()]
    if bound and draw(st.booleans()):
        body.append(
            negated(
                draw(st.sampled_from(["r", "s"])),
                draw(st.sampled_from(bound)),
                draw(st.sampled_from(bound + ["0"])),
            )
        )
    if bound and draw(st.booleans()):
        body.append(
            comparison(
                draw(st.sampled_from(bound)),
                draw(st.sampled_from(["<", "<=", "=", "!="])),
                draw(st.sampled_from(bound + ["1"])),
            )
        )
    head_vars = sorted(
        {str(t) for sg in body for t in sg.bindable_terms()
         if not str(t).startswith("$")}
    )
    head = [head_vars[0]] if head_vars else [Constant(1)]
    return rule("answer", head, body)


rel_rows = st.frozensets(
    st.tuples(st.integers(0, 2), st.integers(0, 2)), max_size=7
)


class TestEngineAgainstOracle:
    @given(full_query(), rel_rows, rel_rows)
    @settings(max_examples=120, deadline=None)
    def test_engine_matches_oracle(self, query, r_rows, s_rows):
        if not is_safe(query):
            return
        db = Database(
            [
                Relation("r", ("u", "v"), r_rows),
                Relation("s", ("u", "v"), s_rows),
            ]
        )
        # Output = head + any parameters, the flock-relevant projection.
        params = sorted(query.parameters(), key=str)
        output = list(query.head_terms) + params
        engine = evaluate_conjunctive(db, query, output_terms=output)
        expected = oracle_evaluate(db, query, output)
        assert engine.tuples == expected, (
            f"engine disagrees with oracle on {query}"
        )
