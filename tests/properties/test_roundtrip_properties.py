"""Round-trip property tests: parser and CSV persistence.

Anything the library can print, it must be able to read back
identically — for the full query language (parameters, negation,
comparisons, constants) and for relations with awkward string values.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    Comparison,
    ComparisonOp,
    RelationalAtom,
    UnionQuery,
    parse_query,
    parse_rule,
    rule,
)
from repro.datalog.terms import Constant, Parameter, Variable
from repro.relational import Relation, load_relation, save_relation


terms = st.one_of(
    st.sampled_from([Variable("X"), Variable("Y"), Variable("Zed")]),
    st.sampled_from([Parameter("1"), Parameter("2"), Parameter("s")]),
    st.sampled_from([Constant(0), Constant(42), Constant("beer"),
                     Constant("two words")]),
)

predicates = st.sampled_from(["r", "s", "baskets", "inTitle"])


@st.composite
def rel_atom(draw):
    arity = draw(st.integers(1, 3))
    args = tuple(draw(terms) for _ in range(arity))
    return RelationalAtom(draw(predicates), args, negated=draw(st.booleans()))


@st.composite
def arith_subgoal(draw):
    left = draw(terms)
    right = draw(terms)
    op = draw(st.sampled_from(list(ComparisonOp)))
    return Comparison(left, op, right)


@st.composite
def full_language_rule(draw):
    positives = draw(
        st.lists(rel_atom().map(lambda a: a.with_positive_polarity()),
                 min_size=1, max_size=3)
    )
    extras = draw(st.lists(st.one_of(rel_atom(), arith_subgoal()), max_size=2))
    body = positives + extras
    body_vars = sorted(
        {t for sg in positives for t in sg.bindable_terms()
         if isinstance(t, Variable)},
        key=str,
    )
    head = [body_vars[0]] if body_vars else [Constant(1)]
    return rule("answer", head, body)


class TestParserRoundTrip:
    @given(full_language_rule())
    @settings(max_examples=150, deadline=None)
    def test_rule_round_trip(self, q):
        assert parse_rule(str(q)) == q

    @given(st.lists(full_language_rule(), min_size=2, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_union_round_trip(self, rules):
        # Align head shapes so the union is well-formed.
        width = len(rules[0].head_terms)
        aligned = [r for r in rules if len(r.head_terms) == width]
        if len(aligned) < 2:
            return
        union = UnionQuery(tuple(aligned))
        assert parse_query(str(union)) == union


csv_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.text(
        alphabet=st.characters(
            min_codepoint=32, max_codepoint=126,
        ),
        min_size=1,
        max_size=20,
    ).filter(lambda s: not _parses_numeric(s)),
)


def _parses_numeric(s: str) -> bool:
    try:
        int(s)
        return True
    except ValueError:
        pass
    try:
        float(s)
        return True
    except ValueError:
        return False


class TestCsvRoundTrip:
    @given(
        st.frozensets(st.tuples(csv_values, csv_values), max_size=20)
    )
    @settings(max_examples=80, deadline=None)
    def test_relation_round_trip(self, rows):
        import tempfile
        from pathlib import Path

        rel = Relation("r", ("a", "b"), rows)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "r.csv"
            save_relation(rel, path)
            loaded = load_relation(path)
        assert loaded == rel
