"""Differential property tests: parallel execution vs serial.

The parallel executor's contract is *bit-identical* results for any
worker count — same survivor rows, same canonical column arrays, same
per-conjunct aggregates — across strategies, backends and join orders.
Hypothesis drives random small catalogs through the full mine()
pipeline at jobs in {1, 2, 4} and compares against the serial run.

Partitioning on tiny inputs exercises the edge cases that a benchmark
workload never hits: empty partitions, single-group relations, steps
whose partition column disappears after projection.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import atom, comparison, negated, rule
from repro.engine import ParallelExecutor
from repro.flocks import QueryFlock, parse_filter
from repro.flocks.executor import lower_filter_step
from repro.flocks.mining import mine
from repro.flocks.plans import single_step_plan
from repro.engine.memory import MemoryEngine
from repro.relational import database_from_dict

values = st.integers(min_value=0, max_value=4)

r_rows = st.sets(st.tuples(values, values), max_size=20)
s_rows = st.sets(st.tuples(values, values), max_size=12)
bad_rows = st.sets(st.tuples(values), max_size=4)
thresholds = st.integers(min_value=1, max_value=4)


def make_db(r, s, bad):
    return database_from_dict(
        {
            "r": (("B", "I"), r),
            "s": (("I", "C"), s),
            "bad": (("B",), bad),
        }
    )


def pair_flock(threshold):
    query = rule(
        "answer",
        ["B"],
        [atom("r", "B", "$1"), atom("r", "B", "$2"),
         comparison("$1", "<", "$2")],
    )
    return QueryFlock(query, parse_filter(f"COUNT(answer.B) >= {threshold}"))


def negation_flock(threshold):
    query = rule(
        "answer", ["B"], [atom("r", "B", "$1"), negated("bad", "B")]
    )
    return QueryFlock(query, parse_filter(f"COUNT(answer.B) >= {threshold}"))


def join_flock(threshold):
    query = rule(
        "answer", ["B"], [atom("r", "B", "$1"), atom("s", "$1", "C")]
    )
    return QueryFlock(query, parse_filter(f"COUNT(answer.B) >= {threshold}"))


FLOCK_MAKERS = [pair_flock, join_flock, negation_flock]


@pytest.mark.parametrize("jobs", [2, 4])
@pytest.mark.parametrize("join_order", ["greedy", "selinger"])
@pytest.mark.parametrize("backend", ["memory", "sqlite"])
@given(r=r_rows, s=s_rows, bad=bad_rows, threshold=thresholds)
@settings(max_examples=10, deadline=None)
def test_mine_identical_across_worker_counts(
    jobs, join_order, backend, r, s, bad, threshold
):
    db = make_db(r, s, bad)
    flock = pair_flock(threshold)
    serial, _ = mine(
        db, flock, strategy="naive", backend=backend,
        join_order=join_order, parallelism=1,
    )
    parallel, report = mine(
        db, flock, strategy="naive", backend=backend,
        join_order=join_order, parallelism=jobs,
    )
    assert parallel.tuples == serial.tuples
    assert parallel.columns == serial.columns
    assert report.parallelism_requested == jobs
    assert not [d for d in report.downgrades if d.kind == "parallelism"]


@pytest.mark.parametrize("make_flock", FLOCK_MAKERS)
@given(r=r_rows, s=s_rows, bad=bad_rows, threshold=thresholds)
@settings(max_examples=15, deadline=None)
def test_step_output_bit_identical(make_flock, r, s, bad, threshold):
    """The executor level: merged survivor *arrays* equal serial ones
    (not just the row sets) — the canonical-merge contract."""
    db = make_db(r, s, bad)
    flock = make_flock(threshold)
    step = single_step_plan(flock, name="flock").final_step
    plan = lower_filter_step(db, flock, step)

    engine = MemoryEngine(db)
    answer = engine.run_answer(plan)
    expected = engine.run_survivors(answer, plan)
    expected_passed = engine.run_group_filter(answer, plan)

    with ParallelExecutor(2, db, mode="thread") as executor:
        outcome = executor.run_step(plan)
        with_aggs = executor.run_step(plan, need_aggregates=True)

    assert outcome.result.columns == expected.columns
    assert outcome.result.columns_data() == expected.columns_data()
    assert outcome.answer_tuples == len(answer)
    assert with_aggs.passed.tuples == expected_passed.tuples


@pytest.mark.parametrize("strategy", ["optimized", "dynamic", "stats"])
@given(r=r_rows, threshold=thresholds)
@settings(max_examples=8, deadline=None)
def test_strategies_agree_under_parallelism(strategy, r, threshold):
    db = make_db(r, set(), set())
    flock = pair_flock(threshold)
    serial, _ = mine(db, flock, strategy=strategy, parallelism=1)
    parallel, _ = mine(db, flock, strategy=strategy, parallelism=4)
    assert parallel.tuples == serial.tuples
