"""Differential property tests: memory engine vs SQLite backend.

Both backends interpret the same lowered :class:`StepPlan` — the
in-memory engine directly, SQLite via the SQL rendering — so for any
flock over any catalog they must produce the identical survivor set
*and* the identical per-conjunct aggregate values.  Hypothesis drives
random small catalogs through several flock shapes (single scan,
self-join pair, extra join, negation, composite filters) and compares
row for row.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import atom, comparison, negated, rule
from repro.engine.memory import MemoryEngine
from repro.flocks import QueryFlock, evaluate_flock, parse_filter
from repro.flocks.filters import plan_aggregate_specs
from repro.flocks.naive import _target_resolver, flock_answer_relation
from repro.flocks.sqlbackend import SQLiteBackend
from repro.relational import database_from_dict

values = st.integers(min_value=0, max_value=4)

r_rows = st.sets(st.tuples(values, values), max_size=20)
s_rows = st.sets(st.tuples(values, values), max_size=12)
bad_rows = st.sets(st.tuples(values), max_size=4)
thresholds = st.integers(min_value=1, max_value=4)


def make_db(r, s, bad):
    return database_from_dict(
        {
            "r": (("B", "I"), r),
            "s": (("I", "C"), s),
            "bad": (("B",), bad),
        }
    )


def pair_flock(threshold):
    query = rule(
        "answer",
        ["B"],
        [atom("r", "B", "$1"), atom("r", "B", "$2"),
         comparison("$1", "<", "$2")],
    )
    return QueryFlock(query, parse_filter(f"COUNT(answer.B) >= {threshold}"))


def single_flock(threshold):
    query = rule("answer", ["B"], [atom("r", "B", "$1")])
    return QueryFlock(query, parse_filter(f"COUNT(answer.B) >= {threshold}"))


def join_flock(threshold):
    query = rule(
        "answer", ["B"], [atom("r", "B", "$1"), atom("s", "$1", "C")]
    )
    return QueryFlock(query, parse_filter(f"COUNT(answer.B) >= {threshold}"))


def negation_flock(threshold):
    query = rule(
        "answer", ["B"], [atom("r", "B", "$1"), negated("bad", "B")]
    )
    return QueryFlock(query, parse_filter(f"COUNT(answer.B) >= {threshold}"))


def composite_flock(threshold):
    query = rule("answer", ["B"], [atom("r", "B", "$1")])
    return QueryFlock(
        query,
        parse_filter(
            f"COUNT(answer.B) >= {threshold} AND SUM(answer.B) >= {threshold}"
        ),
    )


FLOCK_MAKERS = [
    single_flock,
    pair_flock,
    join_flock,
    negation_flock,
    composite_flock,
]


def memory_with_aggregates(db, flock):
    """The memory engine's survivors with their aggregate columns —
    the same group_filter output the session cache stores."""
    answer = flock_answer_relation(db, flock)
    aggregates, conditions = plan_aggregate_specs(
        flock.filter, _target_resolver(flock, answer)
    )
    return MemoryEngine(db).group_filter(
        answer, list(flock.parameter_columns), aggregates, conditions,
        name="flock",
    )


@pytest.mark.parametrize("make_flock", FLOCK_MAKERS)
@given(r=r_rows, s=s_rows, bad=bad_rows, threshold=thresholds)
@settings(max_examples=25, deadline=None)
def test_survivors_identical(make_flock, r, s, bad, threshold):
    db = make_db(r, s, bad)
    flock = make_flock(threshold)
    in_memory = evaluate_flock(db, flock)
    with SQLiteBackend(db) as backend:
        on_sqlite = backend.evaluate_flock(flock)
    assert in_memory.tuples == on_sqlite.tuples
    assert in_memory.columns == on_sqlite.columns


@pytest.mark.parametrize("make_flock", FLOCK_MAKERS)
@given(r=r_rows, s=s_rows, bad=bad_rows, threshold=thresholds)
@settings(max_examples=25, deadline=None)
def test_aggregate_values_identical(make_flock, r, s, bad, threshold):
    db = make_db(r, s, bad)
    flock = make_flock(threshold)
    in_memory = memory_with_aggregates(db, flock)
    with SQLiteBackend(db) as backend:
        on_sqlite = backend.evaluate_flock_with_aggregates(flock)
    assert in_memory.columns == on_sqlite.columns
    assert in_memory.tuples == on_sqlite.tuples


@given(r=r_rows, threshold=thresholds)
@settings(max_examples=15, deadline=None)
def test_selinger_order_agrees_across_backends(r, threshold):
    db = make_db(r, set(), set())
    flock = pair_flock(threshold)
    in_memory = evaluate_flock(db, flock, order_strategy="selinger")
    with SQLiteBackend(db) as backend:
        on_sqlite = backend.evaluate_flock(flock, order_strategy="selinger")
    assert in_memory.tuples == on_sqlite.tuples
