"""Public-API hygiene: exports resolve, are documented, and stay stable."""

import inspect

import pytest

import repro
import repro.datalog
import repro.flocks
import repro.relational
import repro.workloads


PACKAGES = [repro, repro.datalog, repro.flocks, repro.relational, repro.workloads]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
    def test_all_names_resolve(self, package):
        for name in package.__all__:
            assert hasattr(package, name), f"{package.__name__}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
    def test_all_sorted(self, package):
        # A tidy __all__ is easy to diff; enforce sorted order.
        assert list(package.__all__) == sorted(package.__all__)

    @pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
    def test_package_docstring(self, package):
        assert package.__doc__ and len(package.__doc__.strip()) > 20


class TestDocstrings:
    @pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
    def test_every_public_item_documented(self, package):
        undocumented = []
        for name in package.__all__:
            item = getattr(package, name)
            if inspect.isfunction(item) or inspect.isclass(item):
                doc = inspect.getdoc(item)
                if not doc or len(doc.strip()) < 10:
                    undocumented.append(f"{package.__name__}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_classes_document_methods(self):
        """Spot-check the main workhorse classes: every public method
        carries a docstring."""
        from repro.flocks import DynamicEvaluator, FlockOptimizer, SQLiteBackend
        from repro.relational import Database, Relation

        missing = []
        for cls in (Relation, Database, FlockOptimizer, DynamicEvaluator,
                    SQLiteBackend):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") or not callable(member):
                    continue
                if not inspect.getdoc(member):
                    missing.append(f"{cls.__name__}.{name}")
        assert not missing, f"undocumented methods: {missing}"


class TestVersion:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)
