"""Unit tests for filter conditions and monotonicity (Sections 2.1, 5)."""

import pytest

from repro.datalog.atoms import ComparisonOp
from repro.errors import FilterError, ParseError
from repro.flocks import STAR, parse_filter, support_filter
from repro.relational import AggregateFunction, Relation


class TestParseFilter:
    def test_fig2_style(self):
        f = parse_filter("COUNT(answer.B) >= 20")
        assert f.aggregate is AggregateFunction.COUNT
        assert f.relation_name == "answer"
        assert f.target == "B"
        assert f.op is ComparisonOp.GE
        assert f.threshold == 20

    def test_fig4_star_style(self):
        f = parse_filter("COUNT(answer(*)) >= 20")
        assert f.target == STAR

    def test_fig1_flipped_style(self):
        # The SQL HAVING clause writes "20 <= COUNT(...)".
        f = parse_filter("20 <= COUNT(answer.BID)")
        assert f.op is ComparisonOp.GE
        assert f.threshold == 20

    def test_sum_filter(self):
        f = parse_filter("SUM(answer.W) >= 20")
        assert f.aggregate is AggregateFunction.SUM

    def test_float_threshold(self):
        f = parse_filter("SUM(answer.W) >= 2.5")
        assert f.threshold == 2.5

    def test_case_insensitive_aggregate(self):
        assert parse_filter("count(answer.B) >= 1").aggregate is AggregateFunction.COUNT

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_filter("COUNT answer >= 20")

    def test_star_with_sum_rejected(self):
        with pytest.raises(FilterError):
            parse_filter("SUM(answer(*)) >= 20")

    def test_round_trip_str(self):
        f = parse_filter("COUNT(answer.B) >= 20")
        assert parse_filter(str(f)) == f

    def test_star_round_trip(self):
        f = parse_filter("COUNT(answer(*)) >= 20")
        assert str(f) == "COUNT(answer(*)) >= 20"


class TestPasses:
    def test_count_ge(self):
        f = support_filter(20)
        assert f.passes(20)
        assert f.passes(25)
        assert not f.passes(19)

    def test_support_filter_helper(self):
        f = support_filter(5, target="B")
        assert str(f) == "COUNT(answer.B) >= 5"


class TestTestRelation:
    def test_count_star(self):
        f = support_filter(2)
        rel = Relation("answer", ("B",), {(1,), (2,)})
        assert f.test_relation(rel)
        assert not f.test_relation(Relation("answer", ("B",), {(1,)}))

    def test_count_named_column(self):
        f = parse_filter("COUNT(answer.B) >= 2")
        rel = Relation("answer", ("B", "W"), {(1, 5), (1, 6), (2, 5)})
        assert f.test_relation(rel)  # distinct B = {1, 2}

    def test_sum(self):
        f = parse_filter("SUM(answer.W) >= 10")
        rel = Relation("answer", ("B", "W"), {(1, 5), (2, 5)})
        assert f.test_relation(rel)
        assert not f.test_relation(Relation("answer", ("B", "W"), {(1, 5)}))

    def test_sum_empty_relation_fails(self):
        f = parse_filter("SUM(answer.W) >= 0")
        assert not f.test_relation(Relation("answer", ("B", "W")))

    def test_min_le(self):
        f = parse_filter("MIN(answer.W) <= 3")
        assert f.test_relation(Relation("answer", ("B", "W"), {(1, 2), (2, 9)}))
        assert not f.test_relation(Relation("answer", ("B", "W"), {(2, 9)}))


class TestMonotonicity:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("COUNT(answer.B) >= 20", True),
            ("COUNT(answer.B) > 20", True),
            ("COUNT(answer.B) <= 20", False),
            ("COUNT(answer.B) = 20", False),
            ("SUM(answer.W) >= 20", True),
            ("SUM(answer.W) <= 20", False),
            ("MAX(answer.W) >= 20", True),
            ("MAX(answer.W) <= 20", False),
            ("MIN(answer.W) <= 20", True),
            ("MIN(answer.W) >= 20", False),
        ],
    )
    def test_classification(self, text, expected):
        assert parse_filter(text).is_monotone is expected

    def test_sum_needs_nonnegativity(self):
        f = parse_filter("SUM(answer.W) >= 20", assume_nonnegative=False)
        assert not f.is_monotone

    def test_support_condition(self):
        assert parse_filter("COUNT(answer.B) >= 20").is_support_condition
        assert not parse_filter("SUM(answer.W) >= 20").is_support_condition
        assert not parse_filter("COUNT(answer.B) <= 20").is_support_condition
