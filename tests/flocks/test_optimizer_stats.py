"""Tests for the Section 4.4 statistics-gathering optimizer mode."""

import pytest

from repro.flocks import (
    FlockOptimizer,
    evaluate_flock,
    execute_plan,
    itemset_flock,
)
from repro.workloads import basket_database


@pytest.fixture(scope="module")
def long_tail_db():
    """Most items below support: exact statistics reveal far more
    pruning than the pigeonhole bound predicts."""
    return basket_database(
        n_baskets=500, n_items=800, avg_basket_size=7, skew=1.0, seed=77
    )


class TestGatherStatistics:
    def test_exact_mode_still_correct(self, long_tail_db):
        flock = itemset_flock(2, support=15)
        naive = evaluate_flock(long_tail_db, flock)
        opt = FlockOptimizer(long_tail_db, flock, gather_statistics=True)
        plan = opt.best_plan().plan
        result = execute_plan(long_tail_db, flock, plan, validate=False)
        assert result.relation == naive

    def test_exact_never_exceeds_pigeonhole(self, long_tail_db):
        flock = itemset_flock(2, support=15)
        loose = FlockOptimizer(long_tail_db, flock, gather_statistics=False)
        tight = FlockOptimizer(long_tail_db, flock, gather_statistics=True)
        for _name, candidate in loose.candidate_steps():
            if len(candidate.query.body) != 1:
                continue
            bound = loose.estimate_ok_assignments(candidate)
            exact = tight.estimate_ok_assignments(candidate)
            assert exact <= bound + 1e-9

    def test_exact_cost_leq_estimated(self, long_tail_db):
        """Better statistics can only make the chosen plan look cheaper
        (its prefilter selectivities are no larger)."""
        flock = itemset_flock(2, support=15)
        loose_best = FlockOptimizer(
            long_tail_db, flock, gather_statistics=False
        ).best_plan()
        tight_best = FlockOptimizer(
            long_tail_db, flock, gather_statistics=True
        ).best_plan()
        assert tight_best.estimated_cost <= loose_best.estimated_cost + 1e-9

    def test_probe_results_cached(self, long_tail_db):
        flock = itemset_flock(2, support=15)
        opt = FlockOptimizer(long_tail_db, flock, gather_statistics=True)
        pool = opt.candidate_steps()
        single = next(c for _n, c in pool if len(c.query.body) == 1)
        first = opt.estimate_ok_assignments(single)
        assert opt._exact_ok_cache  # populated
        second = opt.estimate_ok_assignments(single)
        assert first == second

    def test_probe_does_not_pollute_database(self, long_tail_db):
        flock = itemset_flock(2, support=15)
        opt = FlockOptimizer(long_tail_db, flock, gather_statistics=True)
        opt.best_plan()
        assert "_stats_probe" not in long_tail_db

    def test_exact_matches_true_survivor_count(self, long_tail_db):
        flock = itemset_flock(2, support=15)
        opt = FlockOptimizer(long_tail_db, flock, gather_statistics=True)
        single = next(
            c for _n, c in opt.candidate_steps() if len(c.query.body) == 1
        )
        measured = opt.estimate_ok_assignments(single)
        # Independently: items in >= 15 baskets.
        baskets = long_tail_db.get("baskets")
        from collections import Counter

        counts = Counter(item for _bid, item in baskets.tuples)
        true_survivors = sum(1 for c in counts.values() if c >= 15)
        assert measured == true_survivors
