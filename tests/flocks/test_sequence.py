"""Tests for flock sequences and maximal-itemset mining (footnote 2)."""

import pytest

from repro.datalog import atom, rule
from repro.errors import PlanError
from repro.flocks import (
    FlockSequence,
    QueryFlock,
    apriori_itemsets,
    itemset_flock,
    mine_maximal_itemsets,
    support_filter,
)
from repro.relational import database_from_dict


@pytest.fixture
def toy_db():
    return database_from_dict(
        {
            "baskets": (
                ("BID", "Item"),
                [
                    (1, "beer"), (1, "diapers"), (1, "chips"),
                    (2, "beer"), (2, "diapers"),
                    (3, "beer"), (3, "diapers"), (3, "chips"),
                    (4, "beer"), (4, "chips"),
                    (5, "soap"),
                ],
            )
        }
    )


class TestFlockSequence:
    def test_single_step(self, toy_db):
        seq = FlockSequence()
        seq.add_flock("pairs", itemset_flock(2, support=2))
        result = seq.run(toy_db)
        assert {frozenset(t) for t in result["pairs"].tuples} == {
            frozenset({"beer", "diapers"}),
            frozenset({"beer", "chips"}),
            frozenset({"diapers", "chips"}),
        }

    def test_dependent_step_uses_previous_result(self, toy_db):
        """The second flock reads the first flock's materialized
        relation as an ordinary base relation."""
        seq = FlockSequence()
        seq.add_flock("pairs", itemset_flock(2, support=2))

        def second(db):
            # Items that participate in >= 2 frequent pairs.
            query = rule(
                "answer", ["Other"], [atom("pairs", "$item", "Other")]
            )
            return QueryFlock(query, support_filter(2, target="Other"))

        seq.add("hub_items", second)
        result = seq.run(toy_db)
        # beer pairs with diapers and chips -> 2 partners.
        assert ("beer",) in result["hub_items"].tuples

    def test_duplicate_step_name_rejected(self, toy_db):
        seq = FlockSequence()
        seq.add_flock("pairs", itemset_flock(2, support=2))
        with pytest.raises(PlanError):
            seq.add_flock("pairs", itemset_flock(2, support=3))

    def test_base_db_untouched(self, toy_db):
        seq = FlockSequence()
        seq.add_flock("pairs", itemset_flock(2, support=2))
        seq.run(toy_db)
        assert "pairs" not in toy_db

    def test_trace_records_steps(self, toy_db):
        seq = FlockSequence()
        seq.add_flock("pairs", itemset_flock(2, support=2))
        seq.add_flock("triples", itemset_flock(3, support=2))
        result = seq.run(toy_db)
        assert [s.name for s in result.trace.steps] == ["pairs", "triples"]

    def test_optimizer_path(self, toy_db):
        seq = FlockSequence()
        seq.add_flock("pairs", itemset_flock(2, support=2), use_optimizer=True)
        plain = FlockSequence()
        plain.add_flock("pairs", itemset_flock(2, support=2))
        assert seq.run(toy_db)["pairs"] == plain.run(toy_db)["pairs"]


class TestMaximalItemsets:
    def test_toy_maximal(self, toy_db):
        maximal = mine_maximal_itemsets(toy_db, support=2)
        # {beer, diapers, chips} is frequent (baskets 1 and 3) and
        # maximal; every frequent pair is inside it, so no pairs remain.
        assert maximal == {
            3: {frozenset({"beer", "diapers", "chips"})}
        }

    def test_maximality_with_isolated_pair(self):
        db = database_from_dict(
            {
                "baskets": (
                    ("BID", "Item"),
                    [
                        (1, "a"), (1, "b"), (1, "c"),
                        (2, "a"), (2, "b"), (2, "c"),
                        (3, "x"), (3, "y"),
                        (4, "x"), (4, "y"),
                    ],
                )
            }
        )
        maximal = mine_maximal_itemsets(db, support=2)
        assert maximal[3] == {frozenset({"a", "b", "c"})}
        assert maximal[2] == {frozenset({"x", "y"})}

    def test_consistency_with_classic_apriori(self, toy_db):
        levels = apriori_itemsets(toy_db.get("baskets"), 2)
        maximal = mine_maximal_itemsets(toy_db, support=2)
        # Every maximal set must be frequent at its level...
        for size, sets in maximal.items():
            for itemset in sets:
                assert itemset in levels[size]
        # ...and not contained in any frequent superset.
        all_frequent = {s for level in levels.values() for s in level}
        for size, sets in maximal.items():
            for itemset in sets:
                assert not any(
                    itemset < bigger for bigger in all_frequent
                )

    def test_max_size_cap(self, toy_db):
        maximal = mine_maximal_itemsets(toy_db, support=2, max_size=2)
        assert max(maximal) <= 2

    def test_high_support_empty(self, toy_db):
        assert mine_maximal_itemsets(toy_db, support=99) == {}

    def test_plans_and_naive_agree(self, toy_db):
        with_plans = mine_maximal_itemsets(toy_db, support=2, use_plans=True)
        without = mine_maximal_itemsets(toy_db, support=2, use_plans=False)
        assert with_plans == without
