"""Graceful degradation and partial-trace semantics of mine().

Covers the policy layer: strategy fallback (optimized -> dynamic ->
naive) on pre-answer failures, backend fallback (sqlite -> memory) on
post-retry SQLite errors, transient-error healing, and the contract
that a budget exhausted mid plan-search degrades while one exhausted
mid-execution propagates with its partial trace.
"""

import sqlite3

import pytest

from repro import (
    BudgetExceededError,
    EvaluationError,
    PlanError,
    ResourceBudget,
    mine,
)
from repro.datalog import Parameter, atom, comparison, rule
from repro.datalog.subqueries import safe_subqueries_with_parameters
from repro.flocks import (
    QueryFlock,
    evaluate_flock,
    evaluate_flock_sqlite,
    execute_plan,
    execute_plan_sqlite,
    plan_from_subqueries,
    support_filter,
)
from repro.relational import database_from_dict
from repro.testing import inject


# ----------------------------------------------------------------------
# Partial-trace semantics (one wide basket makes the $1,$2 prefilter
# step two orders of magnitude larger than the $1 step)
# ----------------------------------------------------------------------


@pytest.fixture
def wide_db():
    """One basket holding 20 items: the pair join has 400 rows."""
    rows = [(1, f"i{n:02d}") for n in range(20)]
    return database_from_dict({"baskets": (("BID", "Item"), rows)})


@pytest.fixture
def pair_flock():
    query = rule(
        "answer",
        ["B"],
        [
            atom("baskets", "B", "$1"),
            atom("baskets", "B", "$2"),
            comparison("$1", "<", "$2"),
        ],
    )
    return QueryFlock(query, support_filter(1, target="B"))


def two_step_plan(flock):
    """ok0 restricts {$1} (20 rows); ok1 restricts {$1,$2} (400 rows)."""
    query = flock.rules[0]
    [small] = safe_subqueries_with_parameters(query, [Parameter("1")])
    [large] = safe_subqueries_with_parameters(
        query, [Parameter("1"), Parameter("2")]
    )
    return plan_from_subqueries(flock, [("ok0", small), ("ok1", large)])


class TestPartialTrace:
    BUDGET = ResourceBudget(max_intermediate_rows=50)

    def test_memory_trace_lists_steps_completed_before_abort(
        self, wide_db, pair_flock
    ):
        """The in-memory executor dies inside ok1's join, so the only
        completed FILTER step in the partial trace is ok0."""
        plan = two_step_plan(pair_flock)
        with pytest.raises(BudgetExceededError) as exc:
            execute_plan(wide_db, pair_flock, plan, guard=self.BUDGET)
        assert exc.value.limit == "intermediate_rows"
        completed = [s.name for s in exc.value.trace.steps if s.filtered]
        assert completed == ["ok0"]

    def test_sqlite_trace_lists_steps_completed_before_abort(
        self, wide_db, pair_flock
    ):
        """SQLite materializes the whole ok1 table before the per-table
        row check runs, so ok1 counts as completed there."""
        plan = two_step_plan(pair_flock)
        with pytest.raises(BudgetExceededError) as exc:
            execute_plan_sqlite(wide_db, pair_flock, plan, guard=self.BUDGET)
        assert exc.value.limit == "intermediate_rows"
        completed = [s.name for s in exc.value.trace.steps if s.filtered]
        assert completed == ["ok0", "ok1"]
        assert exc.value.node == "ok1"

    def test_sufficient_budget_runs_plan_to_completion(
        self, wide_db, pair_flock
    ):
        plan = two_step_plan(pair_flock)
        roomy = ResourceBudget(max_intermediate_rows=1000)
        unbudgeted = execute_plan(wide_db, pair_flock, plan).relation
        assert execute_plan(
            wide_db, pair_flock, plan, guard=roomy
        ).relation == unbudgeted
        assert execute_plan_sqlite(
            wide_db, pair_flock, plan, guard=roomy
        ) == unbudgeted


# ----------------------------------------------------------------------
# Strategy degradation
# ----------------------------------------------------------------------


class TestStrategyDegradation:
    @pytest.mark.faults
    def test_optimizer_fault_degrades_to_dynamic(
        self, small_basket_db, basket_flock
    ):
        expected = evaluate_flock(small_basket_db, basket_flock)
        with inject("optimizer.search", PlanError):
            relation, report = mine(
                small_basket_db, basket_flock, strategy="optimized"
            )
        assert relation == expected
        assert report.strategy_used == "dynamic"
        assert report.degraded
        (downgrade,) = report.downgrades
        assert (downgrade.kind, downgrade.from_name, downgrade.to_name) == (
            "strategy", "optimized", "dynamic",
        )
        assert "downgrade [strategy] optimized -> dynamic" in str(report)

    @pytest.mark.faults
    def test_degrades_all_the_way_to_naive(
        self, small_basket_db, basket_flock
    ):
        expected = evaluate_flock(small_basket_db, basket_flock)
        with inject("optimizer.search", PlanError):
            with inject("dynamic.join", PlanError):
                relation, report = mine(
                    small_basket_db, basket_flock, strategy="optimized"
                )
        assert relation == expected
        assert report.strategy_used == "naive"
        assert [d.to_name for d in report.downgrades] == ["dynamic", "naive"]

    @pytest.mark.faults
    def test_naive_has_no_fallback(self, small_basket_db, basket_flock):
        with inject("relational.join", PlanError):
            with pytest.raises(PlanError):
                mine(small_basket_db, basket_flock, strategy="naive")

    @pytest.mark.faults
    def test_union_flock_degrades_to_naive(self, small_web_db, web_flock):
        """Dynamic is unsound for unions, so the chain skips it."""
        expected = evaluate_flock(small_web_db, web_flock)
        with inject("optimizer.search", PlanError):
            relation, report = mine(
                small_web_db, web_flock, strategy="optimized"
            )
        assert relation == expected
        assert report.strategy_used == "naive"

    @pytest.mark.faults
    def test_budget_death_mid_plan_search_degrades(
        self, small_basket_db, basket_flock
    ):
        """Budget exhaustion before any plan exists loses no work, so
        mine() may still try a cheaper strategy."""
        expected = evaluate_flock(small_basket_db, basket_flock)
        with inject("optimizer.search", BudgetExceededError):
            relation, report = mine(
                small_basket_db, basket_flock, strategy="optimized"
            )
        assert relation == expected
        assert report.strategy_used == "dynamic"

    @pytest.mark.faults
    def test_budget_death_mid_execution_propagates(
        self, small_basket_db, basket_flock
    ):
        """Once a plan is executing, a budget abort is final — retrying
        cheaper would turn a hard limit into a soft one."""
        with inject("executor.step", BudgetExceededError):
            with pytest.raises(BudgetExceededError):
                mine(small_basket_db, basket_flock, strategy="optimized")


# ----------------------------------------------------------------------
# Backend degradation
# ----------------------------------------------------------------------


class TestBackendDegradation:
    @pytest.mark.faults
    def test_permanent_sqlite_fault_degrades_to_memory(
        self, small_basket_db, basket_flock
    ):
        expected = evaluate_flock(small_basket_db, basket_flock)
        with inject(
            "sqlite.execute", sqlite3.OperationalError("database is locked")
        ) as fault:
            relation, report = mine(
                small_basket_db, basket_flock,
                strategy="naive", backend="sqlite",
            )
        assert relation == expected
        assert report.backend_requested == "sqlite"
        assert report.backend_used == "memory"
        (downgrade,) = report.downgrades
        assert (downgrade.kind, downgrade.from_name, downgrade.to_name) == (
            "backend", "sqlite", "memory",
        )
        assert "locked" in downgrade.reason
        assert fault.failures > 1, "transient errors must be retried first"

    @pytest.mark.faults
    def test_transient_sqlite_fault_heals_without_downgrade(
        self, small_basket_db, basket_flock
    ):
        expected = evaluate_flock(small_basket_db, basket_flock)
        with inject(
            "sqlite.execute",
            sqlite3.OperationalError("database is locked"),
            times=2,
        ) as fault:
            relation, report = mine(
                small_basket_db, basket_flock,
                strategy="naive", backend="sqlite",
            )
        assert relation == expected
        assert report.backend_used == "sqlite"
        assert not report.degraded
        assert fault.failures == 2

    @pytest.mark.faults
    def test_nontransient_sqlite_fault_fails_fast_with_sql(
        self, small_basket_db, basket_flock
    ):
        """Satellite contract: raw sqlite3 errors never escape; the
        wrapper names the offending statement."""
        with inject(
            "sqlite.execute", sqlite3.OperationalError("no such table: xyz")
        ) as fault:
            with pytest.raises(EvaluationError) as exc:
                evaluate_flock_sqlite(small_basket_db, basket_flock)
        assert fault.failures == 1, "non-transient errors are not retried"
        assert exc.value.sql
        assert "while executing:" in str(exc.value)

    def test_dynamic_on_sqlite_records_backend_downgrade(
        self, small_basket_db, basket_flock
    ):
        expected = evaluate_flock(small_basket_db, basket_flock)
        relation, report = mine(
            small_basket_db, basket_flock,
            strategy="dynamic", backend="sqlite",
        )
        assert relation == expected
        assert report.backend_used == "memory"
        (downgrade,) = report.downgrades
        assert downgrade.kind == "backend"
        assert "in-memory" in downgrade.reason

    def test_healthy_sqlite_backend_reports_no_downgrade(
        self, small_basket_db, basket_flock
    ):
        expected = evaluate_flock(small_basket_db, basket_flock)
        relation, report = mine(
            small_basket_db, basket_flock,
            strategy="optimized", backend="sqlite",
        )
        assert relation == expected
        assert report.backend_used == "sqlite"
        assert not report.degraded
        assert "backend: sqlite" in str(report)
