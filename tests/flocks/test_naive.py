"""Tests for the reference evaluators (group-by and brute-force)."""


from repro.datalog import Parameter
from repro.flocks import (
    QueryFlock,
    evaluate_flock,
    evaluate_flock_bruteforce,
    flock_answer_relation,
    parameter_domains,
    parse_flock,
    support_filter,
)


class TestEvaluateFlock:
    def test_basket_pairs(self, small_basket_db, basket_flock):
        result = evaluate_flock(small_basket_db, basket_flock)
        assert result.columns == ("$1", "$2")
        assert result.tuples == frozenset(
            {("beer", "diapers"), ("beer", "chips")}
        )

    def test_medical_side_effects(self, small_medical_db, medical_flock):
        result = evaluate_flock(small_medical_db, medical_flock)
        # (aspirin, rash): patients 1 and 2 take aspirin, exhibit rash,
        # and flu does not cause rash.
        assert result.tuples == frozenset({("aspirin", "rash")})
        assert result.columns == ("$m", "$s")

    def test_web_union(self, small_web_db, web_flock):
        result = evaluate_flock(small_web_db, web_flock)
        # (alpha, beta): titles of d1 and d2 (2 documents) plus anchors
        # a1 (alpha in anchor, beta in d1's title) and a2 (beta in
        # anchor... beta is $2 side) -> comfortably >= 2 answers.
        assert ("alpha", "beta") in result

    def test_threshold_scaling(self, small_basket_db, basket_query_ordered):
        at_three = QueryFlock(basket_query_ordered, support_filter(3, target="B"))
        result = evaluate_flock(small_basket_db, at_three)
        assert result.tuples == frozenset({("beer", "diapers")})

    def test_no_qualifying_pairs(self, small_basket_db, basket_query_ordered):
        at_ten = QueryFlock(basket_query_ordered, support_filter(10, target="B"))
        assert len(evaluate_flock(small_basket_db, at_ten)) == 0

    def test_weighted_sum_flock(self):
        from repro.relational import database_from_dict

        db = database_from_dict(
            {
                "baskets": (
                    ("BID", "Item"),
                    [(1, "a"), (1, "b"), (2, "a"), (2, "b"), (3, "a"), (3, "c")],
                ),
                "importance": (("BID", "W"), [(1, 10), (2, 15), (3, 1)]),
            }
        )
        flock = parse_flock(
            """
            QUERY:
            answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND
                           importance(B,W) AND $1 < $2
            FILTER:
            SUM(answer.W) >= 20
            """
        )
        result = evaluate_flock(db, flock)
        # (a, b): baskets 1 and 2, weights 10 + 15 = 25 >= 20.
        # (a, c): basket 3, weight 1.
        assert result.tuples == frozenset({("a", "b")})


class TestAnswerRelation:
    def test_columns(self, small_basket_db, basket_flock):
        answer = flock_answer_relation(small_basket_db, basket_flock)
        assert answer.columns == ("$1", "$2", "B")

    def test_union_positional_columns(self, small_web_db, web_flock):
        answer = flock_answer_relation(small_web_db, web_flock)
        assert answer.columns == ("$1", "$2", "_h0")


class TestParameterDomains:
    def test_domains_cover_columns(self, small_basket_db, basket_flock):
        domains = parameter_domains(small_basket_db, basket_flock)
        items = {"beer", "diapers", "chips", "soap"}
        assert domains[Parameter("1")] == items
        assert domains[Parameter("2")] == items

    def test_union_domains(self, small_web_db, web_flock):
        domains = parameter_domains(small_web_db, web_flock)
        # $1 appears in inTitle.W and inAnchor.W positions.
        assert "alpha" in domains[Parameter("1")]
        assert "gamma" in domains[Parameter("1")]


class TestBruteForceAgreement:
    """The brute-force oracle must agree with the group-by evaluator."""

    def test_baskets(self, small_basket_db, basket_flock):
        fast = evaluate_flock(small_basket_db, basket_flock)
        slow = evaluate_flock_bruteforce(small_basket_db, basket_flock)
        assert fast == slow

    def test_medical(self, small_medical_db, medical_flock):
        fast = evaluate_flock(small_medical_db, medical_flock)
        slow = evaluate_flock_bruteforce(small_medical_db, medical_flock)
        assert fast == slow

    def test_web_union(self, small_web_db, web_flock):
        fast = evaluate_flock(small_web_db, web_flock)
        slow = evaluate_flock_bruteforce(small_web_db, web_flock)
        assert fast == slow
