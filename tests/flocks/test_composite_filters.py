"""Composite (conjunction) filters — the Section 5 generalization.

A conjunction of monotone conditions is monotone, so every evaluation
strategy must support it and agree.
"""

import pytest

from repro.datalog.subqueries import SubqueryCandidate
from repro.errors import FilterError
from repro.flocks import CompositeFilter, evaluate_flock, evaluate_flock_bruteforce, evaluate_flock_dynamic, evaluate_flock_sqlite, execute_plan, flock_to_sql, parse_filter, parse_flock, plan_from_subqueries, support_filter
from repro.relational import database_from_dict


WEIGHTED_TEXT = """
QUERY:
answer(B,W) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    importance(B,W) AND
    $1 < $2

FILTER:
COUNT(answer.B) >= 2 AND SUM(answer.W) >= 20
"""


@pytest.fixture
def weighted_db():
    """(a,b): 3 baskets, weights 10+10+5 = 25 -> passes both.
    (a,c): 2 baskets, weights 5+5 = 10 -> passes COUNT, fails SUM.
    (b,c): 1 basket, weight 10 -> fails COUNT, would pass SUM at 10."""
    return database_from_dict(
        {
            "baskets": (
                ("BID", "Item"),
                [
                    (1, "a"), (1, "b"),
                    (2, "a"), (2, "b"),
                    (3, "a"), (3, "b"), (3, "c"),
                    (4, "a"), (4, "c"),
                    (5, "a"), (5, "c"),
                ],
            ),
            "importance": (
                ("BID", "W"),
                [(1, 10), (2, 10), (3, 5), (4, 5), (5, 5)],
            ),
        }
    )


class TestParseComposite:
    def test_parses_to_composite(self):
        condition = parse_filter("COUNT(answer.B) >= 2 AND SUM(answer.W) >= 20")
        assert isinstance(condition, CompositeFilter)
        assert len(condition.conditions) == 2

    def test_str_round_trip(self):
        condition = parse_filter("COUNT(answer.B) >= 2 AND SUM(answer.W) >= 20")
        assert parse_filter(str(condition)) == condition

    def test_monotone_iff_all_monotone(self):
        both = parse_filter("COUNT(answer.B) >= 2 AND SUM(answer.W) >= 20")
        assert both.is_monotone
        mixed = parse_filter("COUNT(answer.B) >= 2 AND COUNT(answer.B) = 5")
        assert not mixed.is_monotone

    def test_support_threshold_takes_max_count(self):
        condition = parse_filter(
            "COUNT(answer.B) >= 2 AND COUNT(answer.B) >= 7 AND "
            "SUM(answer.W) >= 20"
        )
        assert condition.support_threshold() == 7

    def test_single_condition_rejected(self):
        with pytest.raises(FilterError):
            CompositeFilter((support_filter(2),))

    def test_mixed_relations_rejected(self):
        a = support_filter(2, relation_name="answer")
        b = support_filter(2, relation_name="other")
        with pytest.raises(FilterError):
            CompositeFilter((a, b))


class TestCompositeEvaluation:
    def test_naive_semantics(self, weighted_db):
        flock = parse_flock(WEIGHTED_TEXT)
        result = evaluate_flock(weighted_db, flock)
        assert result.tuples == frozenset({("a", "b")})

    def test_bruteforce_agrees(self, weighted_db):
        flock = parse_flock(WEIGHTED_TEXT)
        assert evaluate_flock_bruteforce(weighted_db, flock) == (
            evaluate_flock(weighted_db, flock)
        )

    def test_dynamic_agrees(self, weighted_db):
        flock = parse_flock(WEIGHTED_TEXT)
        result, trace = evaluate_flock_dynamic(weighted_db, flock)
        assert result.relation == evaluate_flock(weighted_db, flock)
        # The decision threshold comes from the COUNT conjunct.
        assert trace.decisions

    def test_plan_agrees(self, weighted_db):
        flock = parse_flock(WEIGHTED_TEXT)
        rule = flock.rules[0]
        candidate = SubqueryCandidate((0, 2), rule.with_body_subset([0, 2]))
        plan = plan_from_subqueries(flock, [("okW1", candidate)])
        assert execute_plan(weighted_db, flock, plan).relation == (
            evaluate_flock(weighted_db, flock)
        )

    def test_sqlite_agrees(self, weighted_db):
        flock = parse_flock(WEIGHTED_TEXT)
        assert evaluate_flock_sqlite(weighted_db, flock) == (
            evaluate_flock(weighted_db, flock)
        )

    def test_sql_contains_both_clauses(self, weighted_db):
        flock = parse_flock(WEIGHTED_TEXT)
        sql = flock_to_sql(flock, weighted_db)
        assert "COUNT(DISTINCT" in sql
        assert "SUM(" in sql
        assert " AND SUM" in sql


class TestSumDistinctBugRegression:
    """SUM must be row-wise, not value-distinct: two different baskets
    with equal weight both contribute (the SUM(DISTINCT) bug)."""

    def test_equal_weights_counted_twice_on_sqlite(self):
        db = database_from_dict(
            {
                "baskets": (
                    ("BID", "Item"),
                    [(1, "x"), (1, "y"), (2, "x"), (2, "y")],
                ),
                # Both baskets weigh 10: SUM must be 20, not 10.
                "importance": (("BID", "W"), [(1, 10), (2, 10)]),
            }
        )
        flock = parse_flock(
            """
            QUERY:
            answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND
                           importance(B,W) AND $1 < $2
            FILTER:
            SUM(answer.W) >= 20
            """
        )
        ours = evaluate_flock(db, flock)
        assert ours.tuples == frozenset({("x", "y")})
        assert evaluate_flock_sqlite(db, flock) == ours

    def test_non_monotone_composite_refused_for_dynamic(self, weighted_db):
        flock_text = WEIGHTED_TEXT.replace("SUM(answer.W) >= 20",
                                           "COUNT(answer.B) = 3")
        flock = parse_flock(flock_text)
        with pytest.raises(FilterError):
            evaluate_flock_dynamic(weighted_db, flock)


class TestCompositeOptimizer:
    def test_optimizer_handles_composite(self, weighted_db):
        from repro.flocks import FlockOptimizer

        flock = parse_flock(WEIGHTED_TEXT)
        opt = FlockOptimizer(weighted_db, flock)
        best = opt.best_plan()
        assert execute_plan(weighted_db, flock, best.plan).relation == (
            evaluate_flock(weighted_db, flock)
        )

    def test_mine_auto_with_composite(self, weighted_db):
        from repro import mine

        flock = parse_flock(WEIGHTED_TEXT)
        relation, report = mine(weighted_db, flock)
        assert relation == evaluate_flock(weighted_db, flock)
        assert report.strategy_used == "dynamic"
