"""Unit tests for the QueryFlock model and the flock parser."""

import pytest

from repro.datalog import Parameter, atom, negated, rule
from repro.errors import FilterError, ParseError, SafetyError
from repro.flocks import QueryFlock, parse_flock, support_filter


FIG2_TEXT = """
QUERY:
answer(B) :-
    baskets(B,$1) AND
    baskets(B,$2)

FILTER:
COUNT(answer.B) >= 20
"""

FIG3_TEXT = """
QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)

FILTER:
COUNT(answer.P) >= 20
"""

FIG4_TEXT = """
QUERY:
answer(D) :-
    inTitle(D,$1) AND
    inTitle(D,$2) AND
    $1 < $2

answer(A) :-
    link(A,D1,D2) AND
    inAnchor(A,$1) AND
    inTitle(D2,$2) AND
    $1 < $2

answer(A) :-
    link(A,D1,D2) AND
    inAnchor(A,$2) AND
    inTitle(D2,$1) AND
    $1 < $2

FILTER:
COUNT(answer(*)) >= 20
"""

FIG10_TEXT = """
QUERY:
answer(B,W) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    importance(B,W)

FILTER:
SUM(answer.W) >= 20
"""


class TestParseFlock:
    def test_fig2(self):
        flock = parse_flock(FIG2_TEXT)
        assert flock.parameter_columns == ("$1", "$2")
        assert flock.filter.threshold == 20
        assert not flock.is_union

    def test_fig3(self):
        flock = parse_flock(FIG3_TEXT)
        assert flock.parameter_columns == ("$m", "$s")
        assert flock.predicates() == {
            "exhibits", "treatments", "diagnoses", "causes",
        }

    def test_fig4_union(self):
        flock = parse_flock(FIG4_TEXT)
        assert flock.is_union
        assert len(flock.rules) == 3
        assert flock.filter.target == "*"

    def test_fig10_weighted(self):
        flock = parse_flock(FIG10_TEXT)
        assert flock.filter.aggregate.value == "SUM"
        assert flock.filter.is_monotone

    def test_missing_sections(self):
        with pytest.raises(ParseError):
            parse_flock("answer(B) :- baskets(B,$1)")

    def test_str_round_trip(self):
        flock = parse_flock(FIG2_TEXT)
        assert parse_flock(str(flock)) == flock


class TestValidation:
    def test_unsafe_query_rejected(self):
        q = rule("answer", ["P"], [negated("causes", "D", "$s")])
        with pytest.raises(SafetyError):
            QueryFlock(q, support_filter(2, target="P"))

    def test_filter_head_mismatch(self, basket_query):
        bad = support_filter(2, relation_name="other", target="B")
        with pytest.raises(FilterError):
            QueryFlock(basket_query, bad)

    def test_filter_target_must_be_head_term(self, basket_query):
        bad = support_filter(2, target="Z")
        with pytest.raises(FilterError):
            QueryFlock(basket_query, bad)

    def test_union_requires_star_target(self, web_union_query):
        with pytest.raises(FilterError):
            QueryFlock(web_union_query, support_filter(2, target="D"))

    def test_empty_accepting_count_rejected(self, basket_query):
        with pytest.raises(FilterError):
            QueryFlock(basket_query, support_filter(0, target="B"))

    def test_rule_missing_parameter_rejected(self):
        from repro.datalog import UnionQuery

        r1 = rule("answer", ["B"], [atom("r", "B", "$1"), atom("r", "B", "$2")])
        r2 = rule("answer", ["B"], [atom("r", "B", "$1")])
        with pytest.raises(FilterError):
            QueryFlock(UnionQuery((r1, r2)), support_filter(2))


class TestProperties:
    def test_parameters_sorted_by_name(self, medical_flock):
        assert medical_flock.parameters == (Parameter("m"), Parameter("s"))

    def test_rules_view(self, basket_flock):
        assert len(basket_flock.rules) == 1

    def test_str_contains_sections(self, basket_flock):
        text = str(basket_flock)
        assert "QUERY:" in text and "FILTER:" in text
