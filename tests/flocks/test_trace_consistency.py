"""Trace-consistency tests: the numbers in execution traces must agree
with the results they describe."""

import pytest

from repro.flocks import evaluate_flock_dynamic, execute_plan, fig3_flock, fig5_plan, itemset_flock, itemset_plan, single_step_plan
from repro.workloads import basket_database, generate_medical


@pytest.fixture(scope="module")
def medical():
    return generate_medical(n_patients=300, seed=42)


@pytest.fixture(scope="module")
def baskets_db():
    return basket_database(150, 80, skew=1.2, seed=43)


class TestExecutorTrace:
    def test_final_step_output_matches_result(self, medical):
        flock = fig3_flock(support=5)
        result = execute_plan(medical.db, flock, fig5_plan(flock))
        assert result.trace.steps[-1].output_assignments == len(result)

    def test_step_names_match_plan(self, medical):
        flock = fig3_flock(support=5)
        plan = fig5_plan(flock)
        result = execute_plan(medical.db, flock, plan)
        assert [s.name for s in result.trace.steps] == plan.step_names()

    def test_prefilter_outputs_bound_final_inputs(self, baskets_db):
        """Each okItem relation's survivors bound the distinct values of
        its parameter in the final answer."""
        flock = itemset_flock(2, support=10)
        plan = itemset_plan(flock)
        result = execute_plan(baskets_db, flock, plan)
        ok1_size = result.trace.steps[0].output_assignments
        final_distinct_p1 = result.relation.distinct_count("$1")
        assert final_distinct_p1 <= ok1_size

    def test_trace_total_seconds_sums(self, medical):
        flock = fig3_flock(support=5)
        result = execute_plan(medical.db, flock, single_step_plan(flock))
        assert result.trace.total_seconds == pytest.approx(
            sum(s.seconds for s in result.trace.steps)
        )


class TestDynamicTrace:
    def test_root_sizes_match_result(self, medical):
        flock = fig3_flock(support=5)
        result, trace = evaluate_flock_dynamic(medical.db, flock)
        root = trace.decisions[-1]
        assert root.size_after == len(result)

    def test_filtered_sizes_never_grow(self, medical):
        flock = fig3_flock(support=5)
        _, trace = evaluate_flock_dynamic(medical.db, flock)
        for decision in trace.decisions:
            assert decision.size_after <= decision.size_before

    def test_skip_decisions_preserve_size(self, medical):
        flock = fig3_flock(support=5)
        _, trace = evaluate_flock_dynamic(
            medical.db, flock, decision_factor=0.0
        )
        for decision in trace.decisions[:-1]:  # all but root
            if not decision.filtered:
                assert decision.size_after == decision.size_before

    def test_seconds_recorded(self, medical):
        flock = fig3_flock(support=5)
        _, trace = evaluate_flock_dynamic(medical.db, flock)
        assert trace.seconds > 0
