"""Static-optimizer tests: candidate pools, cost model, plan search."""

import pytest

from repro.datalog import Parameter
from repro.errors import FilterError, PlanError
from repro.flocks import (
    FlockOptimizer,
    QueryFlock,
    estimate_rule_size,
    evaluate_flock,
    execute_plan,
    optimize,
    parse_filter,
    support_filter,
)
from repro.workloads import basket_database, generate_medical


@pytest.fixture(scope="module")
def skewed_basket_db():
    """Zipf-skewed baskets where pre-filtering pays off."""
    return basket_database(n_baskets=300, n_items=150, avg_basket_size=6,
                           skew=1.3, seed=7)


@pytest.fixture(scope="module")
def medical_workload():
    return generate_medical(n_patients=400, seed=11)


class TestEstimateRuleSize:
    def test_single_atom_is_cardinality(self, small_basket_db, basket_query):
        sub = basket_query.with_body_subset([0])
        est = estimate_rule_size(small_basket_db, sub)
        assert est == len(small_basket_db.get("baskets"))

    def test_self_join_divides_by_distinct(self, small_basket_db, basket_query):
        est = estimate_rule_size(small_basket_db, basket_query)
        n = len(small_basket_db.get("baskets"))
        bids = small_basket_db.get("baskets").distinct_count("BID")
        assert est == pytest.approx(n * n / bids)

    def test_comparison_halves(self, small_basket_db, basket_query,
                               basket_query_ordered):
        plain = estimate_rule_size(small_basket_db, basket_query)
        ordered = estimate_rule_size(small_basket_db, basket_query_ordered)
        assert ordered == pytest.approx(plain / 2)

    def test_negation_selectivity(self, small_medical_db, medical_query):
        with_neg = estimate_rule_size(small_medical_db, medical_query)
        without = estimate_rule_size(
            small_medical_db, medical_query.without_subgoals([3])
        )
        assert with_neg == pytest.approx(without / 2)


class TestFlockOptimizer:
    def test_candidate_pool_covers_parameter_sets(
        self, small_medical_db, medical_flock
    ):
        opt = FlockOptimizer(small_medical_db, medical_flock)
        pool = opt.candidate_steps()
        param_sets = {frozenset(c.parameters) for _, c in pool}
        assert frozenset({Parameter("s")}) in param_sets
        assert frozenset({Parameter("m")}) in param_sets
        assert frozenset({Parameter("s"), Parameter("m")}) in param_sets

    def test_rejects_non_monotone(self, medical_query, small_medical_db):
        flock = QueryFlock(medical_query, parse_filter("COUNT(answer.P) = 5"))
        with pytest.raises(FilterError):
            FlockOptimizer(small_medical_db, flock)

    def test_rejects_unions(self, small_web_db, web_flock):
        with pytest.raises(PlanError):
            FlockOptimizer(small_web_db, web_flock)

    def test_enumerate_includes_trivial_plan(
        self, small_medical_db, medical_flock
    ):
        opt = FlockOptimizer(small_medical_db, medical_flock)
        plans = opt.enumerate_plans(max_prefilters=1)
        assert any(len(p) == 1 for p in plans)
        assert any(len(p) == 2 for p in plans)

    def test_all_enumerated_plans_are_correct(
        self, small_medical_db, medical_flock
    ):
        naive = evaluate_flock(small_medical_db, medical_flock)
        opt = FlockOptimizer(small_medical_db, medical_flock)
        for plan in opt.enumerate_plans(max_prefilters=2):
            result = execute_plan(small_medical_db, medical_flock, plan)
            assert result.relation == naive, plan.render(medical_flock)

    def test_best_plan_scores_finite(self, small_medical_db, medical_flock):
        scored = FlockOptimizer(small_medical_db, medical_flock).best_plan()
        assert scored.estimated_cost >= 0
        assert len(scored.step_costs) == len(scored.plan)

    def test_optimize_on_skewed_data_uses_prefilters(self, skewed_basket_db):
        from repro.flocks import itemset_flock

        flock = itemset_flock(2, support=20)
        plan = optimize(skewed_basket_db, flock)
        # With strong skew and a high threshold the optimizer should
        # choose at least one pre-filter step.
        assert len(plan) >= 2

    def test_optimized_plan_correct_on_real_workload(self, medical_workload):
        flock = QueryFlock(
            _medical_query(), support_filter(10, target="P")
        )
        naive = evaluate_flock(medical_workload.db, flock)
        plan = optimize(medical_workload.db, flock)
        result = execute_plan(medical_workload.db, flock, plan)
        assert result.relation == naive


def _medical_query():
    from repro.datalog import atom, negated, rule

    return rule(
        "answer",
        ["P"],
        [
            atom("exhibits", "P", "$s"),
            atom("treatments", "P", "$m"),
            atom("diagnoses", "P", "D"),
            negated("causes", "D", "$s"),
        ],
    )
