"""Tests for the union optimizer and heuristic-2 chained-plan search."""

import pytest

from repro.datalog import atom, rule
from repro.errors import FilterError, PlanError
from repro.flocks import (
    FlockOptimizer,
    QueryFlock,
    evaluate_flock,
    execute_plan,
    optimize_union,
    parse_flock,
    support_filter,
)
from repro.workloads import generate_layered_hub_digraph, generate_webdocs


@pytest.fixture(scope="module")
def web():
    return generate_webdocs(
        n_documents=400, n_anchors=900, vocabulary=500, seed=55
    )


@pytest.fixture(scope="module")
def web_flock20():
    return parse_flock(
        """
        QUERY:
        answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
        answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND
                     inTitle(D2,$2) AND $1 < $2
        answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND
                     inTitle(D2,$1) AND $1 < $2
        FILTER:
        COUNT(answer(*)) >= 20
        """
    )


class TestOptimizeUnion:
    def test_produces_prefilters_when_beneficial(self, web, web_flock20):
        plan = optimize_union(web.db, web_flock20)
        assert len(plan) >= 2  # at least one okU step + final

    def test_result_matches_naive(self, web, web_flock20):
        plan = optimize_union(web.db, web_flock20)
        naive = evaluate_flock(web.db, web_flock20)
        assert execute_plan(web.db, web_flock20, plan).relation == naive

    def test_strict_benefit_factor_falls_back(self, web, web_flock20):
        plan = optimize_union(web.db, web_flock20, benefit_factor=0.01)
        assert plan.step_names() == ["ok"]
        naive = evaluate_flock(web.db, web_flock20)
        assert execute_plan(web.db, web_flock20, plan).relation == naive

    def test_max_bounds_cap(self, web, web_flock20):
        plan = optimize_union(web.db, web_flock20, max_bounds=1)
        assert len(plan) <= 2

    def test_rejects_single_rule_flock(self, web):
        single = QueryFlock(
            rule("answer", ["D"], [atom("inTitle", "D", "$1")]),
            support_filter(5, target="D"),
        )
        with pytest.raises(PlanError):
            optimize_union(web.db, single)

    def test_rejects_non_monotone(self, web, web_flock20):
        from repro.flocks import parse_filter

        bad = QueryFlock(web_flock20.query, parse_filter("COUNT(answer(*)) = 5"))
        with pytest.raises(FilterError):
            optimize_union(web.db, bad)


class TestChainedSearch:
    @pytest.fixture(scope="class")
    def path_setup(self):
        db = generate_layered_hub_digraph(
            max_depth=2, hubs_per_depth=10, successors_per_hub=25, seed=8
        )
        query = rule(
            "answer",
            ["X"],
            [
                atom("arc", "$1", "X"),
                atom("arc", "X", "Y1"),
                atom("arc", "Y1", "Y2"),
            ],
        )
        flock = QueryFlock(query, support_filter(20, target="X"))
        return db, flock

    def test_chains_enumerated(self, path_setup):
        db, flock = path_setup
        opt = FlockOptimizer(db, flock)
        chains = opt.enumerate_chained_plans()
        assert chains
        # A chain has > 2 steps (several levels + final).
        assert any(len(plan) > 2 for plan in chains)

    def test_chain_levels_nest(self, path_setup):
        db, flock = path_setup
        opt = FlockOptimizer(db, flock)
        for plan in opt.enumerate_chained_plans():
            # Every non-final step after the first must reference its
            # predecessor's ok relation.
            names = plan.step_names()
            for i, step in enumerate(plan.prefilter_steps[1:], start=1):
                body_text = str(step.query)
                assert names[i - 1] in body_text

    def test_chained_plans_correct(self, path_setup):
        db, flock = path_setup
        naive = evaluate_flock(db, flock)
        opt = FlockOptimizer(db, flock)
        for plan in opt.enumerate_chained_plans():
            assert execute_plan(db, flock, plan).relation == naive

    def test_best_plan_with_chains_correct(self, path_setup):
        db, flock = path_setup
        naive = evaluate_flock(db, flock)
        best = FlockOptimizer(db, flock).best_plan(include_chains=True)
        assert execute_plan(db, flock, best.plan).relation == naive

    def test_chain_search_never_worse_estimated(self, path_setup):
        db, flock = path_setup
        opt = FlockOptimizer(db, flock)
        without = opt.best_plan(include_chains=False)
        with_chains = opt.best_plan(include_chains=True)
        assert with_chains.estimated_cost <= without.estimated_cost + 1e-9
