"""Tests for the strategy-comparison harness."""

import pytest

from repro.errors import FilterError
from repro.flocks import (
    compare_strategies,
    fig2_flock,
    fig3_flock,
    fig4_flock,
    parse_filter,
    QueryFlock,
)
from repro.workloads import basket_database, generate_medical, generate_webdocs


@pytest.fixture(scope="module")
def db():
    return basket_database(150, 200, skew=1.0, seed=31)


class TestCompareStrategies:
    def test_default_strategies(self, db):
        report = compare_strategies(db, fig2_flock(support=5, ordered=True))
        assert [t.strategy for t in report.timings] == [
            "naive", "optimized", "dynamic",
        ]
        assert report.all_agree

    def test_naive_always_reference(self, db):
        report = compare_strategies(
            db, fig2_flock(support=5, ordered=True), strategies=("dynamic",)
        )
        assert report.timings[0].strategy == "naive"
        assert report.speedup("naive") == pytest.approx(1.0)

    def test_sqlite_strategy(self, db):
        report = compare_strategies(
            db, fig2_flock(support=5, ordered=True), strategies=("sqlite",)
        )
        assert report.all_agree

    def test_union_flock(self):
        web = generate_webdocs(n_documents=80, n_anchors=160, seed=33)
        report = compare_strategies(
            web.db, fig4_flock(support=5), strategies=("optimized", "sqlite")
        )
        assert report.all_agree

    def test_medical_flock_with_stats(self):
        medical = generate_medical(n_patients=250, seed=35)
        report = compare_strategies(
            medical.db, fig3_flock(support=5),
            strategies=("optimized", "stats", "dynamic"),
        )
        assert report.all_agree
        assert len(report.timings) == 4

    def test_render_contains_all_rows(self, db):
        report = compare_strategies(db, fig2_flock(support=5, ordered=True))
        text = report.render()
        for t in report.timings:
            assert t.strategy in text

    def test_fastest(self, db):
        report = compare_strategies(db, fig2_flock(support=5, ordered=True))
        assert report.fastest().seconds == min(
            t.seconds for t in report.timings
        )

    def test_unknown_strategy_rejected(self, db):
        with pytest.raises(FilterError):
            compare_strategies(
                db, fig2_flock(support=5, ordered=True), strategies=("magic",)
            )

    def test_non_monotone_pruning_raises(self, db):
        flock = QueryFlock(
            fig2_flock(support=5, ordered=True).query,
            parse_filter("COUNT(answer.B) = 5"),
        )
        with pytest.raises(FilterError):
            compare_strategies(db, flock, strategies=("dynamic",))
        # ...but comparing naive vs sqlite still works.
        report = compare_strategies(db, flock, strategies=("sqlite",))
        assert report.all_agree

    def test_rounds_best_of(self, db):
        single = compare_strategies(
            db, fig2_flock(support=5, ordered=True), strategies=(), rounds=1
        )
        double = compare_strategies(
            db, fig2_flock(support=5, ordered=True), strategies=(), rounds=2
        )
        assert single.reference == double.reference
