"""Classic a-priori tests and the flock-equivalence claim (Section 4.3)."""

import pytest

from repro.flocks import apriori_itemsets, baskets_as_sets, evaluate_flock, execute_plan, frequent_pairs, itemset_flock, itemset_plan, itemsets_from_flock_result
from repro.relational import Relation
from repro.workloads import generate_baskets


@pytest.fixture
def toy_baskets():
    return Relation(
        "baskets",
        ("BID", "Item"),
        {
            (1, "beer"), (1, "diapers"), (1, "chips"),
            (2, "beer"), (2, "diapers"),
            (3, "beer"), (3, "diapers"), (3, "chips"),
            (4, "beer"), (4, "chips"),
            (5, "soap"),
        },
    )


class TestBasketsAsSets:
    def test_grouping(self, toy_baskets):
        sets = baskets_as_sets(toy_baskets)
        assert sets[1] == frozenset({"beer", "diapers", "chips"})
        assert sets[5] == frozenset({"soap"})


class TestAprioriItemsets:
    def test_level_one(self, toy_baskets):
        levels = apriori_itemsets(toy_baskets, support=2)
        assert levels[1][frozenset({"beer"})] == 4
        assert levels[1][frozenset({"chips"})] == 3
        assert frozenset({"soap"}) not in levels[1]

    def test_level_two(self, toy_baskets):
        levels = apriori_itemsets(toy_baskets, support=2)
        assert levels[2][frozenset({"beer", "diapers"})] == 3
        assert levels[2][frozenset({"beer", "chips"})] == 3
        assert levels[2][frozenset({"diapers", "chips"})] == 2

    def test_level_three(self, toy_baskets):
        levels = apriori_itemsets(toy_baskets, support=2)
        assert levels[3] == {frozenset({"beer", "diapers", "chips"}): 2}

    def test_max_size_stops_early(self, toy_baskets):
        levels = apriori_itemsets(toy_baskets, support=2, max_size=2)
        assert 3 not in levels

    def test_high_support_empty(self, toy_baskets):
        assert apriori_itemsets(toy_baskets, support=10) == {}

    def test_candidate_pruning_respects_downward_closure(self, toy_baskets):
        # Every frequent k-set's (k-1)-subsets must be frequent.
        levels = apriori_itemsets(toy_baskets, support=2)
        from itertools import combinations

        for k in levels:
            if k == 1:
                continue
            for itemset in levels[k]:
                for sub in combinations(itemset, k - 1):
                    assert frozenset(sub) in levels[k - 1]

    def test_frequent_pairs_helper(self, toy_baskets):
        pairs = frequent_pairs(toy_baskets, support=3)
        assert pairs == {
            frozenset({"beer", "diapers"}),
            frozenset({"beer", "chips"}),
        }


class TestItemsetFlock:
    def test_k2_shape(self):
        flock = itemset_flock(2, support=20)
        assert flock.parameter_columns == ("$1", "$2")
        assert len(flock.rules[0].comparisons()) == 1

    def test_k3_shape(self):
        flock = itemset_flock(3, support=5)
        assert flock.parameter_columns == ("$1", "$2", "$3")
        assert len(flock.rules[0].comparisons()) == 2

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            itemset_flock(0, support=5)

    def test_unordered_variant(self):
        flock = itemset_flock(2, support=5, ordered=False)
        assert not flock.rules[0].comparisons()


class TestEquivalence:
    """The headline claim: classic a-priori == flock evaluation == plan."""

    @pytest.mark.parametrize("support", [2, 3, 4])
    def test_pairs_all_three_agree(self, toy_baskets, support):
        from repro.relational import Database

        db = Database([toy_baskets])
        flock = itemset_flock(2, support=support)

        classic = frequent_pairs(toy_baskets, support)
        naive = itemsets_from_flock_result(evaluate_flock(db, flock))
        plan = itemset_plan(flock)
        planned = itemsets_from_flock_result(
            execute_plan(db, flock, plan).relation
        )
        assert classic == naive == planned

    def test_triples_agree(self, toy_baskets):
        from repro.relational import Database

        db = Database([toy_baskets])
        flock = itemset_flock(3, support=2)
        classic = set(apriori_itemsets(toy_baskets, support=2).get(3, {}))
        naive = itemsets_from_flock_result(evaluate_flock(db, flock))
        assert classic == naive

    def test_on_generated_workload(self):
        baskets = generate_baskets(
            n_baskets=200, n_items=50, avg_basket_size=5, skew=1.2, seed=5
        )
        from repro.relational import Database

        db = Database([baskets])
        flock = itemset_flock(2, support=10)
        classic = frequent_pairs(baskets, 10)
        naive = itemsets_from_flock_result(evaluate_flock(db, flock))
        plan = itemset_plan(flock)
        planned = itemsets_from_flock_result(
            execute_plan(db, flock, plan).relation
        )
        assert classic == naive == planned

    def test_plan_has_one_prefilter_per_parameter(self):
        flock = itemset_flock(2, support=20)
        plan = itemset_plan(flock)
        assert len(plan) == 3  # okItem1, okItem2, final
