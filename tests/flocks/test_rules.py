"""Tests for association rules and the Section 1.1 measures."""

import pytest

from repro.flocks import mine_association_rules, rules_for_consequent
from repro.flocks.rules import AssociationRule as RuleClass
from repro.relational import Relation


@pytest.fixture
def baskets():
    """10 baskets: beer in 6, diapers in 5, {beer, diapers} in 4;
    milk in 8 (a near-universal item for the interest discussion)."""
    rows = set()
    contents = {
        1: {"beer", "diapers", "milk"},
        2: {"beer", "diapers", "milk"},
        3: {"beer", "diapers", "milk"},
        4: {"beer", "diapers"},
        5: {"beer", "milk"},
        6: {"beer", "milk"},
        7: {"diapers", "milk"},
        8: {"milk"},
        9: {"milk"},
        10: {"soap"},
    }
    for bid, items in contents.items():
        for item in items:
            rows.add((bid, item))
    return Relation("baskets", ("BID", "Item"), rows)


class TestMeasures:
    def test_support(self, baskets):
        rules = mine_association_rules(baskets, min_support=3)
        beer_diapers = [
            r for r in rules
            if r.antecedent == frozenset({"beer"}) and r.consequent == "diapers"
        ]
        assert len(beer_diapers) == 1
        rule = beer_diapers[0]
        assert rule.support_count == 4
        assert rule.support == pytest.approx(0.4)

    def test_confidence(self, baskets):
        rules = mine_association_rules(baskets, min_support=3)
        rule = next(
            r for r in rules
            if r.antecedent == frozenset({"beer"}) and r.consequent == "diapers"
        )
        # 4 of the 6 beer baskets contain diapers.
        assert rule.confidence == pytest.approx(4 / 6)

    def test_interest_above_one_for_correlated(self, baskets):
        rules = mine_association_rules(baskets, min_support=3)
        rule = next(
            r for r in rules
            if r.antecedent == frozenset({"beer"}) and r.consequent == "diapers"
        )
        # P(diapers) = 0.5; conf = 0.667 -> lift 1.33.
        assert rule.interest == pytest.approx((4 / 6) / 0.5)
        assert rule.interest > 1.0

    def test_interest_near_one_for_universal_item(self, baskets):
        """The paper's point: high confidence for milk means little,
        because 'everybody buys' milk — interest stays near 1."""
        rules = mine_association_rules(baskets, min_support=3)
        to_milk = [r for r in rules if r.consequent == "milk"]
        assert to_milk
        for rule in to_milk:
            assert rule.interest < 1.5

    def test_interesting_filter_drops_independent_rules(self, baskets):
        all_rules = mine_association_rules(baskets, min_support=3)
        interesting = mine_association_rules(
            baskets, min_support=3, min_interest_deviation=0.3
        )
        assert len(interesting) < len(all_rules)
        assert all(abs(r.interest - 1.0) >= 0.3 for r in interesting)

    def test_min_confidence_filter(self, baskets):
        strict = mine_association_rules(baskets, min_support=3, min_confidence=0.8)
        assert all(r.confidence >= 0.8 for r in strict)


class TestShape:
    def test_rules_sorted_by_confidence(self, baskets):
        rules = mine_association_rules(baskets, min_support=3)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_itemset_property(self):
        rule = RuleClass(frozenset({"a"}), "b", 3, 0.3, 0.5, 1.2)
        assert rule.itemset == frozenset({"a", "b"})

    def test_str_contains_measures(self, baskets):
        rules = mine_association_rules(baskets, min_support=3)
        text = str(rules[0])
        assert "supp=" in text and "conf=" in text and "interest=" in text

    def test_multi_item_antecedents(self, baskets):
        rules = mine_association_rules(baskets, min_support=3)
        multi = [r for r in rules if len(r.antecedent) == 2]
        assert multi  # {beer, diapers} -> milk has support 3

    def test_rules_for_consequent(self, baskets):
        rules = mine_association_rules(baskets, min_support=3)
        diaper_rules = rules_for_consequent(rules, "diapers")
        assert diaper_rules
        assert all(r.consequent == "diapers" for r in diaper_rules)

    def test_empty_baskets(self):
        empty = Relation("baskets", ("BID", "Item"))
        assert mine_association_rules(empty, min_support=1) == []

    def test_no_frequent_itemsets(self, baskets):
        assert mine_association_rules(baskets, min_support=99) == []

    def test_max_itemset_size(self, baskets):
        rules = mine_association_rules(baskets, min_support=3, max_itemset_size=2)
        assert all(len(r.itemset) <= 2 for r in rules)
