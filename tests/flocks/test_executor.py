"""Plan-executor tests: every legal plan computes the naive result."""

import pytest

from repro.datalog import Parameter
from repro.datalog.subqueries import (
    SubqueryCandidate,
    union_subqueries_with_parameters,
)
from repro.flocks import FilterStep, QueryFlock, evaluate_flock, execute_plan, execute_step, plan_from_subqueries, single_step_plan, support_filter


def fig5_plan(flock):
    rule = flock.rules[0]
    chosen = [
        ("okS", SubqueryCandidate((0,), rule.with_body_subset([0]))),
        ("okM", SubqueryCandidate((1,), rule.with_body_subset([1]))),
    ]
    return plan_from_subqueries(flock, chosen)


class TestExecuteStep:
    def test_prefilter_step_result(self, small_medical_db, medical_flock):
        rule = medical_flock.rules[0]
        step = FilterStep("okS", (Parameter("s"),), rule.with_body_subset([0]))
        ok, answer_tuples = execute_step(small_medical_db, medical_flock, step)
        assert ok.name == "okS"
        assert ok.columns == ("$s",)
        # Symptoms with >= 2 patients: fever (1,2,4) and rash (1,2,5).
        assert ok.tuples == frozenset({("fever",), ("rash",)})
        assert answer_tuples == 7  # |exhibits|

    def test_step_with_ok_atom(self, small_medical_db, medical_flock):
        plan = fig5_plan(medical_flock)
        scratch = small_medical_db.scratch()
        for step in plan.steps[:-1]:
            ok, _ = execute_step(scratch, medical_flock, step)
            scratch.add(ok)
        final_ok, _ = execute_step(scratch, medical_flock, plan.final_step)
        assert final_ok.project(["$m", "$s"]).tuples == frozenset(
            {("aspirin", "rash")}
        )


class TestExecutePlan:
    def test_single_step_plan_equals_naive(self, small_medical_db, medical_flock):
        naive = evaluate_flock(small_medical_db, medical_flock)
        result = execute_plan(
            small_medical_db, medical_flock, single_step_plan(medical_flock)
        )
        assert result.relation == naive

    def test_fig5_plan_equals_naive(self, small_medical_db, medical_flock):
        naive = evaluate_flock(small_medical_db, medical_flock)
        result = execute_plan(small_medical_db, medical_flock, fig5_plan(medical_flock))
        assert result.relation == naive

    def test_trace_records_every_step(self, small_medical_db, medical_flock):
        result = execute_plan(
            small_medical_db, medical_flock, fig5_plan(medical_flock)
        )
        assert result.trace is not None
        assert [s.name for s in result.trace.steps] == ["okS", "okM", "ok"]
        assert all(s.seconds >= 0 for s in result.trace.steps)

    def test_prefilters_shrink_final_join(self, small_medical_db, medical_flock):
        with_prefilters = execute_plan(
            small_medical_db, medical_flock, fig5_plan(medical_flock)
        )
        plain = execute_plan(
            small_medical_db, medical_flock, single_step_plan(medical_flock)
        )
        final_filtered = with_prefilters.trace.steps[-1].input_tuples
        final_plain = plain.trace.steps[-1].input_tuples
        assert final_filtered <= final_plain

    def test_base_db_not_polluted(self, small_medical_db, medical_flock):
        execute_plan(small_medical_db, medical_flock, fig5_plan(medical_flock))
        assert "okS" not in small_medical_db
        assert "okM" not in small_medical_db

    def test_result_columns_canonical_order(self, small_medical_db, medical_flock):
        result = execute_plan(
            small_medical_db, medical_flock, fig5_plan(medical_flock)
        )
        assert result.relation.columns == ("$m", "$s")

    def test_validate_flag(self, small_medical_db, medical_flock):
        plan = fig5_plan(medical_flock)
        fast = execute_plan(small_medical_db, medical_flock, plan, validate=False)
        slow = execute_plan(small_medical_db, medical_flock, plan, validate=True)
        assert fast.relation == slow.relation

    def test_union_plan_execution(self, small_web_db, web_flock):
        naive = evaluate_flock(small_web_db, web_flock)
        cands = union_subqueries_with_parameters(web_flock.query, [Parameter("1")])
        plan = plan_from_subqueries(web_flock, [("ok1", cands[0])])
        result = execute_plan(small_web_db, web_flock, plan)
        assert result.relation == naive

    def test_flock_result_container_api(self, small_medical_db, medical_flock):
        result = execute_plan(
            small_medical_db, medical_flock, single_step_plan(medical_flock)
        )
        assert len(result) == 1
        assert ("aspirin", "rash") in result
        assert list(result)


class TestPlanCorrectnessAcrossThresholds:
    @pytest.mark.parametrize("threshold", [1, 2, 3, 5])
    def test_baskets_all_thresholds(
        self, small_basket_db, basket_query_ordered, threshold
    ):
        flock = QueryFlock(
            basket_query_ordered, support_filter(threshold, target="B")
        )
        rule = flock.rules[0]
        plan = plan_from_subqueries(
            flock,
            [
                ("ok1", SubqueryCandidate((0,), rule.with_body_subset([0]))),
                ("ok2", SubqueryCandidate((1,), rule.with_body_subset([1]))),
            ],
        )
        naive = evaluate_flock(small_basket_db, flock)
        planned = execute_plan(small_basket_db, flock, plan)
        assert planned.relation == naive
