"""Tests for the canned paper-figure objects."""

import pytest

from repro.flocks import (
    evaluate_flock,
    execute_plan,
    fig2_flock,
    fig3_flock,
    fig4_flock,
    fig5_plan,
    fig6_flock,
    fig6_query,
    fig7_plan,
    fig10_flock,
    validate_plan,
)
from repro.relational import database_from_dict


class TestFigureObjects:
    def test_fig2_shape(self):
        flock = fig2_flock(support=20)
        assert flock.parameter_columns == ("$1", "$2")
        assert str(flock.filter) == "COUNT(answer.B) >= 20"
        assert not flock.rules[0].comparisons()

    def test_fig2_ordered(self):
        assert fig2_flock(ordered=True).rules[0].comparisons()

    def test_fig3_shape(self, medical_query):
        assert fig3_flock().query == medical_query

    def test_fig4_shape(self, web_union_query):
        assert fig4_flock().query == web_union_query

    def test_fig5_plan_is_legal(self):
        flock = fig3_flock()
        plan = fig5_plan(flock)
        validate_plan(flock, plan)
        assert plan.step_names() == ["okS", "okM", "ok"]

    def test_fig6_query_matches_paper_structure(self):
        query = fig6_query(3)
        assert len(query.body) == 4
        assert str(query.body[0]) == "arc($1, X)"
        assert str(query.body[-1]) == "arc(Y2, Y3)"

    def test_fig6_zero_hops(self):
        query = fig6_query(0)
        assert len(query.body) == 1

    def test_fig6_negative_rejected(self):
        with pytest.raises(ValueError):
            fig6_query(-1)

    def test_fig7_plan_is_legal(self):
        flock = fig6_flock(2, support=20)
        plan = fig7_plan(flock)
        validate_plan(flock, plan)
        assert plan.step_names()[:3] == ["ok0", "ok1", "ok2"]

    def test_fig10_monotone(self):
        flock = fig10_flock(20)
        assert flock.filter.is_monotone
        assert str(flock.filter) == "SUM(answer.W) >= 20"


class TestFigureExecution:
    def test_fig5_equals_naive(self, small_medical_db):
        flock = fig3_flock(support=2)
        plan = fig5_plan(flock)
        naive = evaluate_flock(small_medical_db, flock)
        assert execute_plan(small_medical_db, flock, plan).relation == naive

    def test_fig7_equals_naive(self):
        db = database_from_dict(
            {
                "arc": (
                    ("U", "V"),
                    [(0, i) for i in range(1, 5)]
                    + [(i, i + 10) for i in range(1, 5)],
                )
            }
        )
        flock = fig6_flock(1, support=3)
        plan = fig7_plan(flock)
        naive = evaluate_flock(db, flock)
        assert execute_plan(db, flock, plan).relation == naive
