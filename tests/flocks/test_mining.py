"""Tests for the mine() front door and bag-semantics documentation tests."""

import pytest

from repro import mine
from repro.errors import FilterError
from repro.flocks import (
    QueryFlock,
    evaluate_flock,
    parse_filter,
    support_filter,
)
from repro.datalog import atom, comparison, rule


class TestMine:
    @pytest.mark.parametrize(
        "strategy", ["auto", "naive", "optimized", "stats", "dynamic"]
    )
    def test_all_strategies_agree(self, small_basket_db, basket_flock, strategy):
        reference = evaluate_flock(small_basket_db, basket_flock)
        relation, report = mine(small_basket_db, basket_flock, strategy=strategy)
        assert relation == reference
        assert report.strategy_requested == strategy

    def test_auto_uses_dynamic_for_single_rule(self, small_basket_db, basket_flock):
        _, report = mine(small_basket_db, basket_flock)
        assert report.strategy_used == "dynamic"
        assert report.decision_text

    def test_auto_uses_optimized_for_unions(self, small_web_db, web_flock):
        relation, report = mine(small_web_db, web_flock)
        assert report.strategy_used == "optimized"
        assert relation == evaluate_flock(small_web_db, web_flock)

    def test_auto_falls_back_to_naive_for_non_monotone(
        self, small_medical_db, medical_query
    ):
        flock = QueryFlock(medical_query, parse_filter("COUNT(answer.P) = 2"))
        relation, report = mine(small_medical_db, flock)
        assert report.strategy_used == "naive"
        assert relation == evaluate_flock(small_medical_db, flock)

    def test_lint_warnings_in_report(self, small_basket_db):
        q = rule(
            "answer", ["B"],
            [atom("baskets", "B", "$1"), atom("baskets", "B", "$2"),
             comparison("$1", "<", "$2"), comparison("$2", "<", "$1")],
        )
        flock = QueryFlock(q, support_filter(2, target="B"))
        _, report = mine(small_basket_db, flock)
        assert report.warnings
        assert "unsatisfiable" in str(report)

    def test_lint_disabled(self, small_basket_db, basket_flock):
        _, report = mine(small_basket_db, basket_flock, lint=False)
        assert report.warnings == ()

    def test_unknown_strategy_rejected(self, small_basket_db, basket_flock):
        with pytest.raises(FilterError):
            mine(small_basket_db, basket_flock, strategy="magic")

    def test_plan_text_for_optimized(self, small_basket_db, basket_flock):
        _, report = mine(small_basket_db, basket_flock, strategy="optimized")
        assert report.plan_text is not None
        assert "FILTER" in report.plan_text

    def test_report_str_readable(self, small_basket_db, basket_flock):
        _, report = mine(small_basket_db, basket_flock, strategy="optimized")
        text = str(report)
        assert "strategy: optimized" in text
        assert "ms" in text


class TestOptimizerKnobs:
    """The ``join_order=``/``runtime_filters=`` knobs: threading,
    observability, and the pruning counter."""

    @pytest.fixture(scope="class")
    def pruning_db(self):
        from repro.workloads import basket_database

        return basket_database(n_baskets=200, n_items=60, seed=11)

    @pytest.fixture(scope="class")
    def pruning_flock(self):
        q = rule(
            "answer", ["B"],
            [atom("baskets", "B", "$1"), atom("baskets", "B", "$2"),
             comparison("$1", "<", "$2")],
        )
        return QueryFlock(q, parse_filter("COUNT(answer.B) >= 20"))

    def test_unknown_join_order_rejected(self, small_basket_db, basket_flock):
        with pytest.raises(ValueError, match="order strategy"):
            mine(small_basket_db, basket_flock, join_order="magic")

    def test_ues_defaults_runtime_filters_on(
        self, small_basket_db, basket_flock
    ):
        _, report = mine(
            small_basket_db, basket_flock,
            strategy="optimized", join_order="ues",
        )
        assert report.join_order == "ues"
        assert report.runtime_filters is True

    def test_greedy_defaults_runtime_filters_off(
        self, small_basket_db, basket_flock
    ):
        _, report = mine(small_basket_db, basket_flock, strategy="optimized")
        assert report.join_order == "greedy"
        assert report.runtime_filters is False

    def test_explicit_flag_overrides_the_default(
        self, small_basket_db, basket_flock
    ):
        _, report = mine(
            small_basket_db, basket_flock,
            strategy="optimized", join_order="ues", runtime_filters=False,
        )
        assert report.runtime_filters is False
        assert report.runtime_filter_rows_pruned == 0

    def test_runtime_filters_prune_rows(self, pruning_db, pruning_flock):
        """The a-priori pre-filter step's survivors actually restrict
        later scans, and the count is surfaced on the report."""
        baseline, _ = mine(
            pruning_db, pruning_flock,
            strategy="stats", runtime_filters=False, parallelism=1,
        )
        filtered, report = mine(
            pruning_db, pruning_flock,
            strategy="stats", join_order="ues", parallelism=1,
        )
        assert filtered == baseline
        assert report.runtime_filter_rows_pruned > 0

    def test_stage_observations_carry_sound_bounds(
        self, pruning_db, pruning_flock
    ):
        _, report = mine(
            pruning_db, pruning_flock,
            strategy="stats", join_order="ues", parallelism=1,
        )
        assert report.stage_rows
        for obs in report.stage_rows:
            assert obs.actual >= 0
            assert obs.estimated >= 0
            # The UES bound is a certificate: never below the rows the
            # stage actually produced.
            if obs.bound is not None:
                assert obs.bound >= obs.actual

    def test_report_str_mentions_pruning(self, pruning_db, pruning_flock):
        _, report = mine(
            pruning_db, pruning_flock,
            strategy="stats", join_order="ues", parallelism=1,
        )
        text = str(report)
        assert "runtime filters" in text
        assert "pruned" in text


class TestBagSemanticsCaveat:
    """The paper: "we assume that extended CQ's follow the conventional
    set semantics rather than bag semantics ... Some of our claims would
    not hold for bag semantics."  This test documents the counterexample:
    under bags, a subquery can *under*-count relative to the full query,
    so the upper-bound property (the basis of a-priori) fails.
    """

    def test_bag_counts_break_the_upper_bound(self):
        # Database: baskets(B, I) with items i1, i2 in one basket.
        # Full query: answer(B) :- baskets(B,$1) AND baskets(B,$2)
        # with $1=i1, $2=i2 matches once per (row1, row2) combination —
        # under bag semantics the JOIN of the two subgoals yields MORE
        # rows than either single subgoal, so the single-subgoal
        # "bound" |answer_sub| >= |answer_full| fails.
        rows = [("b1", "i1"), ("b1", "i2"), ("b1", "i2")]  # a bag: i2 twice

        def bag_eval_full(rows, item1, item2):
            return [
                (r1[0],)
                for r1 in rows
                for r2 in rows
                if r1[0] == r2[0] and r1[1] == item1 and r2[1] == item2
            ]

        def bag_eval_sub(rows, item1):
            return [(r[0],) for r in rows if r[1] == item1]

        full = bag_eval_full(rows, "i1", "i2")   # 1 x 2 = 2 bag-tuples
        sub = bag_eval_sub(rows, "i1")           # 1 bag-tuple
        # Bag semantics: the "cheaper" subquery count (1) is NOT an
        # upper bound on the full count (2).
        assert len(sub) < len(full)

        # Set semantics (our engine): the bound holds, always.
        from repro.relational import Relation, Database, evaluate_conjunctive
        from repro.datalog import parse_rule

        db = Database([Relation("baskets", ("B", "I"), set(rows))])
        full_q = parse_rule("answer(B) :- baskets(B,'i1') AND baskets(B,'i2')")
        sub_q = parse_rule("answer(B) :- baskets(B,'i1')")
        assert len(evaluate_conjunctive(db, sub_q)) >= len(
            evaluate_conjunctive(db, full_q)
        )
