"""Plan notation and Section 4.2 legality tests, centered on Fig. 5."""

import pytest

from repro.datalog import Parameter, atom
from repro.datalog.subqueries import SubqueryCandidate
from repro.errors import FilterError, PlanError
from repro.flocks import (
    FilterStep,
    QueryFlock,
    QueryPlan,
    chained_plan,
    parse_filter,
    plan_from_subqueries,
    single_step_plan,
    support_filter,
    validate_plan,
)


def fig5_plan(medical_flock):
    """Hand-build the exact Fig. 5 plan: okS, okM, final."""
    medical_rule = medical_flock.rules[0]
    ok_s = FilterStep(
        "okS",
        (Parameter("s"),),
        medical_rule.with_body_subset([0]),  # exhibits(P,$s)
    )
    ok_m = FilterStep(
        "okM",
        (Parameter("m"),),
        medical_rule.with_body_subset([1]),  # treatments(P,$m)
    )
    final = FilterStep(
        "ok",
        (Parameter("m"), Parameter("s")),
        medical_rule.with_extra_subgoals([ok_s.ok_atom, ok_m.ok_atom], prepend=True),
    )
    return QueryPlan((ok_s, ok_m, final))


class TestFilterStep:
    def test_parameters_must_match_query(self, medical_query):
        with pytest.raises(PlanError):
            FilterStep("okS", (Parameter("m"),), medical_query.with_body_subset([0]))

    def test_ok_atom_copies_left_side(self, medical_query):
        step = FilterStep("okS", (Parameter("s"),), medical_query.with_body_subset([0]))
        assert str(step.ok_atom) == "okS($s)"

    def test_render_contains_filter(self, medical_query):
        step = FilterStep("okS", (Parameter("s"),), medical_query.with_body_subset([0]))
        text = step.render("COUNT(answer.P) >= 20")
        assert "okS($s) := FILTER($s," in text
        assert "COUNT(answer.P) >= 20" in text

    def test_empty_name_rejected(self, medical_query):
        with pytest.raises(PlanError):
            FilterStep("", (Parameter("s"),), medical_query.with_body_subset([0]))


class TestValidatePlan:
    def test_fig5_plan_is_legal(self, medical_flock):
        validate_plan(medical_flock, fig5_plan(medical_flock))

    def test_single_step_plan_is_legal(self, medical_flock):
        validate_plan(medical_flock, single_step_plan(medical_flock))

    def test_duplicate_step_names_rejected(self, medical_flock):
        plan = fig5_plan(medical_flock)
        renamed = QueryPlan((plan.steps[0], plan.steps[0], plan.steps[2]))
        with pytest.raises(PlanError):
            validate_plan(medical_flock, renamed)

    def test_step_shadowing_base_relation_rejected(self, medical_flock):
        medical_rule = medical_flock.rules[0]
        bad = FilterStep(
            "exhibits", (Parameter("m"), Parameter("s")), medical_rule
        )
        with pytest.raises(PlanError):
            validate_plan(medical_flock, QueryPlan((bad,)))

    def test_final_step_must_keep_all_subgoals(self, medical_flock):
        medical_rule = medical_flock.rules[0]
        truncated = FilterStep(
            "ok",
            (Parameter("m"), Parameter("s")),
            medical_rule.with_body_subset([0, 1]),
        )
        with pytest.raises(PlanError) as exc:
            validate_plan(medical_flock, QueryPlan((truncated,)))
        assert "deletes original subgoal" in str(exc.value)

    def test_final_step_must_define_all_parameters(self, medical_flock):
        medical_rule = medical_flock.rules[0]
        only_s = FilterStep(
            "okS", (Parameter("s"),), medical_rule.with_body_subset([0])
        )
        with pytest.raises(PlanError):
            validate_plan(medical_flock, QueryPlan((only_s,)))

    def test_unsafe_step_rejected(self, medical_flock):
        medical_rule = medical_flock.rules[0]
        # diagnoses + NOT causes leaves $s unbound: unsafe.
        with pytest.raises(PlanError):
            validate_plan(
                medical_flock,
                QueryPlan(
                    (
                        FilterStep(
                            "bad",
                            (Parameter("s"),),
                            medical_rule.with_body_subset([2, 3]),
                        ),
                        single_step_plan(medical_flock).steps[0],
                    )
                ),
            )

    def test_foreign_subgoal_rejected(self, medical_flock):
        medical_rule = medical_flock.rules[0]
        tweaked = medical_rule.with_extra_subgoals([atom("extra", "P")])
        step = FilterStep("ok", (Parameter("m"), Parameter("s")), tweaked)
        with pytest.raises(PlanError) as exc:
            validate_plan(medical_flock, QueryPlan((step,)))
        assert "neither an original subgoal" in str(exc.value)

    def test_ok_atom_must_be_copied_literally(self, medical_flock):
        medical_rule = medical_flock.rules[0]
        ok_s = FilterStep(
            "okS", (Parameter("s"),), medical_rule.with_body_subset([0])
        )
        # Wrong arguments in the copy: okS($m) instead of okS($s).
        from repro.datalog.atoms import RelationalAtom

        wrong = RelationalAtom("okS", (Parameter("m"),))
        final = FilterStep(
            "ok",
            (Parameter("m"), Parameter("s")),
            medical_rule.with_extra_subgoals([wrong]),
        )
        with pytest.raises(PlanError) as exc:
            validate_plan(medical_flock, QueryPlan((ok_s, final)))
        assert "literally" in str(exc.value)

    def test_negated_ok_atom_rejected(self, medical_flock):
        medical_rule = medical_flock.rules[0]
        ok_s = FilterStep(
            "okS", (Parameter("s"),), medical_rule.with_body_subset([0])
        )
        from repro.datalog.atoms import RelationalAtom

        negated_ok = RelationalAtom("okS", (Parameter("s"),), negated=True)
        final = FilterStep(
            "ok",
            (Parameter("m"), Parameter("s")),
            medical_rule.with_extra_subgoals([negated_ok]),
        )
        with pytest.raises(PlanError):
            validate_plan(medical_flock, QueryPlan((ok_s, final)))

    def test_head_must_stay_unchanged(self, medical_flock):
        medical_rule = medical_flock.rules[0]
        renamed = medical_rule.rename_head("other")
        step = FilterStep("ok", (Parameter("m"), Parameter("s")), renamed)
        with pytest.raises(PlanError):
            validate_plan(medical_flock, QueryPlan((step,)))

    def test_non_monotone_filter_rejected_for_prefilters(self, medical_query):
        non_monotone = parse_filter("COUNT(answer.P) = 5")
        flock = QueryFlock(medical_query, non_monotone)
        plan = fig5_plan(flock)
        with pytest.raises(FilterError):
            validate_plan(flock, plan)

    def test_non_monotone_single_step_allowed(self, medical_query):
        # With no pre-filters there is nothing unsound.
        non_monotone = parse_filter("COUNT(answer.P) = 5")
        flock = QueryFlock(medical_query, non_monotone)
        validate_plan(flock, single_step_plan(flock))


class TestPlanBuilders:
    def test_plan_from_subqueries_matches_fig5_shape(self, medical_flock):
        medical_rule = medical_flock.rules[0]
        chosen = [
            ("okS", SubqueryCandidate((0,), medical_rule.with_body_subset([0]))),
            ("okM", SubqueryCandidate((1,), medical_rule.with_body_subset([1]))),
        ]
        plan = plan_from_subqueries(medical_flock, chosen)
        assert plan.step_names() == ["okS", "okM", "ok"]
        final_body = plan.final_step.query.body
        assert str(final_body[-2]) == "okS($s)"
        assert str(final_body[-1]) == "okM($m)"

    def test_render_matches_paper_form(self, medical_flock):
        plan = fig5_plan(medical_flock)
        text = plan.render(medical_flock)
        assert "okS($s) := FILTER($s," in text
        assert "okM($m) := FILTER($m," in text
        assert "COUNT(answer.P) >= 2" in text

    def test_chained_plan_path_query(self, path_query_3):
        flock = QueryFlock(path_query_3, support_filter(2, target="X"))
        chain = []
        for level in range(1, len(path_query_3.body) + 1):
            indices = list(range(level))
            chain.append(
                (
                    f"ok{level - 1}",
                    SubqueryCandidate(
                        tuple(indices), path_query_3.with_body_subset(indices)
                    ),
                )
            )
        plan = chained_plan(flock, chain)
        # n+1 chain steps... plus the final: Fig. 7 has n+1 = 4 okN
        # steps for n=3; our chain covers levels 1..4 and a final step.
        assert len(plan) == len(chain) + 1
        # Each chained step after the first references its predecessor.
        second = plan.steps[1]
        assert any("ok0" in str(sg) for sg in second.query.body)

    def test_chained_plan_rejects_unions(self, web_flock):
        with pytest.raises(PlanError):
            chained_plan(web_flock, [])

    def test_union_plan_from_subqueries(self, web_flock):
        from repro.datalog.subqueries import union_subqueries_with_parameters

        cands = union_subqueries_with_parameters(
            web_flock.query, [Parameter("1")]
        )
        plan = plan_from_subqueries(web_flock, [("ok1", cands[0])])
        validate_plan(web_flock, plan)
        assert plan.step_names() == ["ok1", "ok"]
