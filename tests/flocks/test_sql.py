"""SQL-translation tests (Fig. 1, Section 1.3)."""

import sqlite3


from repro.datalog.subqueries import SubqueryCandidate
from repro.flocks import evaluate_flock, fig1_sql, flock_to_sql, itemset_flock, itemset_plan, parse_flock, plan_to_sql, plan_from_subqueries


def _run_sqlite(db, script_or_query: str) -> set[tuple]:
    """Load our relations into SQLite and run the generated SQL —
    the generated text must be *real* SQL, not just pretty-printing."""
    conn = sqlite3.connect(":memory:")
    for name in db.names():
        rel = db.get(name)
        cols = ", ".join(rel.columns)
        conn.execute(f"CREATE TABLE {name} ({cols})")
        placeholders = ", ".join("?" for _ in rel.columns)
        conn.executemany(
            f"INSERT INTO {name} VALUES ({placeholders})", sorted(rel.tuples, key=repr)
        )
    statements = [s.strip() for s in script_or_query.split(";") if s.strip()]
    rows: set[tuple] = set()
    for i, statement in enumerate(statements):
        cursor = conn.execute(statement)
        if i == len(statements) - 1:
            rows = {tuple(r) for r in cursor.fetchall()}
    conn.close()
    return rows


class TestFlockToSql:
    def test_contains_group_by_having(self, basket_flock, small_basket_db):
        sql = flock_to_sql(basket_flock, small_basket_db)
        assert "GROUP BY" in sql
        assert "HAVING" in sql
        assert "COUNT(DISTINCT" in sql

    def test_sqlite_agrees_with_engine(self, basket_flock, small_basket_db):
        sql = flock_to_sql(basket_flock, small_basket_db)
        sqlite_rows = _run_sqlite(small_basket_db, sql)
        ours = evaluate_flock(small_basket_db, basket_flock)
        assert sqlite_rows == set(ours.tuples)

    def test_medical_with_negation_on_sqlite(
        self, medical_flock, small_medical_db
    ):
        sql = flock_to_sql(medical_flock, small_medical_db)
        assert "NOT EXISTS" in sql
        sqlite_rows = _run_sqlite(small_medical_db, sql)
        ours = evaluate_flock(small_medical_db, medical_flock)
        assert sqlite_rows == set(ours.tuples)

    def test_union_flock_sql(self, web_flock, small_web_db):
        sql = flock_to_sql(web_flock, small_web_db)
        assert "UNION" in sql
        # sqlite can't COUNT(DISTINCT a, b) over multiple columns, but
        # the Fig. 4 union has single-column heads so it runs.
        sqlite_rows = _run_sqlite(small_web_db, sql)
        ours = evaluate_flock(small_web_db, web_flock)
        assert sqlite_rows == set(ours.tuples)

    def test_weighted_sum_sql(self, small_basket_db):
        from repro.relational import database_from_dict

        db = database_from_dict(
            {
                "baskets": (
                    ("BID", "Item"),
                    [(1, "a"), (1, "b"), (2, "a"), (2, "b"), (3, "a")],
                ),
                "importance": (("BID", "W"), [(1, 10), (2, 15), (3, 1)]),
            }
        )
        flock = parse_flock(
            """
            QUERY:
            answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND
                           importance(B,W) AND $1 < $2
            FILTER:
            SUM(answer.W) >= 20
            """
        )
        sql = flock_to_sql(flock, db)
        sqlite_rows = _run_sqlite(db, sql)
        ours = evaluate_flock(db, flock)
        assert sqlite_rows == set(ours.tuples)


class TestPlanToSql:
    def test_tables_created_per_prefilter(self, small_basket_db):
        flock = itemset_flock(2, support=2)
        plan = itemset_plan(flock)
        sql = plan_to_sql(flock, plan, small_basket_db)
        assert sql.count("CREATE TABLE") == 2

    def test_plan_sql_agrees_with_engine(self, small_basket_db):
        flock = itemset_flock(2, support=2)
        plan = itemset_plan(flock)
        sql = plan_to_sql(flock, plan, small_basket_db)
        sqlite_rows = _run_sqlite(small_basket_db, sql)
        ours = evaluate_flock(small_basket_db, flock)
        assert sqlite_rows == set(ours.tuples)

    def test_medical_plan_sql(self, medical_flock, small_medical_db):
        rule = medical_flock.rules[0]
        plan = plan_from_subqueries(
            medical_flock,
            [
                ("okS", SubqueryCandidate((0,), rule.with_body_subset([0]))),
                ("okM", SubqueryCandidate((1,), rule.with_body_subset([1]))),
            ],
        )
        sql = plan_to_sql(medical_flock, plan, small_medical_db)
        sqlite_rows = _run_sqlite(small_medical_db, sql)
        ours = evaluate_flock(small_medical_db, medical_flock)
        assert sqlite_rows == set(ours.tuples)


class TestFig1:
    def test_literal_text(self):
        sql = fig1_sql()
        assert "FROM baskets i1, baskets i2" in sql
        assert "HAVING 20 <= COUNT(i1.BID)" in sql

    def test_fig1_runs_on_sqlite(self, small_basket_db):
        # Lower the threshold to the test scale, then compare with the
        # flock evaluation of the same query.
        sql = fig1_sql().replace("20 <=", "2 <=")
        sqlite_rows = _run_sqlite(small_basket_db, sql)
        flock = itemset_flock(2, support=2)
        ours = evaluate_flock(small_basket_db, flock)
        assert sqlite_rows == set(ours.tuples)
