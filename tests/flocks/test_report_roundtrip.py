"""MiningReport wire format: to_json/from_json round-trips exactly.

The serve layer ships reports over HTTP, so every field a client can
see must survive serialization.  Certificates are the documented
exception — they hold in-process query/plan objects — and come back as
``certificate=None`` with no decision certificates.
"""

import dataclasses
import json

import pytest

from repro import database_from_dict, mine, parse_flock
from repro.flocks.mining import Downgrade, MiningReport

FLOCK_TEXT = """
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2

FILTER:
COUNT(answer.B) >= 3
"""


@pytest.fixture()
def db():
    return database_from_dict({
        "baskets": (
            ["BID", "item"],
            [
                (basket, f"i{item}")
                for basket in range(20)
                for item in range(5)
                if (basket + item) % 3
            ],
        ),
    })


def strip_certificates(report: MiningReport) -> MiningReport:
    """What a deserialized report is documented to look like."""
    return dataclasses.replace(
        report, certificate=None, decision_certificates=()
    )


class TestRoundTrip:
    def test_real_report_round_trips(self, db):
        _, report = mine(db, parse_flock(FLOCK_TEXT))
        restored = MiningReport.from_json(report.to_json())
        assert restored == strip_certificates(report)

    def test_report_with_warnings_round_trips(self, db):
        # A cross product draws a lint warning with a rule index.
        noisy = parse_flock(
            """
            QUERY:
            answer(B) :- baskets(B,$1) AND baskets(C,$2)

            FILTER:
            COUNT(answer.B) >= 2
            """
        )
        _, report = mine(db, noisy)
        assert report.warnings  # the scenario depends on it
        restored = MiningReport.from_json(report.to_json())
        assert restored.warnings == report.warnings
        assert restored == strip_certificates(report)

    def test_report_with_downgrades_round_trips(self):
        synthetic = MiningReport(
            strategy_requested="optimized",
            strategy_used="naive",
            seconds=1.25,
            warnings=(),
            downgrades=(
                Downgrade(
                    kind="strategy",
                    from_name="optimized",
                    to_name="naive",
                    reason="planner exploded",
                ),
            ),
            cache_hits=2,
            rows_saved=17,
            run_id="abc123",
            steps_resumed=1,
            steps_checkpointed=3,
        )
        restored = MiningReport.from_json(synthetic.to_json())
        assert restored == synthetic
        assert restored.degraded

    def test_json_is_plain_data(self, db):
        _, report = mine(db, parse_flock(FLOCK_TEXT))
        payload = json.loads(report.to_json())
        assert isinstance(payload, dict)
        assert payload["strategy_used"] == report.strategy_used
        # Nothing exotic leaked into the wire format.
        json.dumps(payload)

    def test_double_round_trip_is_stable(self, db):
        _, report = mine(db, parse_flock(FLOCK_TEXT))
        once = MiningReport.from_json(report.to_json())
        twice = MiningReport.from_json(once.to_json())
        assert once == twice

    def test_stage_observations_round_trip(self):
        from repro.engine.ir import StageObservation

        synthetic = MiningReport(
            strategy_requested="optimized",
            strategy_used="optimized",
            seconds=0.5,
            warnings=(),
            join_order="ues",
            runtime_filters=True,
            runtime_filter_rows_pruned=594,
            stage_rows=(
                StageObservation(
                    node="join:baskets", estimated=120.5, bound=240.0,
                    actual=96,
                ),
                # A stage without a computed bound survives as None.
                StageObservation(
                    node="join:ok0", estimated=14.0, bound=None, actual=14
                ),
            ),
        )
        restored = MiningReport.from_json(synthetic.to_json())
        assert restored == synthetic
        assert restored.stage_rows[1].bound is None

    def test_real_ues_run_round_trips_observability(self, db):
        _, report = mine(
            db, parse_flock(FLOCK_TEXT),
            strategy="optimized", join_order="ues",
        )
        assert report.runtime_filters is True
        assert report.stage_rows
        restored = MiningReport.from_json(report.to_json())
        assert restored.stage_rows == report.stage_rows
        assert restored.join_order == "ues"
        assert (
            restored.runtime_filter_rows_pruned
            == report.runtime_filter_rows_pruned
        )

    def test_certificates_documented_as_dropped(self, db):
        _, report = mine(db, parse_flock(FLOCK_TEXT), strategy="optimized")
        assert report.certificate is not None  # verification is on
        restored = MiningReport.from_json(report.to_json())
        assert restored.certificate is None
        assert restored.decision_certificates == ()
