"""Tests for the flock linter."""


from repro.analysis import Severity
from repro.datalog import atom, comparison, rule, UnionQuery
from repro.flocks import (
    LintCode,
    QueryFlock,
    lint_flock,
    parse_filter,
    parse_flock,
    support_filter,
)


def codes(flock):
    return {w.code for w in lint_flock(flock)}


class TestCleanFlocks:
    def test_fig2_is_clean(self, basket_flock):
        assert lint_flock(basket_flock) == []

    def test_fig3_is_clean(self, medical_flock):
        # The negated subgoal makes the redundancy check inapplicable;
        # the linter says so explicitly at info severity instead of
        # staying silent.  No actual warnings.
        warnings = lint_flock(medical_flock)
        assert [w for w in warnings if w.severity is not Severity.INFO] == []
        skips = [
            w for w in warnings
            if w.code is LintCode.REDUNDANCY_CHECK_SKIPPED
        ]
        assert len(skips) == 1
        assert skips[0].severity is Severity.INFO
        assert "negation" in skips[0].message

    def test_fig4_union_is_clean(self, web_flock):
        assert lint_flock(web_flock) == []


class TestUnsatisfiableComparisons:
    def test_contradictory_tie_breaks(self):
        flock = parse_flock(
            """
            QUERY:
            answer(B) :- baskets(B,$1) AND baskets(B,$2) AND
                         $1 < $2 AND $2 < $1
            FILTER:
            COUNT(answer.B) >= 2
            """
        )
        assert LintCode.UNSATISFIABLE_COMPARISONS in codes(flock)

    def test_constant_contradiction(self):
        flock = parse_flock(
            """
            QUERY:
            answer(X) :- scores(X,N) AND N < 3 AND N > 7
            FILTER:
            COUNT(answer.X) >= 2
            """
        )
        assert LintCode.UNSATISFIABLE_COMPARISONS in codes(flock)


class TestCartesianProduct:
    def test_disconnected_atoms_flagged(self):
        q = rule(
            "answer", ["X"],
            [atom("r", "X", "$1"), atom("s", "Y", "$2")],
        )
        flock = QueryFlock(q, support_filter(2, target="X"))
        assert LintCode.CARTESIAN_PRODUCT in codes(flock)

    def test_comparison_connects_components(self):
        q = rule(
            "answer", ["X"],
            [atom("r", "X", "$1"), atom("s", "Y", "$2"),
             comparison("$1", "<", "$2")],
        )
        flock = QueryFlock(q, support_filter(2, target="X"))
        assert LintCode.CARTESIAN_PRODUCT not in codes(flock)


class TestUnconstrainedParameter:
    def test_isolated_parameter_subgoal_flagged(self):
        q = rule(
            "answer", ["X"],
            [atom("r", "X", "Y"), atom("s", "Z", "$p")],
        )
        flock = QueryFlock(q, support_filter(2, target="X"))
        warnings = [
            w for w in lint_flock(flock)
            if w.code is LintCode.UNCONSTRAINED_PARAMETER
        ]
        assert len(warnings) == 1
        assert "$p" in warnings[0].message

    def test_parameter_alone_with_no_variables_flagged(self):
        q = rule(
            "answer", ["X"],
            [atom("r", "X"), atom("flag", "$p")],
        )
        flock = QueryFlock(q, support_filter(2, target="X"))
        assert LintCode.UNCONSTRAINED_PARAMETER in codes(flock)

    def test_medical_style_single_occurrence_is_clean(self, medical_flock):
        # $m occurs once (treatments(P,$m)) but P links it to the body:
        # exactly the Fig. 3 shape, which must NOT be flagged.
        assert LintCode.UNCONSTRAINED_PARAMETER not in codes(medical_flock)

    def test_basket_parameters_not_flagged(self, basket_flock):
        assert LintCode.UNCONSTRAINED_PARAMETER not in codes(basket_flock)


class TestDuplicateSubgoal:
    def test_duplicate_flagged(self):
        q = rule(
            "answer", ["B"],
            [atom("r", "B", "$1"), atom("r", "B", "$1"),
             atom("r", "B", "$2")],
        )
        flock = QueryFlock(q, support_filter(2, target="B"))
        assert LintCode.DUPLICATE_SUBGOAL in codes(flock)


class TestRedundantSubgoal:
    def test_cm_redundancy_flagged(self):
        q = rule(
            "answer", ["X"],
            [atom("r", "X", "$1"), atom("r", "X", "Z")],
        )
        flock = QueryFlock(q, support_filter(2, target="X"))
        found = codes(flock)
        assert LintCode.REDUNDANT_SUBGOAL in found

    def test_extended_redundancy_flagged(self):
        # $1 < $2 entails $1 <= $2: Klug's test flags the <= subgoal.
        q = rule(
            "answer", ["X"],
            [atom("p", "X", "$1"), atom("p", "X", "$2"),
             comparison("$1", "<=", "$2"), comparison("$1", "<", "$2")],
        )
        flock = QueryFlock(q, support_filter(2, target="X"))
        warnings = [
            w for w in lint_flock(flock)
            if w.code is LintCode.REDUNDANT_SUBGOAL
        ]
        assert warnings
        assert "<=" in warnings[0].message

    def test_arithmetic_without_redundancy_is_clean(self, basket_flock):
        # Fig. 2's tie-break is NOT redundant and must not be flagged.
        assert LintCode.REDUNDANT_SUBGOAL not in codes(basket_flock)

    def test_negated_rules_skip_redundancy_check(self, medical_flock):
        # Negation present: no sound containment test applies, no crash.
        assert LintCode.REDUNDANT_SUBGOAL not in codes(medical_flock)


class TestNonMonotoneFilter:
    def test_flagged(self, medical_query):
        flock = QueryFlock(medical_query, parse_filter("COUNT(answer.P) = 5"))
        assert LintCode.NON_MONOTONE_FILTER in codes(flock)


class TestUnionRuleIndices:
    def test_rule_index_reported(self):
        r1 = rule("answer", ["B"], [atom("r", "B", "$1"), atom("r", "B", "$2")])
        r2 = rule(
            "answer", ["B"],
            [atom("r", "B", "$1"), atom("r", "B", "$2"),
             comparison("$1", "<", "$2"), comparison("$2", "<", "$1")],
        )
        flock = QueryFlock(UnionQuery((r1, r2)), support_filter(2))
        warnings = [
            w for w in lint_flock(flock)
            if w.code is LintCode.UNSATISFIABLE_COMPARISONS
        ]
        assert warnings[0].rule_index == 1
        assert "rule 2" in str(warnings[0])
