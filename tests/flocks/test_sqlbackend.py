"""DBMS-backend tests: SQLite evaluation must agree with the engine
for every canonical flock (the Section 1.4 setting)."""

import pytest

from repro.errors import EvaluationError
from repro.flocks import (
    SQLiteBackend,
    evaluate_flock,
    evaluate_flock_sqlite,
    execute_plan_sqlite,
    fig2_flock,
    fig3_flock,
    fig4_flock,
    fig5_plan,
    itemset_flock,
    itemset_plan,
    parse_flock,
)
from repro.relational import database_from_dict
from repro.workloads import basket_database


class TestAgreementWithEngine:
    def test_basket_flock(self, small_basket_db):
        flock = fig2_flock(support=2, ordered=True)
        ours = evaluate_flock(small_basket_db, flock)
        sqlite_result = evaluate_flock_sqlite(small_basket_db, flock)
        assert sqlite_result == ours

    def test_medical_flock_with_negation(self, small_medical_db):
        flock = fig3_flock(support=2)
        ours = evaluate_flock(small_medical_db, flock)
        assert evaluate_flock_sqlite(small_medical_db, flock) == ours

    def test_union_flock(self, small_web_db):
        flock = fig4_flock(support=2)
        ours = evaluate_flock(small_web_db, flock)
        assert evaluate_flock_sqlite(small_web_db, flock) == ours

    def test_weighted_sum_flock(self):
        db = database_from_dict(
            {
                "baskets": (
                    ("BID", "Item"),
                    [(1, "a"), (1, "b"), (2, "a"), (2, "b"), (3, "a")],
                ),
                "importance": (("BID", "W"), [(1, 10), (2, 15), (3, 1)]),
            }
        )
        flock = parse_flock(
            """
            QUERY:
            answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND
                           importance(B,W) AND $1 < $2
            FILTER:
            SUM(answer.W) >= 20
            """
        )
        assert evaluate_flock_sqlite(db, flock) == evaluate_flock(db, flock)

    def test_on_generated_workloads(self):
        db = basket_database(200, 120, skew=1.2, seed=71)
        flock = itemset_flock(2, support=8)
        assert evaluate_flock_sqlite(db, flock) == evaluate_flock(db, flock)


class TestPlanExecution:
    def test_rewrite_script_agrees(self, small_basket_db):
        flock = itemset_flock(2, support=2)
        plan = itemset_plan(flock)
        ours = evaluate_flock(small_basket_db, flock)
        assert execute_plan_sqlite(small_basket_db, flock, plan) == ours

    def test_medical_plan(self, small_medical_db):
        flock = fig3_flock(support=2)
        plan = fig5_plan(flock)
        ours = evaluate_flock(small_medical_db, flock)
        assert execute_plan_sqlite(small_medical_db, flock, plan) == ours

    def test_backend_reusable_after_plan(self, small_basket_db):
        flock = itemset_flock(2, support=2)
        plan = itemset_plan(flock)
        with SQLiteBackend(small_basket_db) as backend:
            first = backend.execute_plan(flock, plan)
            # Step tables were dropped: a second run must not collide.
            second = backend.execute_plan(flock, plan)
            naive = backend.evaluate_flock(flock)
        assert first == second == naive


class TestLifecycle:
    def test_requires_loaded_database(self):
        backend = SQLiteBackend()
        flock = fig2_flock(support=2)
        with pytest.raises(EvaluationError):
            backend.evaluate_flock(flock)
        backend.close()

    def test_reload_replaces_tables(self, small_basket_db):
        flock = fig2_flock(support=2, ordered=True)
        backend = SQLiteBackend(small_basket_db)
        first = backend.evaluate_flock(flock)
        smaller = database_from_dict(
            {"baskets": (("BID", "Item"), [(1, "x"), (1, "y")])}
        )
        backend.load(smaller)
        second = backend.evaluate_flock(fig2_flock(support=1, ordered=True))
        backend.close()
        assert second.tuples == frozenset({("x", "y")})
        assert first != second

    def test_context_manager_closes(self, small_basket_db):
        with SQLiteBackend(small_basket_db) as backend:
            pass
        import sqlite3

        with pytest.raises(sqlite3.ProgrammingError):
            backend.connection.execute("SELECT 1")
