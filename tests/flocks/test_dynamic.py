"""Dynamic-evaluation tests (Section 4.4)."""

import pytest

from repro.errors import FilterError, PlanError
from repro.flocks import (
    DynamicEvaluator,
    QueryFlock,
    evaluate_flock,
    evaluate_flock_dynamic,
    parse_filter,
    support_filter,
)
from repro.workloads import generate_medical


class TestCorrectness:
    def test_matches_naive_on_baskets(self, small_basket_db, basket_flock):
        naive = evaluate_flock(small_basket_db, basket_flock)
        result, _trace = evaluate_flock_dynamic(small_basket_db, basket_flock)
        assert result.relation == naive

    def test_matches_naive_on_medical(self, small_medical_db, medical_flock):
        naive = evaluate_flock(small_medical_db, medical_flock)
        result, _trace = evaluate_flock_dynamic(small_medical_db, medical_flock)
        assert result.relation == naive

    @pytest.mark.parametrize("decision_factor", [0.0, 0.5, 1.0, 5.0, 100.0])
    def test_any_decision_factor_is_sound(
        self, small_medical_db, medical_flock, decision_factor
    ):
        """Filtering decisions affect speed, never the answer."""
        naive = evaluate_flock(small_medical_db, medical_flock)
        result, _ = evaluate_flock_dynamic(
            small_medical_db, medical_flock, decision_factor=decision_factor
        )
        assert result.relation == naive

    def test_explicit_join_orders_are_sound(self, small_medical_db, medical_flock):
        naive = evaluate_flock(small_medical_db, medical_flock)
        for order in ([0, 1, 2], [1, 0, 2], [2, 1, 0]):
            result, _ = evaluate_flock_dynamic(
                small_medical_db, medical_flock, join_order=order
            )
            assert result.relation == naive

    def test_on_generated_workload(self):
        workload = generate_medical(n_patients=300, seed=3)
        from repro.datalog import atom, negated, rule

        query = rule(
            "answer",
            ["P"],
            [
                atom("exhibits", "P", "$s"),
                atom("treatments", "P", "$m"),
                atom("diagnoses", "P", "D"),
                negated("causes", "D", "$s"),
            ],
        )
        flock = QueryFlock(query, support_filter(8, target="P"))
        naive = evaluate_flock(workload.db, flock)
        result, trace = evaluate_flock_dynamic(workload.db, flock)
        assert result.relation == naive
        assert trace.decisions  # decisions were recorded


class TestDecisions:
    def test_root_always_filtered(self, small_medical_db, medical_flock):
        _, trace = evaluate_flock_dynamic(small_medical_db, medical_flock)
        assert trace.decisions[-1].node == "root"
        assert trace.decisions[-1].filtered

    def test_high_factor_filters_aggressively(
        self, small_medical_db, medical_flock
    ):
        _, eager = evaluate_flock_dynamic(
            small_medical_db, medical_flock, decision_factor=1000.0
        )
        _, lazy = evaluate_flock_dynamic(
            small_medical_db, medical_flock, decision_factor=0.0
        )
        assert eager.filters_applied() >= lazy.filters_applied()

    def test_lazy_factor_only_filters_root(self, small_medical_db, medical_flock):
        _, trace = evaluate_flock_dynamic(
            small_medical_db,
            medical_flock,
            decision_factor=0.0,
            improvement_factor=0.0,
        )
        assert trace.filters_applied() == 1  # just the root

    def test_plan_lines_rendered(self, small_medical_db, medical_flock):
        _, trace = evaluate_flock_dynamic(
            small_medical_db, medical_flock, decision_factor=1000.0
        )
        text = trace.render_plan()
        assert "FILTER" in text
        assert "flock($m, $s)" in text

    def test_decision_str_readable(self, small_medical_db, medical_flock):
        _, trace = evaluate_flock_dynamic(small_medical_db, medical_flock)
        for decision in trace.decisions:
            line = str(decision)
            assert "ratio=" in line

    def test_ratio_computation(self, small_medical_db, medical_flock):
        # exhibits has 7 tuples over 3 distinct symptoms (fever, rash,
        # cough) -> ratio 7/3 at the $s leaf.
        _, trace = evaluate_flock_dynamic(
            small_medical_db, medical_flock, decision_factor=1.0
        )
        leaf_decisions = [
            d for d in trace.decisions if d.parameter_columns == ("$s",)
        ]
        assert leaf_decisions
        assert leaf_decisions[0].tuples_per_assignment == pytest.approx(7 / 3)


class TestValidation:
    def test_union_rejected(self, small_web_db, web_flock):
        with pytest.raises(PlanError):
            DynamicEvaluator(small_web_db, web_flock)

    def test_non_monotone_rejected(self, small_medical_db, medical_query):
        flock = QueryFlock(medical_query, parse_filter("COUNT(answer.P) = 3"))
        with pytest.raises(FilterError):
            DynamicEvaluator(small_medical_db, flock)
