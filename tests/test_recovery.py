"""The recovery layer: retry policy/supervisor and checkpoint–resume.

Covers the first rung of the escalation ladder (transient-fault retry
with guard-clamped backoff), the durable-run machinery (manifests,
step survivor sets, resume validation), and the mine()-level
kill-and-resume contract: a resumed run re-executes only the steps the
killed run did not finish and returns a bit-identical answer.
"""

import sqlite3
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro import (
    BudgetExceededError,
    ExecutionCancelled,
    ResourceBudget,
    ResumeError,
    RetryPolicy,
    RetrySupervisor,
    TransientFault,
    mine,
)
from repro.errors import EvaluationError, PlanError
from repro.flocks import execute_plan, optimize
from repro.recovery import (
    CheckpointStore,
    RunManifest,
    flock_key,
    plan_fingerprint,
)
from repro.testing import faults


# ----------------------------------------------------------------------
# RetryPolicy: classification and backoff
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_classifies_marked_transients(self):
        policy = RetryPolicy()
        assert policy.classify(TransientFault("blip")) == "transient"
        assert policy.classify(faults.WorkerKill()) == "transient"
        assert policy.classify(BrokenProcessPool("pool died")) == "transient"
        assert (
            policy.classify(sqlite3.OperationalError("database is locked"))
            == "transient"
        )
        assert (
            policy.classify(sqlite3.OperationalError("database is busy"))
            == "transient"
        )

    def test_classifies_fatal(self):
        policy = RetryPolicy()
        assert policy.classify(PlanError("illegal")) == "fatal"
        assert policy.classify(EvaluationError("bad sql")) == "fatal"
        assert (
            policy.classify(sqlite3.OperationalError("no such table: x"))
            == "fatal"
        )
        assert policy.classify(RuntimeError("boom")) == "fatal"

    def test_guard_aborts_are_always_fatal(self):
        """A budget or cancellation is a user decision, not a fault —
        retrying would turn a hard limit into a soft one."""
        policy = RetryPolicy()
        assert policy.classify(BudgetExceededError("over")) == "fatal"
        assert policy.classify(ExecutionCancelled("stop")) == "fatal"

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(base_delay=0.05, max_delay=0.25, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.05)
        assert policy.delay(2) == pytest.approx(0.10)
        assert policy.delay(3) == pytest.approx(0.20)
        assert policy.delay(4) == pytest.approx(0.25)  # capped
        assert policy.delay(10) == pytest.approx(0.25)

    def test_jitter_is_seeded(self):
        import random

        policy = RetryPolicy(jitter=0.5)
        a = [policy.delay(i, random.Random(7)) for i in range(1, 4)]
        b = [policy.delay(i, random.Random(7)) for i in range(1, 4)]
        assert a == b
        assert all(d >= 0 for d in a)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


# ----------------------------------------------------------------------
# RetrySupervisor: the live loop
# ----------------------------------------------------------------------


class TestRetrySupervisor:
    def test_recovers_from_transients(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientFault("blip")
            return "done"

        supervisor = RetrySupervisor(
            RetryPolicy(max_attempts=3), sleep=lambda _s: None
        )
        assert supervisor.run(flaky, site="unit") == "done"
        assert len(calls) == 3
        [event] = supervisor.events
        assert event.recovered and event.attempts == 3
        assert event.site == "unit"

    def test_exhaustion_raises_last_error(self):
        supervisor = RetrySupervisor(
            RetryPolicy(max_attempts=2), sleep=lambda _s: None
        )

        def always():
            raise TransientFault("still down")

        with pytest.raises(TransientFault):
            supervisor.run(always, site="unit")
        [event] = supervisor.events
        assert not event.recovered
        assert event.attempts == 2
        assert "still down" in event.error

    def test_fatal_errors_never_retry(self):
        calls = []
        supervisor = RetrySupervisor(sleep=lambda _s: None)

        def fatal():
            calls.append(1)
            raise PlanError("illegal plan")

        with pytest.raises(PlanError):
            supervisor.run(fatal)
        assert len(calls) == 1
        assert supervisor.events == []  # nothing retried, nothing logged

    def test_guard_abort_never_retries(self):
        calls = []
        supervisor = RetrySupervisor(sleep=lambda _s: None)

        def aborted():
            calls.append(1)
            raise BudgetExceededError("budget gone")

        with pytest.raises(BudgetExceededError):
            supervisor.run(aborted)
        assert len(calls) == 1

    def test_backoff_clamped_to_guard_deadline(self):
        """A retry sleep must end at or before the guard deadline —
        never sleep past the budget the retry is trying to save."""
        guard = ResourceBudget(seconds=0.5).start()
        supervisor = RetrySupervisor(
            RetryPolicy(max_attempts=5, base_delay=10.0, jitter=0.0),
            guard=guard,
            sleep=lambda _s: None,
        )
        supervisor.backoff(1, site="unit")
        assert supervisor.slept[0] <= 0.5

    def test_backoff_aborts_when_deadline_already_passed(self):
        guard = ResourceBudget(seconds=0.0).start()
        supervisor = RetrySupervisor(guard=guard, sleep=lambda _s: None)
        with pytest.raises(BudgetExceededError):
            supervisor.backoff(1, site="unit")

    def test_seeded_jitter_replays(self):
        sleeps_a, sleeps_b = [], []
        for sink in (sleeps_a, sleeps_b):
            supervisor = RetrySupervisor(
                RetryPolicy(max_attempts=4, jitter=0.5, seed=99),
                sleep=sink.append,
            )
            with pytest.raises(TransientFault):
                supervisor.run(lambda: (_ for _ in ()).throw(
                    TransientFault("x")
                ))
        assert sleeps_a == sleeps_b


# ----------------------------------------------------------------------
# The retry rung inside mine()
# ----------------------------------------------------------------------


@pytest.mark.faults
class TestMineRetry:
    def test_transient_step_fault_recovers(self, small_basket_db, basket_flock):
        baseline, _ = mine(small_basket_db, basket_flock, strategy="optimized")
        with faults.inject("executor.step", TransientFault, times=1):
            relation, report = mine(
                small_basket_db, basket_flock, strategy="optimized",
                retry=RetryPolicy(base_delay=0.0, jitter=0.0),
            )
        assert relation.tuples == baseline.tuples
        retries = [d for d in report.downgrades if d.kind == "retry"]
        assert retries and retries[0].to_name == "recovered"
        assert "2 attempt(s)" in retries[0].reason

    def test_transient_naive_fault_recovers(self, small_basket_db, basket_flock):
        baseline, _ = mine(small_basket_db, basket_flock, strategy="naive")
        with faults.inject("relational.join", TransientFault, times=1):
            relation, report = mine(
                small_basket_db, basket_flock, strategy="naive",
                retry=RetryPolicy(base_delay=0.0, jitter=0.0),
            )
        assert relation.tuples == baseline.tuples
        assert any(d.kind == "retry" for d in report.downgrades)

    def test_retry_disabled_with_single_attempt(
        self, small_basket_db, basket_flock
    ):
        with faults.inject("relational.join", TransientFault, times=1):
            with pytest.raises(TransientFault):
                mine(
                    small_basket_db, basket_flock, strategy="naive",
                    retry=RetryPolicy(max_attempts=1),
                )

    def test_exhausted_retries_escalate_to_strategy_downgrade(
        self, small_basket_db, basket_flock
    ):
        """Retry is the rung *below* degradation: when retries run out
        on a PlanError-compatible failure mid plan-search, the existing
        strategy ladder still applies."""
        with faults.inject("optimizer.search", PlanError):
            relation, report = mine(
                small_basket_db, basket_flock, strategy="optimized",
                retry=RetryPolicy(base_delay=0.0, jitter=0.0),
            )
        kinds = {d.kind for d in report.downgrades}
        assert "strategy" in kinds


# ----------------------------------------------------------------------
# CheckpointStore / RunManifest
# ----------------------------------------------------------------------


def _plan_for(db, flock):
    return optimize(db, flock)


@pytest.fixture
def wide_basket_db():
    """Forty baskets, three frequent items, eighty rare singletons — a
    shape where the a-priori prefilter genuinely pays, so the optimizer
    picks a two-step plan (ok0 prefilter + final) deterministically."""
    import random as _random

    from repro.relational import database_from_dict

    rng = _random.Random(0)
    rows = []
    for b in range(40):
        for item in ("beer", "diapers", "chips"):
            if rng.random() < 0.5:
                rows.append((b, item))
        rows.append((b, f"rare{b}"))
        rows.append((b, f"odd{b}"))
    return database_from_dict({"baskets": (("BID", "Item"), rows)})


@pytest.fixture
def pair_flock(basket_query_ordered):
    from repro.flocks import QueryFlock, support_filter

    return QueryFlock(basket_query_ordered, support_filter(5, target="B"))


class TestCheckpointStore:
    def test_manifest_round_trip(self, tmp_path):
        manifest = RunManifest(
            run_id="r1",
            flock_key="k",
            plan_fingerprint="f",
            step_names=("okS", "ok"),
            completed={"okS": "_repro_ckpt_r1_okS"},
            base_cards={"baskets": 12},
        )
        text = manifest.to_json()
        again = RunManifest.from_json(text)
        assert again == manifest

    def test_save_load_drop(self, tmp_path, small_basket_db, basket_flock):
        path = str(tmp_path / "ckpt.db")
        plan = _plan_for(small_basket_db, basket_flock)
        with CheckpointStore(path) as store:
            recorder = store.recorder(
                basket_flock, plan, small_basket_db, run_id="r1"
            )
            assert recorder.run_id == "r1"
            loaded = store.load_manifest("r1")
            assert loaded is not None
            assert loaded.status == "running"
            assert loaded.flock_key == flock_key(basket_flock)
            assert loaded.plan_fingerprint == plan_fingerprint(
                basket_flock, plan
            )
        # a store outlives processes: reopen from the same path
        with CheckpointStore(path) as store:
            assert [m.run_id for m in store.list_runs()] == ["r1"]
            store.drop_run("r1")
            assert store.load_manifest("r1") is None

    def test_resume_unknown_run_id(self, tmp_path, small_basket_db, basket_flock):
        path = str(tmp_path / "ckpt.db")
        plan = _plan_for(small_basket_db, basket_flock)
        with CheckpointStore(path) as store:
            with pytest.raises(ResumeError, match="no checkpointed run"):
                store.recorder(
                    basket_flock, plan, small_basket_db, resume="nope"
                )

    def test_resume_rejects_changed_data(
        self, tmp_path, small_basket_db, basket_flock
    ):
        """Base-relation cardinality drift invalidates a checkpoint —
        splicing stale survivors into changed data would be a silent
        wrong answer."""
        path = str(tmp_path / "ckpt.db")
        plan = _plan_for(small_basket_db, basket_flock)
        with CheckpointStore(path) as store:
            store.recorder(
                basket_flock, plan, small_basket_db, run_id="r1"
            )
            baskets = small_basket_db.get("baskets")
            small_basket_db.add_rows(
                "baskets",
                baskets.columns,
                list(baskets.tuples) + [(99, "soap")],
            )
            with pytest.raises(ResumeError, match="different .*data"):
                store.recorder(
                    basket_flock, plan, small_basket_db, resume="r1"
                )

    def test_resume_rejects_different_flock(
        self, tmp_path, small_basket_db, basket_flock, medical_flock,
        small_medical_db,
    ):
        path = str(tmp_path / "ckpt.db")
        plan = _plan_for(small_basket_db, basket_flock)
        with CheckpointStore(path) as store:
            store.recorder(
                basket_flock, plan, small_basket_db, run_id="r1"
            )
            other_plan = _plan_for(small_medical_db, medical_flock)
            with pytest.raises(ResumeError, match="different\\s+flock"):
                store.recorder(
                    medical_flock, other_plan, small_medical_db, resume="r1"
                )


# ----------------------------------------------------------------------
# execute_plan + recorder: step-level durability
# ----------------------------------------------------------------------


class TestStepCheckpointing:
    def test_steps_become_durable_as_they_complete(
        self, tmp_path, wide_basket_db, pair_flock
    ):
        path = str(tmp_path / "ckpt.db")
        plan = _plan_for(wide_basket_db, pair_flock)
        assert len(plan.steps) >= 2  # a multi-step a-priori plan
        with CheckpointStore(path) as store:
            recorder = store.recorder(
                pair_flock, plan, wide_basket_db, run_id="r1"
            )
            result = execute_plan(
                wide_basket_db, pair_flock, plan, recorder=recorder
            )
            manifest = store.load_manifest("r1")
            assert manifest.status == "complete"
            assert set(manifest.completed) == {
                s.result_name for s in plan.steps
            }
            assert recorder.steps_checkpointed == len(plan.steps)
        baseline = execute_plan(wide_basket_db, pair_flock, plan)
        assert result.relation.tuples == baseline.relation.tuples

    def test_resume_reexecutes_only_unfinished_steps(
        self, tmp_path, wide_basket_db, pair_flock
    ):
        """Kill mid-run, resume, and assert via the trace that the
        completed prefix was served from checkpoints, not recomputed."""
        path = str(tmp_path / "ckpt.db")
        plan = _plan_for(wide_basket_db, pair_flock)
        n_steps = len(plan.steps)
        assert n_steps >= 2
        baseline = execute_plan(wide_basket_db, pair_flock, plan)

        with CheckpointStore(path) as store:
            recorder = store.recorder(
                pair_flock, plan, wide_basket_db, run_id="r1"
            )
            # Crash after the first step completes (the second raises).
            with faults.inject("executor.step", RuntimeError, skip=1):
                with pytest.raises(RuntimeError):
                    execute_plan(
                        wide_basket_db, pair_flock, plan,
                        recorder=recorder,
                    )
            manifest = store.load_manifest("r1")
            assert manifest.status == "running"
            assert len(manifest.completed) == 1  # exactly the finished step

            resumed = store.recorder(
                pair_flock, plan, wide_basket_db, resume="r1"
            )
            result = execute_plan(
                wide_basket_db, pair_flock, plan, recorder=resumed
            )
            assert resumed.steps_resumed == 1
            assert resumed.steps_checkpointed == n_steps - 1
            served = [
                t for t in result.trace.steps
                if t.description == "resumed from checkpoint"
            ]
            assert len(served) == 1
            assert served[0].input_tuples == 0  # no join ran for it
            assert store.load_manifest("r1").status == "complete"
        assert result.relation.tuples == baseline.relation.tuples


# ----------------------------------------------------------------------
# mine(): the public checkpoint/resume contract
# ----------------------------------------------------------------------


@pytest.mark.faults
class TestMineCheckpointResume:
    def test_fresh_run_reports_run_id(self, tmp_path, small_basket_db, basket_flock):
        path = str(tmp_path / "ckpt.db")
        relation, report = mine(small_basket_db, basket_flock, checkpoint=path)
        assert report.run_id is not None
        assert report.steps_checkpointed >= 1
        assert report.strategy_used in ("optimized", "stats")
        assert "checkpoint run" in str(report)

    def test_kill_and_resume_bit_identical(
        self, tmp_path, wide_basket_db, pair_flock
    ):
        path = str(tmp_path / "ckpt.db")
        baseline, _ = mine(
            wide_basket_db, pair_flock, strategy="optimized"
        )
        # Kill the run after its first FILTER step (fatal fault).
        with faults.inject("executor.step", RuntimeError, skip=1):
            with pytest.raises(RuntimeError):
                mine(
                    wide_basket_db, pair_flock, strategy="optimized",
                    checkpoint=path, run_id="runA",
                    retry=RetryPolicy(max_attempts=1),
                )
        relation, report = mine(
            wide_basket_db, pair_flock, strategy="optimized",
            checkpoint=path, resume="runA",
        )
        assert relation.tuples == baseline.tuples
        assert report.run_id == "runA"
        assert report.steps_resumed == 1
        assert report.steps_checkpointed >= 1

    def test_auto_coerces_to_plan_based_strategy(
        self, tmp_path, small_basket_db, basket_flock
    ):
        path = str(tmp_path / "ckpt.db")
        _, report = mine(small_basket_db, basket_flock, checkpoint=path)
        assert report.strategy_requested == "auto"
        assert report.strategy_used == "optimized"

    def test_checkpoint_rejects_naive_and_sqlite(
        self, tmp_path, small_basket_db, basket_flock
    ):
        path = str(tmp_path / "ckpt.db")
        with pytest.raises(ValueError, match="plan-based"):
            mine(
                small_basket_db, basket_flock, strategy="naive",
                checkpoint=path,
            )
        with pytest.raises(ValueError, match="in-memory backend"):
            mine(
                small_basket_db, basket_flock, backend="sqlite",
                checkpoint=path,
            )
        with pytest.raises(ValueError, match="requires checkpoint"):
            mine(small_basket_db, basket_flock, resume="r1")

    def test_resume_disables_strategy_degradation(
        self, tmp_path, small_basket_db, basket_flock
    ):
        path = str(tmp_path / "ckpt.db")
        _, report = mine(
            small_basket_db, basket_flock, checkpoint=path, run_id="runB"
        )
        # A mid-plan-search failure on a resume must raise, not degrade:
        # a cheaper strategy could not honour the manifest's plan.
        with faults.inject("optimizer.search", PlanError):
            with pytest.raises(PlanError):
                mine(
                    small_basket_db, basket_flock,
                    checkpoint=path, resume="runB",
                    retry=RetryPolicy(max_attempts=1),
                )
