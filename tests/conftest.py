"""Shared fixtures: the paper's canonical flock queries and small databases."""

import pytest

from repro.analysis import plan_verification
from repro.datalog import atom, comparison, negated, rule, UnionQuery
from repro.flocks import QueryFlock, support_filter
from repro.relational import database_from_dict
from repro.testing.faults import reset_faults


@pytest.fixture(autouse=True)
def _verify_plans():
    """Run the whole suite with plan verification on: every plan the
    optimizer or dynamic re-planner emits is certified, and every
    lowered physical plan is schema-checked before execution."""
    with plan_verification(True):
        yield


@pytest.fixture(autouse=True)
def _clean_faults():
    """Disarm the fault-injection registry around every test.

    The registry is module-global; a fault left armed by a failing test
    (an assertion inside an ``inject`` block still unwinds the context
    manager, but a hard-crashed worker thread may not) must never leak
    into the next test.
    """
    reset_faults()
    yield
    reset_faults()


@pytest.fixture
def basket_query():
    """Fig. 2 / Example 2.1: pairs of items in the same basket."""
    return rule(
        "answer",
        ["B"],
        [atom("baskets", "B", "$1"), atom("baskets", "B", "$2")],
    )


@pytest.fixture
def basket_query_ordered():
    """Section 2.3 variant with the lexicographic tie-break $1 < $2."""
    return rule(
        "answer",
        ["B"],
        [
            atom("baskets", "B", "$1"),
            atom("baskets", "B", "$2"),
            comparison("$1", "<", "$2"),
        ],
    )


@pytest.fixture
def medical_query():
    """Fig. 3 / Example 2.2: unexplained side-effects (has negation)."""
    return rule(
        "answer",
        ["P"],
        [
            atom("exhibits", "P", "$s"),
            atom("treatments", "P", "$m"),
            atom("diagnoses", "P", "D"),
            negated("causes", "D", "$s"),
        ],
    )


@pytest.fixture
def web_union_query():
    """Fig. 4 / Example 2.3: strongly connected words (a 3-rule union)."""
    r1 = rule(
        "answer",
        ["D"],
        [
            atom("inTitle", "D", "$1"),
            atom("inTitle", "D", "$2"),
            comparison("$1", "<", "$2"),
        ],
    )
    r2 = rule(
        "answer",
        ["A"],
        [
            atom("link", "A", "D1", "D2"),
            atom("inAnchor", "A", "$1"),
            atom("inTitle", "D2", "$2"),
            comparison("$1", "<", "$2"),
        ],
    )
    r3 = rule(
        "answer",
        ["A"],
        [
            atom("link", "A", "D1", "D2"),
            atom("inAnchor", "A", "$2"),
            atom("inTitle", "D2", "$1"),
            comparison("$1", "<", "$2"),
        ],
    )
    return UnionQuery((r1, r2, r3))


def path_query(n: int):
    """Fig. 6 / Example 4.3: $1 has >= c successors X from which a path of
    length n extends: arc($1,X) AND arc(X,Y1) AND ... AND arc(Y[n-1],Yn)."""
    body = [atom("arc", "$1", "X")]
    prev = "X"
    for i in range(1, n + 1):
        nxt = f"Y{i}"
        body.append(atom("arc", prev, nxt))
        prev = nxt
    return rule("answer", ["X"], body)


@pytest.fixture
def path_query_3():
    return path_query(3)


# ----------------------------------------------------------------------
# Flock-level fixtures: paper flocks with low thresholds + tiny databases
# ----------------------------------------------------------------------


@pytest.fixture
def basket_flock(basket_query_ordered):
    """Fig. 2 with the Section 2.3 ordering, support 2 (test scale)."""
    return QueryFlock(basket_query_ordered, support_filter(2, target="B"))


@pytest.fixture
def medical_flock(medical_query):
    """Fig. 3 at support 2."""
    return QueryFlock(medical_query, support_filter(2, target="P"))


@pytest.fixture
def web_flock(web_union_query):
    """Fig. 4 at support 2 (COUNT(answer(*)))."""
    return QueryFlock(web_union_query, support_filter(2))


@pytest.fixture
def small_basket_db():
    """Seven baskets; {beer, diapers} appears in 3, {beer, chips} in 2,
    all other pairs at most once."""
    return database_from_dict(
        {
            "baskets": (
                ("BID", "Item"),
                [
                    (1, "beer"), (1, "diapers"),
                    (2, "beer"), (2, "diapers"),
                    (3, "beer"), (3, "diapers"),
                    (4, "beer"), (4, "chips"),
                    (5, "beer"), (5, "chips"),
                    (6, "soap"),
                    (7, "beer"),
                ],
            )
        }
    )


@pytest.fixture
def small_medical_db():
    """Five patients; (rash, aspirin) is an unexplained pair for
    patients 1 and 2; every other (symptom, medicine) pair has at most
    one unexplained patient."""
    return database_from_dict(
        {
            "diagnoses": (
                ("P", "D"),
                [(1, "flu"), (2, "flu"), (3, "cold"), (4, "flu"), (5, "cold")],
            ),
            "exhibits": (
                ("P", "S"),
                [
                    (1, "fever"), (1, "rash"),
                    (2, "fever"), (2, "rash"),
                    (3, "cough"),
                    (4, "fever"),
                    (5, "rash"),
                ],
            ),
            "treatments": (
                ("P", "M"),
                [
                    (1, "aspirin"), (2, "aspirin"), (3, "syrup"),
                    (4, "aspirin"), (5, "lotion"),
                ],
            ),
            "causes": (
                ("D", "S"),
                [("flu", "fever"), ("cold", "cough")],
            ),
        }
    )


@pytest.fixture
def small_web_db():
    """A corpus where (alpha, beta) is supported by >= 2 answers."""
    return database_from_dict(
        {
            "inTitle": (
                ("D", "W"),
                [
                    ("d1", "alpha"), ("d1", "beta"),
                    ("d2", "alpha"), ("d2", "beta"),
                    ("d3", "gamma"),
                ],
            ),
            "inAnchor": (
                ("A", "W"),
                [("a1", "alpha"), ("a2", "beta"), ("a3", "gamma")],
            ),
            "link": (
                ("A", "D1", "D2"),
                [("a1", "d3", "d1"), ("a2", "d3", "d2"), ("a3", "d1", "d2")],
            ),
        }
    )
