"""Tests for EXPLAIN output."""

import pytest

from repro.datalog import parse_rule
from repro.relational import database_from_dict, explain_conjunctive


@pytest.fixture
def medical_db():
    return database_from_dict(
        {
            "exhibits": (("P", "S"), [(1, "rash"), (2, "rash"), (2, "fever")]),
            "treatments": (("P", "M"), [(1, "aspirin")]),
            "diagnoses": (("P", "D"), [(1, "flu"), (2, "flu")]),
            "causes": (("D", "S"), [("flu", "fever")]),
        }
    )


MEDICAL_RULE = parse_rule(
    "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
    "diagnoses(P,D) AND NOT causes(D,$s)"
)


class TestExplainConjunctive:
    def test_contains_scan_join_project(self, medical_db):
        text = explain_conjunctive(medical_db, MEDICAL_RULE)
        assert "scan " in text
        assert "join " in text
        assert "project (P)" in text

    def test_negation_shown_as_anti_join(self, medical_db):
        text = explain_conjunctive(medical_db, MEDICAL_RULE)
        assert "anti-join: NOT causes(D, $s)" in text

    def test_comparison_shown_as_filter(self, medical_db):
        rule = parse_rule(
            "answer(P) :- exhibits(P,$s) AND exhibits(P,$t) AND $s < $t"
        )
        text = explain_conjunctive(medical_db, rule)
        assert "then filter: $s < $t" in text

    def test_join_columns_annotated(self, medical_db):
        text = explain_conjunctive(medical_db, MEDICAL_RULE)
        assert "on (P)" in text

    def test_cartesian_annotated(self):
        db = database_from_dict(
            {"r": (("X",), [(1,)]), "s": (("Y",), [(2,)])}
        )
        rule = parse_rule("answer(X) :- r(X) AND s(Y)")
        text = explain_conjunctive(db, rule)
        assert "cartesian!" in text

    def test_selinger_strategy(self, medical_db):
        text = explain_conjunctive(
            medical_db, MEDICAL_RULE, order_strategy="selinger"
        )
        assert "selinger join order" in text

    def test_unknown_strategy_rejected(self, medical_db):
        with pytest.raises(ValueError):
            explain_conjunctive(medical_db, MEDICAL_RULE, order_strategy="magic")

    def test_estimates_present(self, medical_db):
        text = explain_conjunctive(medical_db, MEDICAL_RULE)
        assert "~" in text and "tuples" in text
