"""Unit tests for relational operators (joins, anti-joins, unions)."""

import pytest

from repro.errors import SchemaError
from repro.relational import (
    Relation,
    anti_join,
    cartesian_product,
    natural_join,
    semi_join,
    shared_columns,
    union_all,
)


@pytest.fixture
def exhibits():
    return Relation("exhibits", ("P", "S"), {(1, "rash"), (2, "rash"), (2, "fever")})


@pytest.fixture
def treatments():
    return Relation("treatments", ("P", "M"), {(1, "aspirin"), (3, "aspirin")})


class TestSharedColumns:
    def test_order_follows_left(self):
        a = Relation("a", ("x", "y", "z"))
        b = Relation("b", ("z", "x"))
        assert shared_columns(a, b) == ("x", "z")

    def test_disjoint(self):
        a = Relation("a", ("x",))
        b = Relation("b", ("y",))
        assert shared_columns(a, b) == ()


class TestNaturalJoin:
    def test_join_on_shared_column(self, exhibits, treatments):
        joined = natural_join(exhibits, treatments)
        assert joined.columns == ("P", "S", "M")
        assert joined.tuples == frozenset({(1, "rash", "aspirin")})

    def test_join_is_commutative_up_to_columns(self, exhibits, treatments):
        ab = natural_join(exhibits, treatments)
        ba = natural_join(treatments, exhibits)
        assert ab.project(["P", "S", "M"]) == ba.project(["P", "S", "M"])

    def test_join_with_unit_is_identity(self, exhibits):
        unit = Relation("unit", (), {()})
        assert natural_join(unit, exhibits).tuples == exhibits.tuples
        assert natural_join(exhibits, unit).tuples == exhibits.tuples

    def test_join_no_shared_is_product(self):
        a = Relation("a", ("x",), {(1,), (2,)})
        b = Relation("b", ("y",), {(10,)})
        joined = natural_join(a, b)
        assert joined.tuples == frozenset({(1, 10), (2, 10)})

    def test_join_with_empty_is_empty(self, exhibits):
        empty = Relation("e", ("P",))
        assert len(natural_join(exhibits, empty)) == 0

    def test_self_join_different_columns(self):
        # The Fig. 1 pattern: baskets ⋈ baskets on BID with renamed items.
        b1 = Relation("b1", ("BID", "I1"), {(1, "a"), (1, "b"), (2, "a")})
        b2 = b1.rename({"I1": "I2"}, name="b2")
        joined = natural_join(b1, b2)
        assert (1, "a", "b") in joined
        assert (2, "a", "a") in joined

    def test_multi_column_join(self):
        a = Relation("a", ("x", "y"), {(1, 2), (1, 3)})
        b = Relation("b", ("x", "y", "z"), {(1, 2, 9), (1, 4, 8)})
        joined = natural_join(a, b)
        assert joined.tuples == frozenset({(1, 2, 9)})


class TestSemiJoin:
    def test_keeps_matching(self, exhibits, treatments):
        result = semi_join(exhibits, treatments)
        assert result.columns == exhibits.columns
        assert result.tuples == frozenset({(1, "rash")})

    def test_no_shared_nonempty_right(self, exhibits):
        other = Relation("o", ("Q",), {(1,)})
        assert semi_join(exhibits, other).tuples == exhibits.tuples

    def test_no_shared_empty_right(self, exhibits):
        other = Relation("o", ("Q",))
        assert len(semi_join(exhibits, other)) == 0


class TestAntiJoin:
    def test_removes_matching(self, exhibits, treatments):
        result = anti_join(exhibits, treatments)
        assert result.tuples == frozenset({(2, "rash"), (2, "fever")})

    def test_complement_of_semi_join(self, exhibits, treatments):
        semi = semi_join(exhibits, treatments)
        anti = anti_join(exhibits, treatments)
        assert semi.tuples | anti.tuples == exhibits.tuples
        assert not semi.tuples & anti.tuples

    def test_no_shared_nonempty_right_empties(self, exhibits):
        other = Relation("o", ("Q",), {(1,)})
        assert len(anti_join(exhibits, other)) == 0

    def test_no_shared_empty_right_keeps_all(self, exhibits):
        other = Relation("o", ("Q",))
        assert anti_join(exhibits, other).tuples == exhibits.tuples


class TestCartesianProduct:
    def test_product(self):
        a = Relation("a", ("x",), {(1,), (2,)})
        b = Relation("b", ("y",), {(3,), (4,)})
        assert len(cartesian_product(a, b)) == 4

    def test_shared_columns_rejected(self, exhibits, treatments):
        with pytest.raises(SchemaError):
            cartesian_product(exhibits, treatments)


class TestUnionAll:
    def test_collapses_duplicates(self):
        a = Relation("a", ("x",), {(1,), (2,)})
        b = Relation("b", ("x",), {(2,), (3,)})
        assert len(union_all([a, b])) == 3

    def test_schema_mismatch(self):
        a = Relation("a", ("x",), {(1,)})
        b = Relation("b", ("y",), {(1,)})
        with pytest.raises(SchemaError):
            union_all([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            union_all([])
