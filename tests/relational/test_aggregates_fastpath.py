"""Fast-path aggregation correctness: the streaming COUNT/SUM/MIN/MAX
paths must agree with a straightforward reference implementation."""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import AggregateFunction, Relation, group_aggregate


rows = st.frozensets(
    st.tuples(
        st.sampled_from(["g1", "g2", "g3"]),
        st.integers(0, 4),
        st.integers(1, 9),
    ),
    min_size=1,
    max_size=25,
)


def reference(relation, fn, target_cols):
    """Reference: materialize distinct member tuples per group, then
    aggregate — the definitionally correct (slow) implementation."""
    g = relation.column_position("g")
    members = defaultdict(set)
    member_cols = [c for c in relation.columns if c != "g"]
    positions = [relation.column_position(c) for c in member_cols]
    for row in relation.tuples:
        members[(row[g],)].add(tuple(row[p] for p in positions))
    out = set()
    idx = {c: i for i, c in enumerate(member_cols)}
    for key, ms in members.items():
        if fn is AggregateFunction.COUNT:
            sub = {tuple(m[idx[c]] for c in target_cols) for m in ms}
            out.add(key + (len(sub),))
        else:
            values = [m[idx[target_cols[0]]] for m in ms]
            if fn is AggregateFunction.SUM:
                out.add(key + (sum(values),))
            elif fn is AggregateFunction.MIN:
                out.add(key + (min(values),))
            else:
                out.add(key + (max(values),))
    return out


class TestFastPathsAgainstReference:
    @given(rows)
    @settings(max_examples=80, deadline=None)
    def test_count_all_members(self, data):
        rel = Relation("r", ("g", "b", "w"), data)
        fast = group_aggregate(rel, ["g"], AggregateFunction.COUNT)
        assert fast.tuples == reference(rel, AggregateFunction.COUNT, ["b", "w"])

    @given(rows)
    @settings(max_examples=80, deadline=None)
    def test_count_subset_target(self, data):
        rel = Relation("r", ("g", "b", "w"), data)
        fast = group_aggregate(
            rel, ["g"], AggregateFunction.COUNT, target=["b"]
        )
        assert fast.tuples == reference(rel, AggregateFunction.COUNT, ["b"])

    @given(rows)
    @settings(max_examples=80, deadline=None)
    @pytest.mark.parametrize(
        "fn", [AggregateFunction.SUM, AggregateFunction.MIN, AggregateFunction.MAX]
    )
    def test_scalar_aggregates(self, fn, data):
        rel = Relation("r", ("g", "b", "w"), data)
        fast = group_aggregate(rel, ["g"], fn, target=["w"])
        assert fast.tuples == reference(rel, fn, ["w"])

    def test_scalar_count_zero_on_empty(self):
        empty = Relation("r", ("b",))
        agg = group_aggregate(empty, [], AggregateFunction.COUNT)
        assert agg.tuples == frozenset({(0,)})

    def test_sum_of_floats(self):
        rel = Relation("r", ("g", "w"), {("a", 0.5), ("a", 0.25)})
        agg = group_aggregate(rel, ["g"], AggregateFunction.SUM, target=["w"])
        assert agg.tuples == frozenset({("a", 0.75)})
