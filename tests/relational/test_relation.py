"""Unit tests for repro.relational.relation."""

import pytest

from repro.errors import SchemaError
from repro.relational import Relation, relation_from_rows


@pytest.fixture
def baskets():
    return Relation(
        "baskets",
        ("BID", "Item"),
        {
            (1, "beer"),
            (1, "diapers"),
            (2, "beer"),
            (2, "chips"),
            (3, "beer"),
            (3, "diapers"),
        },
    )


class TestConstruction:
    def test_basic(self, baskets):
        assert baskets.arity == 2
        assert len(baskets) == 6

    def test_set_semantics_dedupes(self):
        r = Relation("r", ("a",), [(1,), (1,), (2,)])
        assert len(r) == 2

    def test_width_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation("r", ("a", "b"), [(1,)])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Relation("r", ("a", "a"), [])

    def test_from_rows_accepts_lists(self):
        r = relation_from_rows("r", ("a", "b"), [[1, 2], [3, 4]])
        assert (1, 2) in r

    def test_empty_relation(self):
        r = Relation("r", ("a",))
        assert len(r) == 0

    def test_zero_column_relation(self):
        unit = Relation("unit", (), {()})
        assert len(unit) == 1


class TestIntrospection:
    def test_contains(self, baskets):
        assert (1, "beer") in baskets
        assert (9, "beer") not in baskets

    def test_column_position(self, baskets):
        assert baskets.column_position("Item") == 1

    def test_unknown_column_raises(self, baskets):
        with pytest.raises(SchemaError):
            baskets.column_position("nope")

    def test_column_values(self, baskets):
        assert baskets.column_values("Item") == {"beer", "diapers", "chips"}

    def test_distinct_count(self, baskets):
        assert baskets.distinct_count("BID") == 3

    def test_equality_ignores_name(self, baskets):
        other = Relation("renamed", baskets.columns, baskets.tuples)
        assert baskets == other

    def test_equality_checks_schema(self):
        a = Relation("r", ("a",), {(1,)})
        b = Relation("r", ("b",), {(1,)})
        assert a != b

    def test_hashable(self, baskets):
        assert baskets in {baskets}


class TestOperations:
    def test_project_dedupes(self, baskets):
        items = baskets.project(["Item"])
        assert len(items) == 3
        assert items.columns == ("Item",)

    def test_project_reorders(self, baskets):
        flipped = baskets.project(["Item", "BID"])
        assert ("beer", 1) in flipped

    def test_select(self, baskets):
        beer = baskets.select(lambda row: row["Item"] == "beer")
        assert len(beer) == 3

    def test_select_eq(self, baskets):
        b1 = baskets.select_eq("BID", 1)
        assert len(b1) == 2

    def test_rename(self, baskets):
        renamed = baskets.rename({"BID": "B"})
        assert renamed.columns == ("B", "Item")
        assert renamed.tuples == baskets.tuples

    def test_union(self):
        a = Relation("a", ("x",), {(1,)})
        b = Relation("b", ("x",), {(1,), (2,)})
        assert len(a.union(b)) == 2

    def test_union_schema_mismatch(self):
        a = Relation("a", ("x",), {(1,)})
        b = Relation("b", ("y",), {(1,)})
        with pytest.raises(SchemaError):
            a.union(b)

    def test_difference(self):
        a = Relation("a", ("x",), {(1,), (2,)})
        b = Relation("b", ("x",), {(2,)})
        assert a.difference(b).tuples == frozenset({(1,)})

    def test_intersection(self):
        a = Relation("a", ("x",), {(1,), (2,)})
        b = Relation("b", ("x",), {(2,), (3,)})
        assert a.intersection(b).tuples == frozenset({(2,)})

    def test_operations_do_not_mutate(self, baskets):
        before = set(baskets.tuples)
        baskets.project(["Item"])
        baskets.select(lambda r: False)
        assert set(baskets.tuples) == before

    def test_pretty_truncates(self, baskets):
        text = baskets.pretty(limit=2)
        assert "and 4 more" in text
