"""Evaluator tests: extended CQs against small hand-checked databases."""

import pytest

from repro.datalog import atom, comparison, negated, rule
from repro.datalog.terms import Parameter, Variable
from repro.errors import EvaluationError, SafetyError
from repro.relational import database_from_dict, atom_binding_relation, evaluate_conjunctive, evaluate_union, greedy_join_order


@pytest.fixture
def basket_db():
    return database_from_dict(
        {
            "baskets": (
                ("BID", "Item"),
                [
                    (1, "beer"), (1, "diapers"),
                    (2, "beer"), (2, "diapers"),
                    (3, "beer"), (3, "chips"),
                    (4, "chips"),
                ],
            )
        }
    )


@pytest.fixture
def medical_db():
    return database_from_dict(
        {
            "diagnoses": (("P", "D"), [(1, "flu"), (2, "flu"), (3, "cold")]),
            "exhibits": (
                ("P", "S"),
                [(1, "fever"), (1, "rash"), (2, "fever"), (3, "rash")],
            ),
            "treatments": (("P", "M"), [(1, "aspirin"), (2, "aspirin"), (3, "statin")]),
            "causes": (("D", "S"), [("flu", "fever")]),
        }
    )


class TestAtomBindingRelation:
    def test_plain_atom(self, basket_db):
        rel = atom_binding_relation(basket_db, atom("baskets", "B", "$1"))
        assert rel.columns == ("B", "$1")
        assert len(rel) == 7

    def test_constant_selection(self, basket_db):
        rel = atom_binding_relation(basket_db, atom("baskets", "B", "'beer'"))
        assert rel.columns == ("B",)
        assert rel.column_values("B") == {1, 2, 3}

    def test_repeated_variable_selection(self):
        db = database_from_dict({"arc": (("u", "v"), [(1, 1), (1, 2)])})
        rel = atom_binding_relation(db, atom("arc", "X", "X"))
        assert rel.columns == ("X",)
        assert rel.tuples == frozenset({(1,)})

    def test_arity_mismatch(self, basket_db):
        with pytest.raises(EvaluationError):
            atom_binding_relation(basket_db, atom("baskets", "B"))

    def test_projection_dedupes(self, basket_db):
        rel = atom_binding_relation(basket_db, atom("baskets", "_", "$1"))
        # '_' is a variable; both columns kept, so 7 rows.
        assert len(rel) == 7


class TestEvaluateConjunctive:
    def test_instantiated_basket_query(self, basket_db, basket_query):
        inst = basket_query.instantiate(
            {Parameter("1"): "beer", Parameter("2"): "diapers"}
        )
        result = evaluate_conjunctive(basket_db, inst)
        assert result.columns == ("B",)
        assert result.column_values("B") == {1, 2}

    def test_output_with_parameters(self, basket_db, basket_query):
        result = evaluate_conjunctive(
            basket_db,
            basket_query,
            output_terms=[Parameter("1"), Parameter("2"), Variable("B")],
        )
        assert result.columns == ("$1", "$2", "B")
        assert ("beer", "diapers", 1) in result
        # Pairs appear in both orders and as self-pairs without the
        # arithmetic tie-break.
        assert ("diapers", "beer", 1) in result
        assert ("beer", "beer", 1) in result

    def test_arithmetic_restricts(self, basket_db, basket_query_ordered):
        result = evaluate_conjunctive(
            basket_db,
            basket_query_ordered,
            output_terms=[Parameter("1"), Parameter("2"), Variable("B")],
        )
        assert ("beer", "diapers", 1) in result
        assert ("diapers", "beer", 1) not in result
        assert ("beer", "beer", 1) not in result

    def test_negation(self, medical_db, medical_query):
        result = evaluate_conjunctive(
            medical_db,
            medical_query,
            output_terms=[Parameter("s"), Parameter("m"), Variable("P")],
        )
        # Patient 1 (flu): fever explained, rash not. Patient 2 (flu):
        # fever explained. Patient 3 (cold): rash unexplained.
        assert ("rash", "aspirin", 1) in result
        assert ("fever", "aspirin", 1) not in result
        assert ("rash", "statin", 3) in result

    def test_unsafe_query_rejected(self, basket_db):
        q = rule("answer", ["X"], [atom("baskets", "B", "$1")])
        with pytest.raises(SafetyError):
            evaluate_conjunctive(basket_db, q)

    def test_explicit_join_order(self, medical_db, medical_query):
        default = evaluate_conjunctive(
            medical_db,
            medical_query,
            output_terms=[Parameter("s"), Parameter("m")],
        )
        for order in ([0, 1, 2], [2, 1, 0], [1, 2, 0]):
            forced = evaluate_conjunctive(
                medical_db,
                medical_query,
                output_terms=[Parameter("s"), Parameter("m")],
                join_order=order,
            )
            assert forced == default

    def test_bad_join_order_rejected(self, medical_db, medical_query):
        with pytest.raises(EvaluationError):
            evaluate_conjunctive(medical_db, medical_query, join_order=[0, 0, 1])

    def test_empty_body_with_constant_head(self, basket_db):
        q = rule("answer", [1], [])
        result = evaluate_conjunctive(basket_db, q)
        assert result.tuples == frozenset({(1,)})

    def test_constant_only_comparison_true(self, basket_db):
        q = rule("answer", [1], [comparison(1, "<", 2)])
        assert len(evaluate_conjunctive(basket_db, q)) == 1

    def test_constant_only_comparison_false(self, basket_db):
        q = rule("answer", [1], [comparison(2, "<", 1)])
        assert len(evaluate_conjunctive(basket_db, q)) == 0

    def test_ground_negation(self, basket_db):
        q = rule("answer", [1], [negated("baskets", 1, "'beer'")])
        assert len(evaluate_conjunctive(basket_db, q)) == 0
        q2 = rule("answer", [1], [negated("baskets", 99, "'beer'")])
        assert len(evaluate_conjunctive(basket_db, q2)) == 1

    def test_disconnected_subgoals_product(self):
        db = database_from_dict(
            {"r": (("X",), [(1,), (2,)]), "s": (("Y",), [(3,)])}
        )
        q = rule("answer", ["X", "Y"], [atom("r", "X"), atom("s", "Y")])
        result = evaluate_conjunctive(db, q)
        assert len(result) == 2

    def test_path_query(self, path_query_3):
        db = database_from_dict(
            {
                "arc": (
                    ("u", "v"),
                    # node 0 -> 1 -> 2 -> 3 -> 4 (long chain) and 0 -> 9 (dead end)
                    [(0, 1), (1, 2), (2, 3), (3, 4), (0, 9)],
                )
            }
        )
        result = evaluate_conjunctive(
            db, path_query_3, output_terms=[Parameter("1"), Variable("X")]
        )
        # $1=0, X=1: path 1->2->3->4 of length 3 exists. X=9 has none.
        assert (0, 1) in result
        assert (0, 9) not in result


class TestGreedyJoinOrder:
    def test_permutation(self, medical_db, medical_query):
        order = greedy_join_order(medical_db, medical_query.positive_atoms())
        assert sorted(order) == [0, 1, 2]

    def test_starts_with_smallest(self):
        db = database_from_dict(
            {
                "big": (("X", "Y"), [(i, i + 1) for i in range(100)]),
                "small": (("Y", "Z"), [(1, 2)]),
            }
        )
        atoms = (atom("big", "X", "Y"), atom("small", "Y", "Z"))
        order = greedy_join_order(db, atoms)
        assert order[0] == 1

    def test_empty(self, basket_db):
        assert greedy_join_order(basket_db, ()) == []


class TestEvaluateUnion:
    @pytest.fixture
    def web_db(self):
        return database_from_dict(
            {
                "inTitle": (
                    ("D", "W"),
                    [("d1", "apple"), ("d1", "berry"), ("d2", "apple")],
                ),
                "inAnchor": (("A", "W"), [("a1", "apple"), ("a2", "cherry")]),
                "link": (("A", "D1", "D2"), [("a1", "d2", "d1"), ("a2", "d1", "d2")]),
            }
        )

    def test_union_combines_branches(self, web_db, web_union_query):
        per_rule = [
            [Parameter("1"), Parameter("2")] + list(r.head_terms)
            for r in web_union_query.rules
        ]
        result = evaluate_union(
            web_db,
            web_union_query,
            output_terms_per_rule=per_rule,
            output_columns=("$1", "$2", "ID"),
        )
        # Branch 1: apple & berry together in d1's title.
        assert ("apple", "berry", "d1") in result
        # Branch 2: anchor a1 ('apple') links to d1 whose title has 'berry':
        # $1=apple < $2=berry.
        assert ("apple", "berry", "a1") in result

    def test_mismatched_per_rule_length(self, web_db, web_union_query):
        with pytest.raises(EvaluationError):
            evaluate_union(web_db, web_union_query, output_terms_per_rule=[[]])

    def test_default_output_uses_heads(self, web_db, web_union_query):
        result = evaluate_union(web_db, web_union_query)
        assert result.columns == ("h0",)

    def test_output_columns_width_check(self, web_db, web_union_query):
        with pytest.raises(EvaluationError):
            evaluate_union(web_db, web_union_query, output_columns=("a", "b"))
