"""Unit tests for the statistics helpers used by the cost models."""

import pytest

from repro.relational import (
    Relation,
    RelationStats,
    estimate_chain_join_size,
    selectivity_of_filter,
    tuples_per_assignment,
)


class TestRelationStats:
    def test_of(self):
        rel = Relation("r", ("a", "b"), {(1, "x"), (2, "x"), (3, "y")})
        stats = RelationStats.of(rel)
        assert stats.cardinality == 3
        assert stats.distinct_count("a") == 3
        assert stats.distinct_count("b") == 2

    def test_unknown_column_distinct_zero(self):
        stats = RelationStats("r", 10, {"a": 5})
        assert stats.distinct_count("zzz") == 0

    def test_tuples_per_value(self):
        stats = RelationStats("r", 10, {"a": 5})
        assert stats.tuples_per_value("a") == 2.0

    def test_tuples_per_value_zero_distinct(self):
        stats = RelationStats("r", 10, {"a": 0})
        assert stats.tuples_per_value("a") == 0.0


class TestEstimateChainJoinSize:
    def test_empty(self):
        assert estimate_chain_join_size([], []) == 0.0

    def test_single(self):
        stats = [RelationStats("r", 100, {"x": 10})]
        assert estimate_chain_join_size(stats, []) == 100.0

    def test_two_way(self):
        chain = [
            RelationStats("r", 100, {"x": 10}),
            RelationStats("s", 50, {"x": 25}),
        ]
        # 100 * 50 / 25 = 200
        assert estimate_chain_join_size(chain, [["x"]]) == pytest.approx(200.0)

    def test_cartesian_when_no_columns(self):
        chain = [
            RelationStats("r", 10, {}),
            RelationStats("s", 20, {}),
        ]
        assert estimate_chain_join_size(chain, [[]]) == 200.0


class TestSelectivityOfFilter:
    def test_fraction(self):
        rel = Relation(
            "answer", ("$s", "P"), {("a", 1), ("a", 2), ("b", 3), ("c", 4)}
        )
        assert selectivity_of_filter(rel, ["$s"], 1) == pytest.approx(1 / 3)

    def test_no_params_is_single_group(self):
        rel = Relation("answer", ("P",), {(1,)})
        assert selectivity_of_filter(rel, [], 1) == 1.0

    def test_empty_relation(self):
        rel = Relation("answer", ("$s", "P"))
        assert selectivity_of_filter(rel, ["$s"], 0) == 0.0


class TestTuplesPerAssignmentEdges:
    def test_multi_column_assignment(self):
        rel = Relation(
            "answer",
            ("$s", "$m", "P"),
            {("a", "x", 1), ("a", "x", 2), ("b", "y", 3)},
        )
        assert tuples_per_assignment(rel, ["$s", "$m"]) == pytest.approx(1.5)
