"""Unit tests for grouped aggregation (the HAVING machinery)."""

import pytest

from repro.errors import FilterError
from repro.relational import (
    AggregateFunction,
    Relation,
    group_aggregate,
    grouped_counts,
    having,
)


@pytest.fixture
def answer():
    """Parameter columns ($1, $2) plus the answer column (B)."""
    return Relation(
        "answer",
        ("$1", "$2", "B"),
        {
            ("beer", "diapers", 1),
            ("beer", "diapers", 2),
            ("beer", "diapers", 3),
            ("beer", "chips", 1),
        },
    )


class TestAggregateFunction:
    def test_from_name(self):
        assert AggregateFunction.from_name("count") is AggregateFunction.COUNT
        assert AggregateFunction.from_name("SUM") is AggregateFunction.SUM

    def test_unknown_raises(self):
        with pytest.raises(FilterError):
            AggregateFunction.from_name("MEDIAN")


class TestGroupedCounts:
    def test_counts_distinct_answers_per_group(self, answer):
        counts = grouped_counts(answer, ["$1", "$2"])
        assert ("beer", "diapers", 3) in counts
        assert ("beer", "chips", 1) in counts

    def test_empty_group_by_counts_all(self, answer):
        counts = grouped_counts(answer, [])
        assert counts.columns == ("count",)
        assert counts.tuples == frozenset({(4,)})

    def test_empty_relation_scalar_count_zero(self):
        empty = Relation("answer", ("B",))
        counts = grouped_counts(empty, [])
        assert counts.tuples == frozenset({(0,)})

    def test_empty_relation_grouped_is_empty(self):
        empty = Relation("answer", ("$1", "B"))
        counts = grouped_counts(empty, ["$1"])
        assert len(counts) == 0


class TestGroupAggregate:
    def test_sum(self):
        weighted = Relation(
            "answer",
            ("$1", "B", "W"),
            {("beer", 1, 10), ("beer", 2, 5), ("chips", 1, 10)},
        )
        total = group_aggregate(
            weighted, ["$1"], AggregateFunction.SUM, target=["W"]
        )
        assert ("beer", 15) in total
        assert ("chips", 10) in total

    def test_sum_over_distinct_member_tuples(self):
        # Fig. 10 semantics: SUM ranges over distinct *answer tuples*
        # (B, W), so two distinct baskets with equal weight 5 both
        # contribute: 5 + 5 + 7 = 17.
        weighted = Relation(
            "answer", ("$1", "B", "W"), {("x", 1, 5), ("x", 2, 5), ("x", 3, 7)}
        )
        total = group_aggregate(
            weighted, ["$1"], AggregateFunction.SUM, target=["W"]
        )
        assert total.tuples == frozenset({("x", 17)})

    def test_target_must_be_non_group_column(self):
        r = Relation("r", ("$g", "a"), {("x", 1)})
        with pytest.raises(FilterError):
            group_aggregate(r, ["$g"], AggregateFunction.SUM, target=["$g"])

    def test_min_max(self):
        scores = Relation("s", ("$g", "V"), {("a", 3), ("a", 7), ("b", 5)})
        mn = group_aggregate(scores, ["$g"], AggregateFunction.MIN, target=["V"])
        mx = group_aggregate(scores, ["$g"], AggregateFunction.MAX, target=["V"])
        assert ("a", 3) in mn and ("a", 7) in mx
        assert ("b", 5) in mn and ("b", 5) in mx

    def test_sum_requires_single_target(self):
        r = Relation("r", ("$g", "a", "b"), {("x", 1, 2)})
        with pytest.raises(FilterError):
            group_aggregate(r, ["$g"], AggregateFunction.SUM, target=["a", "b"])

    def test_non_count_requires_target(self):
        r = Relation("r", ("$g", "a"), {("x", 1)})
        with pytest.raises(FilterError):
            group_aggregate(r, ["$g"], AggregateFunction.SUM)

    def test_count_explicit_target(self, answer):
        counts = group_aggregate(
            answer, ["$1"], AggregateFunction.COUNT, target=["B"]
        )
        # beer group: B values {1, 2, 3} -> 3 distinct.
        assert ("beer", 3) in counts

    def test_result_column_name(self, answer):
        counts = grouped_counts(answer, ["$1"], result_column="support")
        assert counts.columns == ("$1", "support")


class TestHaving:
    def test_threshold_filter(self, answer):
        counts = grouped_counts(answer, ["$1", "$2"])
        passed = having(counts, lambda c: c >= 2)
        assert passed.columns == ("$1", "$2")
        assert passed.tuples == frozenset({("beer", "diapers")})

    def test_keep_aggregate(self, answer):
        counts = grouped_counts(answer, ["$1", "$2"])
        passed = having(counts, lambda c: c >= 2, keep_aggregate=True)
        assert passed.tuples == frozenset({("beer", "diapers", 3)})

    def test_nothing_passes(self, answer):
        counts = grouped_counts(answer, ["$1", "$2"])
        assert len(having(counts, lambda c: c >= 100)) == 0
