"""CSV persistence tests."""

import pytest

from repro.relational import (
    Database,
    Relation,
    load_database,
    load_relation,
    save_database,
    save_relation,
)


@pytest.fixture
def mixed_relation():
    return Relation(
        "mixed",
        ("id", "name", "score"),
        {(1, "alice", 2.5), (2, "bob", -1.0), (3, "carol", 7)},
    )


class TestRelationRoundTrip:
    def test_round_trip(self, tmp_path, mixed_relation):
        path = tmp_path / "mixed.csv"
        save_relation(mixed_relation, path)
        loaded = load_relation(path)
        assert loaded.columns == mixed_relation.columns
        # 7 round-trips as int, 2.5 as float, names as strings.
        assert (1, "alice", 2.5) in loaded
        assert (3, "carol", 7) in loaded

    def test_name_from_stem(self, tmp_path, mixed_relation):
        path = tmp_path / "things.csv"
        save_relation(mixed_relation, path)
        assert load_relation(path).name == "things"

    def test_explicit_name(self, tmp_path, mixed_relation):
        path = tmp_path / "things.csv"
        save_relation(mixed_relation, path)
        assert load_relation(path, name="other").name == "other"

    def test_empty_relation(self, tmp_path):
        empty = Relation("empty", ("a", "b"))
        path = tmp_path / "empty.csv"
        save_relation(empty, path)
        loaded = load_relation(path)
        assert loaded.columns == ("a", "b")
        assert len(loaded) == 0

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_relation(path)

    def test_values_with_commas(self, tmp_path):
        rel = Relation("r", ("text",), {("a,b",), ("plain",)})
        path = tmp_path / "r.csv"
        save_relation(rel, path)
        assert load_relation(path).tuples == rel.tuples

    def test_creates_parent_directories(self, tmp_path, mixed_relation):
        path = tmp_path / "nested" / "dir" / "r.csv"
        save_relation(mixed_relation, path)
        assert path.exists()


class TestDatabaseRoundTrip:
    def test_round_trip(self, tmp_path):
        db = Database(
            [
                Relation("r", ("a",), {(1,), (2,)}),
                Relation("s", ("x", "y"), {("p", "q")}),
            ]
        )
        save_database(db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        assert loaded.names() == ["r", "s"]
        assert loaded.get("r") == db.get("r")
        assert loaded.get("s") == db.get("s")

    def test_load_empty_directory(self, tmp_path):
        (tmp_path / "nothing").mkdir()
        db = load_database(tmp_path / "nothing")
        assert db.names() == []
