"""Tests for the Selinger DP and pessimistic (UES) join orderers."""

import pytest

from repro.datalog import atom
from repro.relational import (
    AtomBounds,
    atom_bounds,
    chain_upper_bounds,
    database_from_dict,
    evaluate_conjunctive,
    join_bounds,
    selinger_join_order,
    ues_join_order,
)
from repro.datalog import rule


@pytest.fixture
def chain_db():
    """A chain r(A,B)-s(B,C)-t(C,D) with a huge middle relation:
    the DP order should avoid starting from the middle."""
    return database_from_dict(
        {
            "r": (("A", "B"), [(i, i % 5) for i in range(20)]),
            "s": (("B", "C"), [(i % 50, i) for i in range(500)]),
            "t": (("C", "D"), [(i, 0) for i in range(10)]),
        }
    )


class TestSelingerJoinOrder:
    def test_permutation(self, chain_db):
        atoms = (atom("r", "A", "B"), atom("s", "B", "C"), atom("t", "C", "D"))
        order = selinger_join_order(chain_db, atoms)
        assert sorted(order) == [0, 1, 2]

    def test_avoids_starting_with_giant(self, chain_db):
        atoms = (atom("r", "A", "B"), atom("s", "B", "C"), atom("t", "C", "D"))
        order = selinger_join_order(chain_db, atoms)
        assert order[0] != 1  # s is the 500-row middle

    def test_empty_and_single(self, chain_db):
        assert selinger_join_order(chain_db, ()) == []
        assert selinger_join_order(chain_db, (atom("r", "A", "B"),)) == [0]

    def test_falls_back_beyond_max(self, chain_db):
        atoms = tuple(atom("r", f"X{i}", f"Y{i}") for i in range(6))
        order = selinger_join_order(chain_db, atoms, max_atoms=4)
        assert order == list(range(6))

    def test_orders_produce_same_result(self, chain_db):
        query = rule(
            "answer",
            ["A", "D"],
            [atom("r", "A", "B"), atom("s", "B", "C"), atom("t", "C", "D")],
        )
        atoms = query.positive_atoms()
        dp_order = selinger_join_order(chain_db, atoms)
        dp_result = evaluate_conjunctive(chain_db, query, join_order=dp_order)
        default = evaluate_conjunctive(chain_db, query)
        assert dp_result == default

    def test_star_query(self):
        """A star join: fact table with three small dimensions."""
        db = database_from_dict(
            {
                "fact": (
                    ("K1", "K2", "K3"),
                    [(i % 4, i % 3, i % 2) for i in range(100)],
                ),
                "d1": (("K1", "V1"), [(i, i) for i in range(4)]),
                "d2": (("K2", "V2"), [(i, i) for i in range(3)]),
                "d3": (("K3", "V3"), [(i, i) for i in range(2)]),
            }
        )
        atoms = (
            atom("fact", "K1", "K2", "K3"),
            atom("d1", "K1", "V1"),
            atom("d2", "K2", "V2"),
            atom("d3", "K3", "V3"),
        )
        order = selinger_join_order(db, atoms)
        assert sorted(order) == [0, 1, 2, 3]
        query = rule(
            "answer",
            ["V1", "V2", "V3"],
            list(atoms),
        )
        assert evaluate_conjunctive(db, query, join_order=order) == (
            evaluate_conjunctive(db, query)
        )

    def test_parameters_count_as_join_columns(self, chain_db):
        atoms = (atom("r", "A", "$p"), atom("s", "$p", "C"))
        order = selinger_join_order(chain_db, atoms)
        assert sorted(order) == [0, 1]


@pytest.fixture
def stats_db():
    """r(A,B) with known exact statistics: |r| = 5,
    A in {0,0,0,1,2} (3 distinct, max frequency 3),
    B in {0,1,2,0,1} (3 distinct, max frequency 2)."""
    return database_from_dict(
        {"r": (("A", "B"), [(0, 0), (0, 1), (0, 2), (1, 0), (2, 1)])}
    )


class TestAtomBounds:
    def test_exact_base_statistics(self, stats_db):
        bounds = atom_bounds(stats_db, atom("r", "A", "B"))
        assert bounds.card == 5.0
        assert bounds.distinct == {"A": 3.0, "B": 3.0}
        assert bounds.freq == {"A": 3.0, "B": 2.0}
        assert bounds.columns() == frozenset({"A", "B"})

    def test_runtime_filter_cap_tightens(self, stats_db):
        # A cap of k survivor keys on A certifies at most k distinct A
        # values and at most k * max_frequency(A) rows.
        bounds = atom_bounds(stats_db, atom("r", "A", "B"), caps={"A": 1})
        assert bounds.distinct["A"] == 1.0
        assert bounds.card == 3.0  # 1 key * max frequency 3

    def test_cap_on_unbound_column_is_ignored(self, stats_db):
        bounds = atom_bounds(stats_db, atom("r", "A", "B"), caps={"Z": 1})
        assert bounds.card == 5.0

    def test_per_column_bounds_never_exceed_cardinality(self, stats_db):
        bounds = atom_bounds(stats_db, atom("r", "A", "B"), caps={"B": 1})
        assert bounds.card == 2.0  # 1 key * max frequency 2
        assert all(d <= bounds.card for d in bounds.distinct.values())
        assert all(f <= bounds.card for f in bounds.freq.values())


class TestJoinBounds:
    def test_shared_column_formula(self):
        left = AtomBounds(10.0, {"A": 5.0, "B": 2.0}, {"A": 2.0, "B": 5.0})
        right = AtomBounds(8.0, {"B": 4.0, "C": 8.0}, {"B": 2.0, "C": 1.0})
        out = join_bounds(left, right)
        # min over: 10*8, min(2,4)*5*2, 10*2, 8*5.
        assert out.card == 20.0
        assert out.distinct == {"A": 5.0, "B": 2.0, "C": 8.0}
        # Shared col: product of max frequencies; non-shared: own max
        # frequency times the other side's per-row fan-out certificate.
        assert out.freq == {"A": 4.0, "B": 10.0, "C": 5.0}

    def test_cartesian_product_when_no_shared_columns(self):
        left = AtomBounds(3.0, {"A": 3.0}, {"A": 1.0})
        right = AtomBounds(4.0, {"C": 2.0}, {"C": 2.0})
        out = join_bounds(left, right)
        assert out.card == 12.0
        # Every row of one side pairs with every row of the other.
        assert out.freq == {"A": 4.0, "C": 6.0}

    def test_join_is_commutative_on_card(self):
        left = AtomBounds(10.0, {"A": 5.0, "B": 2.0}, {"A": 2.0, "B": 5.0})
        right = AtomBounds(8.0, {"B": 4.0, "C": 8.0}, {"B": 2.0, "C": 1.0})
        assert join_bounds(left, right).card == join_bounds(right, left).card


class TestUesJoinOrder:
    @pytest.fixture
    def trap_db(self):
        """The opening-move trap: ``tiny`` is the smallest relation, but
        its only join partner ``fat`` fans out 50x on the shared
        column, while ``u`` ⋈ ``v`` is certified to stay at 10 rows."""
        return database_from_dict(
            {
                "tiny": (("A",), [(0,), (1,)]),
                "fat": (("A", "B"), [(i % 2, i // 2) for i in range(100)]),
                "u": (("B", "C"), [(i, i) for i in range(10)]),
                "v": (("C", "D"), [(i, i % 3) for i in range(10)]),
            }
        )

    TRAP_ATOMS = (
        atom("tiny", "A"),
        atom("fat", "A", "B"),
        atom("u", "B", "C"),
        atom("v", "C", "D"),
    )

    def test_empty_and_single(self, trap_db):
        assert ues_join_order(trap_db, ()) == []
        assert ues_join_order(trap_db, (atom("tiny", "A"),)) == [0]

    def test_is_a_permutation(self, trap_db):
        assert sorted(ues_join_order(trap_db, self.TRAP_ATOMS)) == [0, 1, 2, 3]

    def test_opens_with_cheapest_pair_not_smallest_relation(self, trap_db):
        # Regression: a fixed smallest-relation start would open with
        # ``tiny`` and immediately join ``fat`` (bound 100); the pair
        # bound knows ``u`` ⋈ ``v`` is certified at 10 rows.
        order = ues_join_order(trap_db, self.TRAP_ATOMS)
        assert set(order[:2]) == {2, 3}

    def test_cartesian_fallback_starts_smallest(self, trap_db):
        atoms = (atom("fat", "A", "B"), atom("v", "X", "Y"))
        order = ues_join_order(trap_db, atoms)
        assert order[0] == 1  # v has 10 rows, fat has 100

    def test_scan_caps_redirect_the_order(self, trap_db):
        # Capping fat's shared column to one survivor key certifies
        # tiny ⋈ fat at <= 1 * max_frequency(A) — suddenly competitive.
        caps = {1: {"A": 1}}
        capped = chain_upper_bounds(
            trap_db, self.TRAP_ATOMS, ues_join_order(trap_db, self.TRAP_ATOMS, caps),
            caps,
        )
        uncapped = chain_upper_bounds(
            trap_db, self.TRAP_ATOMS, ues_join_order(trap_db, self.TRAP_ATOMS)
        )
        assert capped[-1] <= uncapped[-1]

    def test_order_produces_same_result_as_default(self, trap_db):
        query = rule(
            "answer",
            ["A", "D"],
            list(self.TRAP_ATOMS),
        )
        order = ues_join_order(trap_db, query.positive_atoms())
        assert evaluate_conjunctive(trap_db, query, join_order=order) == (
            evaluate_conjunctive(trap_db, query)
        )


class TestChainUpperBounds:
    def test_one_bound_per_stage(self, chain_db):
        atoms = (atom("r", "A", "B"), atom("s", "B", "C"), atom("t", "C", "D"))
        order = ues_join_order(chain_db, atoms)
        bounds = chain_upper_bounds(chain_db, atoms, order)
        assert len(bounds) == len(order)

    def test_first_bound_is_the_opening_scan(self, chain_db):
        atoms = (atom("r", "A", "B"), atom("s", "B", "C"))
        bounds = chain_upper_bounds(chain_db, atoms, [1, 0])
        assert bounds[0] == 500.0  # |s|

    def test_bounds_dominate_actual_output(self, chain_db):
        query = rule(
            "answer",
            ["A", "D"],
            [atom("r", "A", "B"), atom("s", "B", "C"), atom("t", "C", "D")],
        )
        atoms = query.positive_atoms()
        order = ues_join_order(chain_db, atoms)
        bounds = chain_upper_bounds(chain_db, atoms, order)
        actual = evaluate_conjunctive(chain_db, query, join_order=order)
        assert bounds[-1] >= len(actual)
