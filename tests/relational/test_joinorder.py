"""Tests for the Selinger DP join orderer."""

import pytest

from repro.datalog import atom
from repro.relational import (
    database_from_dict,
    evaluate_conjunctive,
    selinger_join_order,
)
from repro.datalog import rule


@pytest.fixture
def chain_db():
    """A chain r(A,B)-s(B,C)-t(C,D) with a huge middle relation:
    the DP order should avoid starting from the middle."""
    return database_from_dict(
        {
            "r": (("A", "B"), [(i, i % 5) for i in range(20)]),
            "s": (("B", "C"), [(i % 50, i) for i in range(500)]),
            "t": (("C", "D"), [(i, 0) for i in range(10)]),
        }
    )


class TestSelingerJoinOrder:
    def test_permutation(self, chain_db):
        atoms = (atom("r", "A", "B"), atom("s", "B", "C"), atom("t", "C", "D"))
        order = selinger_join_order(chain_db, atoms)
        assert sorted(order) == [0, 1, 2]

    def test_avoids_starting_with_giant(self, chain_db):
        atoms = (atom("r", "A", "B"), atom("s", "B", "C"), atom("t", "C", "D"))
        order = selinger_join_order(chain_db, atoms)
        assert order[0] != 1  # s is the 500-row middle

    def test_empty_and_single(self, chain_db):
        assert selinger_join_order(chain_db, ()) == []
        assert selinger_join_order(chain_db, (atom("r", "A", "B"),)) == [0]

    def test_falls_back_beyond_max(self, chain_db):
        atoms = tuple(atom("r", f"X{i}", f"Y{i}") for i in range(6))
        order = selinger_join_order(chain_db, atoms, max_atoms=4)
        assert order == list(range(6))

    def test_orders_produce_same_result(self, chain_db):
        query = rule(
            "answer",
            ["A", "D"],
            [atom("r", "A", "B"), atom("s", "B", "C"), atom("t", "C", "D")],
        )
        atoms = query.positive_atoms()
        dp_order = selinger_join_order(chain_db, atoms)
        dp_result = evaluate_conjunctive(chain_db, query, join_order=dp_order)
        default = evaluate_conjunctive(chain_db, query)
        assert dp_result == default

    def test_star_query(self):
        """A star join: fact table with three small dimensions."""
        db = database_from_dict(
            {
                "fact": (
                    ("K1", "K2", "K3"),
                    [(i % 4, i % 3, i % 2) for i in range(100)],
                ),
                "d1": (("K1", "V1"), [(i, i) for i in range(4)]),
                "d2": (("K2", "V2"), [(i, i) for i in range(3)]),
                "d3": (("K3", "V3"), [(i, i) for i in range(2)]),
            }
        )
        atoms = (
            atom("fact", "K1", "K2", "K3"),
            atom("d1", "K1", "V1"),
            atom("d2", "K2", "V2"),
            atom("d3", "K3", "V3"),
        )
        order = selinger_join_order(db, atoms)
        assert sorted(order) == [0, 1, 2, 3]
        query = rule(
            "answer",
            ["V1", "V2", "V3"],
            list(atoms),
        )
        assert evaluate_conjunctive(db, query, join_order=order) == (
            evaluate_conjunctive(db, query)
        )

    def test_parameters_count_as_join_columns(self, chain_db):
        atoms = (atom("r", "A", "$p"), atom("s", "$p", "C"))
        order = selinger_join_order(chain_db, atoms)
        assert sorted(order) == [0, 1]
