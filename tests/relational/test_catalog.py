"""Unit tests for the database catalog and statistics."""

import pytest

from repro.errors import SchemaError
from repro.relational import Relation, RelationStats, database_from_dict, estimate_join_size, tuples_per_assignment


@pytest.fixture
def db():
    return database_from_dict(
        {
            "exhibits": (("Patient", "Symptom"), [(1, "rash"), (2, "rash"), (2, "fever")]),
            "treatments": (("Patient", "Medicine"), [(1, "aspirin")]),
        }
    )


class TestDatabase:
    def test_get(self, db):
        assert len(db.get("exhibits")) == 3

    def test_unknown_relation(self, db):
        with pytest.raises(SchemaError):
            db.get("nope")

    def test_contains(self, db):
        assert "exhibits" in db
        assert "nope" not in db

    def test_names_sorted(self, db):
        assert db.names() == ["exhibits", "treatments"]

    def test_add_rows(self, db):
        db.add_rows("causes", ("Disease", "Symptom"), [("flu", "fever")])
        assert "causes" in db

    def test_replace_invalidates_stats(self, db):
        before = db.stats("exhibits").cardinality
        db.add(Relation("exhibits", ("Patient", "Symptom"), {(9, "itch")}))
        assert db.stats("exhibits").cardinality == 1
        assert before == 3

    def test_remove(self, db):
        db.remove("exhibits")
        assert "exhibits" not in db

    def test_scratch_is_isolated(self, db):
        scratch = db.scratch()
        scratch.add_rows("okS", ("$s",), [("rash",)])
        assert "okS" in scratch
        assert "okS" not in db

    def test_scratch_shares_base_relations(self, db):
        scratch = db.scratch()
        assert scratch.get("exhibits") is db.get("exhibits")

    def test_total_tuples(self, db):
        assert db.total_tuples() == 4

    def test_iter(self, db):
        assert set(db) == {"exhibits", "treatments"}


class TestStatistics:
    def test_stats_of(self, db):
        stats = db.stats("exhibits")
        assert stats.cardinality == 3
        assert stats.distinct_count("Symptom") == 2
        assert stats.distinct_count("Patient") == 2

    def test_tuples_per_value(self, db):
        stats = db.stats("exhibits")
        assert stats.tuples_per_value("Symptom") == pytest.approx(1.5)

    def test_tuples_per_value_empty(self):
        stats = RelationStats.of(Relation("empty", ("a",)))
        assert stats.tuples_per_value("a") == 0.0

    def test_stats_cached(self, db):
        assert db.stats("exhibits") is db.stats("exhibits")

    def test_tuples_per_assignment(self):
        rel = Relation(
            "answer", ("$s", "P"), {("rash", 1), ("rash", 2), ("fever", 3)}
        )
        assert tuples_per_assignment(rel, ["$s"]) == pytest.approx(1.5)

    def test_tuples_per_assignment_no_params(self):
        rel = Relation("answer", ("P",), {(1,), (2,)})
        assert tuples_per_assignment(rel, []) == 2.0

    def test_tuples_per_assignment_empty(self):
        rel = Relation("answer", ("$s", "P"))
        assert tuples_per_assignment(rel, ["$s"]) == 0.0

    def test_estimate_join_size(self):
        left = RelationStats("l", 100, {"x": 10})
        right = RelationStats("r", 50, {"x": 25})
        # 100 * 50 / max(10, 25) = 200
        assert estimate_join_size(left, right, ["x"]) == pytest.approx(200.0)

    def test_estimate_join_size_cartesian(self):
        left = RelationStats("l", 10, {})
        right = RelationStats("r", 20, {})
        assert estimate_join_size(left, right, []) == 200.0
