"""Workload-generator tests: determinism, schemas, planted ground truth."""

import pytest

from repro.flocks import QueryFlock, evaluate_flock, parse_flock, support_filter
from repro.datalog import atom, negated, rule
from repro.workloads import (
    article_database,
    basket_database,
    generate_articles,
    generate_baskets,
    generate_hub_digraph,
    generate_medical,
    generate_random_digraph,
    generate_webdocs,
    generate_weighted_baskets,
    item_names,
    zipf_weights,
)


class TestZipf:
    def test_weights_decreasing(self):
        w = zipf_weights(10, 1.0)
        assert w == sorted(w, reverse=True)
        assert w[0] == 1.0

    def test_zero_skew_uniform(self):
        assert set(zipf_weights(5, 0.0)) == {1.0}

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)

    def test_item_names_sortable(self):
        names = item_names(100)
        assert names == sorted(names)


class TestBaskets:
    def test_schema(self):
        rel = generate_baskets(50, 20, seed=1)
        assert rel.columns == ("BID", "Item")

    def test_deterministic(self):
        a = generate_baskets(50, 20, seed=42)
        b = generate_baskets(50, 20, seed=42)
        assert a == b

    def test_seed_changes_data(self):
        a = generate_baskets(50, 20, seed=1)
        b = generate_baskets(50, 20, seed=2)
        assert a != b

    def test_every_basket_nonempty(self):
        rel = generate_baskets(100, 30, seed=3)
        assert rel.distinct_count("BID") == 100

    def test_skew_concentrates_popularity(self):
        rel = generate_baskets(300, 100, skew=1.5, seed=4)
        counts = {}
        item_pos = rel.column_position("Item")
        for row in rel.tuples:
            counts[row[item_pos]] = counts.get(row[item_pos], 0) + 1
        top = max(counts.values())
        median = sorted(counts.values())[len(counts) // 2]
        assert top > 5 * median

    def test_weighted_database(self):
        db = generate_weighted_baskets(50, 20, seed=5)
        assert "baskets" in db and "importance" in db
        importance = db.get("importance")
        assert importance.distinct_count("BID") == len(importance)
        weights = importance.column_values("W")
        assert all(1 <= w <= 10 for w in weights)

    def test_basket_database_wrapper(self):
        db = basket_database(20, 10, seed=6)
        assert db.names() == ["baskets"]


class TestMedical:
    def test_schema(self):
        workload = generate_medical(n_patients=100, seed=7)
        assert set(workload.db.names()) == {
            "causes", "diagnoses", "exhibits", "treatments",
        }

    def test_one_disease_per_patient(self):
        workload = generate_medical(n_patients=100, seed=7)
        diagnoses = workload.db.get("diagnoses")
        assert diagnoses.distinct_count("P") == len(diagnoses)

    def test_deterministic(self):
        a = generate_medical(n_patients=50, seed=9)
        b = generate_medical(n_patients=50, seed=9)
        assert a.db.get("exhibits") == b.db.get("exhibits")
        assert a.planted_pairs == b.planted_pairs

    def test_planted_pairs_are_unexplained(self):
        workload = generate_medical(n_patients=200, seed=11)
        db = workload.db
        diagnoses = dict(db.get("diagnoses").tuples)
        treatments = db.get("treatments").tuples
        causes = set(db.get("causes").tuples)
        for symptom, medicine in workload.planted_pairs:
            takers = {p for p, m in treatments if m == medicine}
            assert takers, f"planted medicine {medicine} has no takers"
            for patient in takers:
                disease = diagnoses[patient]
                assert (disease, symptom) not in causes, (
                    f"planted pair ({symptom}, {medicine}) is explained by "
                    f"{disease}"
                )

    def test_flock_recovers_planted_side_effects(self):
        workload = generate_medical(
            n_patients=800, n_planted=2, planted_rate=0.95, seed=13
        )
        query = rule(
            "answer",
            ["P"],
            [
                atom("exhibits", "P", "$s"),
                atom("treatments", "P", "$m"),
                atom("diagnoses", "P", "D"),
                negated("causes", "D", "$s"),
            ],
        )
        flock = QueryFlock(query, support_filter(20, target="P"))
        result = evaluate_flock(workload.db, flock)
        found = {(s, m) for m, s in result.tuples}
        for pair in workload.planted_pairs:
            assert pair in found, f"planted side-effect {pair} not recovered"


class TestWebdocs:
    def test_schema(self):
        workload = generate_webdocs(n_documents=50, n_anchors=100, seed=15)
        assert set(workload.db.names()) == {"inAnchor", "inTitle", "link"}

    def test_ids_disjoint(self):
        workload = generate_webdocs(n_documents=50, n_anchors=100, seed=15)
        docs = workload.db.get("inTitle").column_values("D")
        anchors = workload.db.get("inAnchor").column_values("A")
        assert not docs & anchors

    def test_planted_pairs_ordered(self):
        workload = generate_webdocs(seed=17, n_documents=100, n_anchors=200)
        for a, b in workload.planted_pairs:
            assert a < b

    def test_flock_recovers_planted_topics(self):
        workload = generate_webdocs(
            n_documents=400, n_anchors=800, planted_rate=0.4, seed=19
        )
        flock = parse_flock(
            """
            QUERY:
            answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
            answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND
                         inTitle(D2,$2) AND $1 < $2
            answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND
                         inTitle(D2,$1) AND $1 < $2
            FILTER:
            COUNT(answer(*)) >= 20
            """
        )
        result = evaluate_flock(workload.db, flock)
        found = set(result.tuples)
        recovered = sum(1 for pair in workload.planted_pairs if pair in found)
        assert recovered >= len(workload.planted_pairs) // 2


class TestGraphs:
    def test_random_digraph_no_self_loops(self):
        rel = generate_random_digraph(50, 200, seed=21)
        assert all(u != v for u, v in rel.tuples)

    def test_random_digraph_size(self):
        rel = generate_random_digraph(50, 200, seed=21)
        assert len(rel) == 200

    def test_hub_digraph_hubs_have_many_successors(self):
        db = generate_hub_digraph(n_hubs=5, successors_per_hub=20, seed=23)
        arc = db.get("arc")
        u_pos = arc.column_position("U")
        for hub in range(5):
            successors = sum(1 for row in arc.tuples if row[u_pos] == hub)
            assert successors == 20

    def test_deterministic(self):
        a = generate_hub_digraph(seed=25)
        b = generate_hub_digraph(seed=25)
        assert a.get("arc") == b.get("arc")


class TestText:
    def test_schema_matches_baskets(self):
        rel = generate_articles(n_articles=50, vocabulary=200, seed=27)
        assert rel.columns == ("BID", "Item")

    def test_vocabulary_skew(self):
        rel = generate_articles(
            n_articles=500, vocabulary=1000, words_per_article=20,
            skew=1.1, seed=29,
        )
        # Most vocabulary words should appear in < 20 articles (the
        # long tail the a-priori pre-filter eliminates).
        counts = {}
        item_pos = rel.column_position("Item")
        for row in rel.tuples:
            counts[row[item_pos]] = counts.get(row[item_pos], 0) + 1
        rare = sum(1 for c in counts.values() if c < 20)
        assert rare / len(counts) > 0.7

    def test_article_database(self):
        db = article_database(n_articles=20, vocabulary=100, seed=31)
        assert db.names() == ["baskets"]
