"""The shared-memory transport: publish/attach, wire packing, and
exception round-trips across the pool boundary."""

import pickle

import pytest

from repro.engine import shm
from repro.engine.parallel import _pack_survivors, _unpack_survivors
from repro.errors import (
    BudgetExceededError,
    EvaluationError,
    ExecutionAborted,
    ExecutionCancelled,
    HungWorkerError,
    ParseError,
)
from repro.relational import ValueDictionary, database_from_dict
from repro.relational.relation import Relation


@pytest.fixture
def db():
    return database_from_dict(
        {
            "r": (("A", "B"), [(1, "x"), (2, "y"), (3, "x"), (1, "z")]),
            "s": (("B",), [("x",), ("q",)]),
            "empty": (("C", "D"), []),
        }
    )


class TestSharedCatalog:
    def test_publish_attach_round_trip(self, db):
        catalog = shm.publish(db)
        assert catalog is not None
        try:
            # The descriptor — not the data — is what crosses processes.
            descriptor = pickle.loads(pickle.dumps(catalog.descriptor))
            worker_db = shm.attach(descriptor)
            assert worker_db is not None
            for name in db.names():
                original = db.get(name)
                rebuilt = worker_db.get(name)
                assert rebuilt.columns == original.columns
                assert set(rebuilt.tuples) == set(original.tuples)
                assert rebuilt.is_encoded
            # Codes agree across the boundary: same dictionary prefix.
            assert worker_db.dictionary.values == db.dictionary.values
        finally:
            catalog.close()

    def test_descriptor_sizes(self, db):
        catalog = shm.publish(db)
        assert catalog is not None
        try:
            descriptor = catalog.descriptor
            total = sum(
                layout.count * len(layout.columns)
                for layout in descriptor.relations
            )
            assert descriptor.total_slots == total
            assert descriptor.nbytes == total * 8
        finally:
            catalog.close()

    def test_close_is_idempotent(self, db):
        catalog = shm.publish(db)
        assert catalog is not None
        catalog.close()
        catalog.close()

    def test_attach_missing_segment_returns_none(self, db):
        catalog = shm.publish(db)
        assert catalog is not None
        descriptor = catalog.descriptor
        catalog.close()
        assert shm.attach(descriptor) is None

    def test_publish_unavailable_falls_back(self, db, monkeypatch):
        monkeypatch.setattr(shm, "shared_memory", None)
        assert shm.publish(db) is None


class TestWirePacking:
    def test_encoded_survivors_ship_as_code_buffers(self):
        dictionary = ValueDictionary()
        relation = Relation("t", ("A", "B"), [(1, "x"), (2, "y")])
        relation.encode_with(dictionary)
        packed = _pack_survivors(relation, dictionary.snapshot_size())
        assert packed[0] == "codes"
        columns, rows = _unpack_survivors(packed, dictionary)
        assert columns == ("A", "B")
        assert set(rows) == {(1, "x"), (2, "y")}

    def test_worker_local_codes_fall_back_to_rows(self):
        parent = ValueDictionary(["seeded"])
        worker = ValueDictionary(["seeded"])
        relation = Relation("t", ("A",), [("seeded",), ("fresh",)])
        relation.encode_with(worker)  # "fresh" interned past the prefix
        packed = _pack_survivors(relation, parent.snapshot_size())
        assert packed[0] == "rows"
        columns, rows = _unpack_survivors(packed, parent)
        assert set(rows) == {("seeded",), ("fresh",)}

    def test_empty_relation_round_trips(self):
        dictionary = ValueDictionary()
        relation = Relation("t", ("A",), set())
        relation.encode_with(dictionary)
        packed = _pack_survivors(relation, dictionary.snapshot_size())
        columns, rows = _unpack_survivors(packed, dictionary)
        assert columns == ("A",) and rows == []

    def test_unencoded_relation_ships_rows(self):
        relation = Relation("t", ("A",), [(1,)])
        packed = _pack_survivors(relation, 10)
        assert packed[0] == "rows"


class TestExceptionPickling:
    """ReproError subclasses must cross the process-pool boundary with
    their extra attributes intact (traces excepted — those are
    evaluation-local and re-attached by the parent)."""

    def test_keyword_only_constructors_round_trip(self):
        cases = [
            ParseError("bad", "some text", 4),
            EvaluationError("boom", sql="SELECT 1"),
            HungWorkerError("stuck", pending=3),
            ExecutionAborted("stop", node="join:r"),
            BudgetExceededError("over", node="scan", limit="seconds"),
            ExecutionCancelled("bye", node="wait"),
        ]
        for error in cases:
            clone = pickle.loads(pickle.dumps(error))
            assert type(clone) is type(error)
            assert clone.args == error.args
        parsed = pickle.loads(pickle.dumps(cases[0]))
        assert (parsed.text, parsed.position) == ("some text", 4)
        assert pickle.loads(pickle.dumps(cases[1])).sql == "SELECT 1"
        assert pickle.loads(pickle.dumps(cases[2])).pending == 3
        budget = pickle.loads(pickle.dumps(cases[4]))
        assert (budget.limit, budget.node) == ("seconds", "scan")

    def test_trace_is_dropped_in_transit(self):
        error = ExecutionAborted(
            "stop", trace=object(), node="n"  # deliberately unpicklable
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.trace is None
        assert clone.node == "n"
