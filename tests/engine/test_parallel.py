"""The morsel-driven parallel executor and its partitioning scheme.

Covers the partitioning primitives (stable hashing, column choice, scan
restriction), the Partition/Merge IR checks, the SQL rendering of
partition predicates, bit-identical thread/process execution, guard
propagation into workers, and the graceful degradation paths (worker
death -> serial re-run, recorded as a mining downgrade).
"""

import dataclasses

import pytest

from repro.engine import (
    Merge,
    ParallelExecutor,
    Partition,
    choose_partition_column,
    partition_step,
    resolve_jobs,
    stable_hash,
)
from repro.engine.memory import MemoryEngine
from repro.engine.parallel import clamp_default_jobs, merged_relation
from repro.engine.partition import (
    partition_index,
    partition_rows,
    restrict_to_partition,
    step_cost_estimate,
)
from repro.engine.sqlgen import column_source, render_step
from repro.analysis.schema import check_physical_plan
from repro.errors import (
    BudgetExceededError,
    ExecutionCancelled,
    PlanError,
)
from repro.flocks import QueryFlock, parse_filter
from repro.flocks.executor import lower_filter_step
from repro.flocks.mining import mine
from repro.flocks.plans import single_step_plan
from repro.guard import CancellationToken, ResourceBudget
from repro.datalog import atom, comparison, rule
from repro.relational.relation import Relation
from repro.testing import faults
from repro.testing.faults import WorkerKill
from repro.workloads import article_database


# ----------------------------------------------------------------------
# Fixtures: a basket-pair flock over a corpus big enough to partition
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def word_db():
    return article_database(
        n_articles=60, vocabulary=900, words_per_article=30,
        skew=0.8, seed=13,
    )


@pytest.fixture(scope="module")
def pair_flock():
    query = rule(
        "answer",
        ["B"],
        [atom("baskets", "B", "$1"), atom("baskets", "B", "$2"),
         comparison("$1", "<", "$2")],
    )
    return QueryFlock(query, parse_filter("COUNT(answer.B) >= 4"))


@pytest.fixture(scope="module")
def pair_plan(word_db, pair_flock):
    step = single_step_plan(pair_flock, name="flock").final_step
    return lower_filter_step(word_db, pair_flock, step)


def serial_result(db, plan):
    engine = MemoryEngine(db)
    answer = engine.run_answer(plan)
    return engine.run_survivors(answer, plan), len(answer)


# ----------------------------------------------------------------------
# Partitioning primitives
# ----------------------------------------------------------------------


class TestStableHash:
    def test_process_independent(self):
        """The documented CRC-32-of-repr contract (the builtin ``hash``
        is seed-randomized per process and must not be used)."""
        import zlib

        for value in ("word01", 42, ("a", 1), None, 3.5):
            assert stable_hash(value) == zlib.crc32(
                repr(value).encode("utf-8")
            )

    def test_every_value_lands_in_range(self):
        for value in ("x", 0, -1, 2.5, ("t", "u")):
            for parts in (2, 3, 8):
                assert 0 <= partition_index(value, parts) < parts


class TestChoosePartitionColumn:
    def test_group_key_bound_in_branch(self, pair_plan):
        column = choose_partition_column(pair_plan)
        assert column in pair_plan.group.group_by

    def test_none_when_no_group_key_is_bound(self, pair_plan):
        """A step whose group keys appear in no branch scan cannot be
        partitioned (nothing guarantees complete, disjoint groups)."""
        group = dataclasses.replace(
            pair_plan.group, group_by=("NotAColumn",)
        )
        broken = dataclasses.replace(pair_plan, group=group)
        assert choose_partition_column(broken) is None
        assert partition_step(broken, 4) is None

    def test_fewer_than_two_parts_refuses(self, pair_plan):
        assert partition_step(pair_plan, 1) is None


class TestRestriction:
    def test_partitions_cover_and_are_disjoint(self):
        relation = Relation(
            "r", ("B", "I"),
            {(f"b{i}", i % 7) for i in range(200)},
        )
        parts = 4
        slices = [
            restrict_to_partition(relation, "B", parts, index)
            for index in range(parts)
        ]
        assert sum(len(s) for s in slices) == len(relation)
        union = set()
        for s in slices:
            assert not (union & s.tuples)
            union |= s.tuples
        assert union == relation.tuples

    def test_restriction_matches_hash(self):
        relation = Relation("r", ("B",), {(f"b{i}",) for i in range(50)})
        kept = restrict_to_partition(relation, "B", 3, 1)
        assert all(
            stable_hash(b) % 3 == 1 for (b,) in kept.tuples
        )

    def test_missing_column_is_identity(self):
        relation = Relation("r", ("X",), {(1,), (2,)})
        assert restrict_to_partition(relation, "B", 4, 0) is relation

    def test_partition_rows_groups_stay_whole(self):
        relation = Relation(
            "r", ("B", "I"),
            {(f"b{i % 10}", i) for i in range(100)},
        )
        slices = partition_rows(relation, "B", 4)
        assert sum(len(s) for s in slices) == len(relation)
        for value in {row[0] for row in relation.tuples}:
            homes = [
                i for i, s in enumerate(slices)
                if any(row[0] == value for row in s.tuples)
            ]
            assert len(homes) == 1  # one group, one slice


class TestMergedRelation:
    def test_canonical_order_and_dedup(self):
        merged = merged_relation(
            "m", ("A",), [(2,), (1,), (2,), (3,)]
        )
        assert merged.tuples == {(1,), (2,), (3,)}
        # canonical column arrays: repr-sorted, duplicates collapsed
        assert merged.columns_data()[0] == [1, 2, 3]

    def test_empty(self):
        merged = merged_relation("m", ("A", "B"), [])
        assert len(merged) == 0
        assert merged.columns == ("A", "B")


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(2) == 2

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4

    def test_garbage_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert resolve_jobs() == 1

    def test_floor_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == 1
        assert resolve_jobs() == 1


class TestClampDefaultJobs:
    """Defaulted worker counts are clamped to the machine's cores."""

    @pytest.fixture
    def two_cores(self, monkeypatch):
        import repro.engine.parallel as parallel_module

        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 2)

    def test_within_cores_is_untouched(self, two_cores):
        assert clamp_default_jobs(2) == (2, None)
        assert clamp_default_jobs(1) == (1, None)

    def test_oversubscription_is_clamped_with_reason(self, two_cores):
        effective, reason = clamp_default_jobs(16)
        assert effective == 2
        assert "16" in reason and "2" in reason

    def test_unknown_core_count_trusts_the_request(self, monkeypatch):
        import repro.engine.parallel as parallel_module

        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: None)
        assert clamp_default_jobs(64) == (64, None)

    def test_env_default_records_a_downgrade(
        self, monkeypatch, word_db, pair_flock
    ):
        """REPRO_JOBS far above the core count: mine() keeps the
        requested number in the report but runs clamped, recording a
        parallelism downgrade."""
        import repro.engine.parallel as parallel_module

        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 2)
        monkeypatch.setenv("REPRO_JOBS", "64")
        _, report = mine(word_db, pair_flock, strategy="optimized")
        assert report.parallelism_requested == 64
        clamps = [d for d in report.downgrades if d.kind == "parallelism"]
        assert clamps and clamps[0].from_name == "64 jobs"
        assert clamps[0].to_name == "2 jobs"

    def test_explicit_parallelism_is_never_clamped(
        self, monkeypatch, word_db, pair_flock
    ):
        import repro.engine.parallel as parallel_module

        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 1)
        _, report = mine(
            word_db, pair_flock, strategy="optimized", parallelism=2
        )
        assert report.parallelism_requested == 2
        assert not [d for d in report.downgrades if d.kind == "parallelism"]


# ----------------------------------------------------------------------
# The Partition/Merge IR under the schema checker
# ----------------------------------------------------------------------


class TestSchemaChecker:
    def test_accepts_every_partitioned_plan(self, word_db, pair_plan):
        plan = partition_step(pair_plan, 4, db=word_db)
        assert plan is not None
        report = check_physical_plan(plan, db=word_db)
        assert report.ok, [str(d) for d in report.errors]

    def test_rejects_nonpositive_parts(self, pair_plan):
        plan = partition_step(pair_plan, 4)
        bad = dataclasses.replace(
            plan, partition=Partition(column=plan.partition.column, parts=0)
        )
        report = check_physical_plan(bad)
        assert "ir-partition-parts" in {d.code for d in report.errors}

    def test_rejects_non_group_key_column(self, pair_plan):
        plan = partition_step(pair_plan, 4)
        bad = dataclasses.replace(
            plan, partition=Partition(column="NotAKey", parts=4)
        )
        report = check_physical_plan(bad)
        assert "ir-partition-column" in {d.code for d in report.errors}

    def test_rejects_merge_schema_mismatch(self, pair_plan):
        plan = partition_step(pair_plan, 4)
        bad = dataclasses.replace(plan, merge=Merge(columns=("wrong",)))
        report = check_physical_plan(bad)
        assert "ir-merge-columns" in {d.code for d in report.errors}

    def test_partition_step_verifies_under_ambient_switch(self, pair_plan):
        """partition_step itself schema-checks when verification is on
        (the autouse fixture arms it), so a malformed wrap cannot even
        be built."""
        group = dataclasses.replace(pair_plan.group, group_by=())
        headless = dataclasses.replace(pair_plan, group=group)
        with pytest.raises(PlanError):
            partition_step(headless, 4, column="$1")


# ----------------------------------------------------------------------
# SQL rendering of the partition predicate
# ----------------------------------------------------------------------


class TestPartitionSQL:
    def test_predicate_in_where(self, word_db, pair_plan):
        sql = render_step(
            pair_plan, column_source(word_db, {}),
            partition=("B", 8, 3),
        )
        assert "repro_partition(" in sql
        assert "% 8 = 3" in sql

    def test_unbound_column_is_a_plan_error(self, word_db, pair_plan):
        with pytest.raises(PlanError):
            render_step(
                pair_plan, column_source(word_db, {}),
                partition=("Nowhere", 8, 3),
            )

    def test_sqlite_partitions_union_to_serial(self, word_db, pair_flock):
        from repro.flocks.sqlbackend import SQLiteBackend

        with SQLiteBackend(word_db) as backend:
            serial = backend.evaluate_flock(pair_flock)
            parallel = ParallelExecutor(4, word_db)
            merged = backend.evaluate_flock(pair_flock, parallel=parallel)
        assert merged.tuples == serial.tuples
        assert parallel.ran_parallel


# ----------------------------------------------------------------------
# The executor: modes, determinism, guards
# ----------------------------------------------------------------------


class TestParallelExecutor:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_bit_identical_to_serial(self, word_db, pair_plan, mode):
        expected, expected_answer = serial_result(word_db, pair_plan)
        with ParallelExecutor(2, word_db, mode=mode) as executor:
            outcome = executor.run_step(pair_plan)
        assert outcome.mode == mode
        assert outcome.answer_tuples == expected_answer
        assert outcome.result.tuples == expected.tuples
        # canonical merge: the column *arrays* match too
        assert outcome.result.columns_data() == expected.columns_data()
        assert sum(outcome.partition_sizes) == expected_answer

    def test_aggregate_path_matches_group_filter(self, word_db, pair_plan):
        engine = MemoryEngine(word_db)
        answer = engine.run_answer(pair_plan)
        expected = engine.run_group_filter(answer, pair_plan)
        with ParallelExecutor(2, word_db, mode="thread") as executor:
            outcome = executor.run_step(pair_plan, need_aggregates=True)
        assert outcome.passed is not None
        assert outcome.passed.columns == expected.columns
        assert outcome.passed.tuples == expected.tuples

    def test_jobs_one_runs_serial(self, word_db, pair_plan):
        with ParallelExecutor(1, word_db) as executor:
            outcome = executor.run_step(pair_plan)
        assert outcome.mode == "serial"
        assert not executor.ran_parallel

    def test_auto_picks_thread_for_small_estimates(self, word_db, pair_plan):
        assert step_cost_estimate(pair_plan) < 10**12
        with ParallelExecutor(
            2, word_db, mode="auto", process_threshold=10**12
        ) as executor:
            outcome = executor.run_step(pair_plan)
        assert outcome.mode == "thread"

    def test_cancellation_aborts_the_wait_loop(self, word_db, pair_plan):
        token = CancellationToken()
        token.cancel()
        guard = ResourceBudget(seconds=None).start(cancel=token)
        with ParallelExecutor(
            2, word_db, guard=guard, mode="thread"
        ) as executor:
            with pytest.raises(ExecutionCancelled):
                executor.run_step(pair_plan)

    def test_budget_propagates_into_process_workers(self, word_db, pair_plan):
        guard = ResourceBudget(max_intermediate_rows=5).start()
        with ParallelExecutor(
            2, word_db, guard=guard, mode="process"
        ) as executor:
            with pytest.raises(BudgetExceededError) as exc:
                executor.run_step(pair_plan)
        assert exc.value.limit == "intermediate_rows"


# ----------------------------------------------------------------------
# Degradation: killed workers fall back to serial, visibly
# ----------------------------------------------------------------------


@pytest.fixture
def clean_faults():
    faults.reset_faults()
    yield
    faults.reset_faults()


@pytest.mark.faults
class TestWorkerDeath:
    def test_thread_worker_kill_salvages_failed_partition(
        self, clean_faults, word_db, pair_plan
    ):
        """One killed morsel out of four: the healthy outputs are kept
        and only the failed partition re-runs serially in the parent."""
        expected, _ = serial_result(word_db, pair_plan)
        with ParallelExecutor(2, word_db, mode="thread") as executor:
            with faults.inject("parallel.worker", WorkerKill, times=1):
                outcome = executor.run_step(pair_plan)
        assert outcome.mode == "thread"
        assert outcome.result.tuples == expected.tuples
        assert executor.downgrades
        assert "re-ran serially" in executor.downgrades[0]
        assert "1 of" in executor.downgrades[0]

    def test_thread_worker_kill_all_degrades_to_serial(
        self, clean_faults, word_db, pair_plan
    ):
        """Every morsel killed: nothing to salvage around, so the whole
        step takes the full-serial rung."""
        expected, _ = serial_result(word_db, pair_plan)
        with ParallelExecutor(2, word_db, mode="thread") as executor:
            with faults.inject("parallel.worker", WorkerKill):
                outcome = executor.run_step(pair_plan)
        assert outcome.mode == "serial"
        assert outcome.result.tuples == expected.tuples
        assert executor.downgrades
        assert "re-ran serially" in executor.downgrades[0]

    def test_process_worker_death_breaks_pool_then_degrades(
        self, clean_faults, word_db, pair_plan
    ):
        """WorkerKill in a pool process is a real ``os._exit`` — the
        parent sees BrokenProcessPool, rebuilds later, and the step
        re-runs serially with the downgrade recorded."""
        expected, _ = serial_result(word_db, pair_plan)
        with ParallelExecutor(2, word_db, mode="process") as executor:
            with faults.inject("parallel.worker", WorkerKill):
                outcome = executor.run_step(pair_plan)
            assert outcome.mode == "serial"
            assert outcome.result.tuples == expected.tuples
            assert any(
                "BrokenProcessPool" in reason
                for reason in executor.downgrades
            )
            # the pool was torn down; the next step transparently
            # rebuilds it and runs parallel again
            healed = executor.run_step(pair_plan)
        assert healed.mode == "process"
        assert healed.result.tuples == expected.tuples

    def test_mine_records_parallelism_downgrade(
        self, clean_faults, word_db, pair_flock
    ):
        serial, _ = mine(
            word_db, pair_flock, strategy="naive", parallelism=1
        )
        with faults.inject("parallel.worker", WorkerKill, times=1):
            relation, report = mine(
                word_db, pair_flock, strategy="naive", parallelism=2
            )
        assert relation.tuples == serial.tuples
        kinds = {d.kind for d in report.downgrades}
        assert "parallelism" in kinds
        assert report.parallelism_requested == 2

    def test_sqlite_worker_failure_degrades(
        self, clean_faults, word_db, pair_flock
    ):
        from repro.flocks.sqlbackend import SQLiteBackend

        with SQLiteBackend(word_db) as backend:
            serial = backend.evaluate_flock(pair_flock)
            parallel = ParallelExecutor(2, word_db)
            with faults.inject("parallel.worker", WorkerKill, times=1):
                merged = backend.evaluate_flock(
                    pair_flock, parallel=parallel
                )
        assert merged.tuples == serial.tuples
        assert parallel.downgrades
        assert "SQL worker failure" in parallel.downgrades[0]


# ----------------------------------------------------------------------
# The hung-worker watchdog: overdue morsels are cancelled, not waited on
# ----------------------------------------------------------------------


@pytest.mark.faults
class TestWatchdog:
    def test_hung_morsel_is_cancelled_and_salvaged(
        self, clean_faults, word_db, pair_plan
    ):
        """One morsel stalls far past the allowance: the watchdog
        cancels it, the healthy outputs are kept, and the stalled
        partition re-runs serially in the parent — bit-identical."""
        expected, _ = serial_result(word_db, pair_plan)
        with ParallelExecutor(
            2, word_db, mode="thread", watchdog=0.3
        ) as executor:
            with faults.inject(
                "parallel.hang", lambda: faults.Hang(2.0), times=1
            ):
                outcome = executor.run_step(pair_plan)
        assert outcome.mode == "thread"
        assert outcome.result.tuples == expected.tuples
        assert executor.watchdog_events
        assert "overdue" in executor.watchdog_events[0]
        assert "re-run serially" in executor.watchdog_events[0]

    def test_all_morsels_hung_degrades_to_serial(
        self, clean_faults, word_db, pair_plan
    ):
        """Every morsel stalled: nothing to salvage around, so the
        whole step re-runs serially (the full-serial rung)."""
        expected, _ = serial_result(word_db, pair_plan)
        with ParallelExecutor(
            2, word_db, mode="thread", watchdog=0.2
        ) as executor:
            with faults.inject("parallel.hang", lambda: faults.Hang(2.0)):
                outcome = executor.run_step(pair_plan)
        assert outcome.mode == "serial"
        assert outcome.result.tuples == expected.tuples
        assert executor.downgrades

    def test_no_watchdog_without_deadline(self, word_db, pair_plan):
        """No guard deadline and no explicit allowance: morsels may run
        arbitrarily long; the collection loop must not impose one."""
        with ParallelExecutor(2, word_db, mode="thread") as executor:
            assert executor._morsel_deadline() is None

    def test_guard_budget_derives_allowance(self, word_db, pair_plan):
        guard = ResourceBudget(seconds=10.0).start()
        with ParallelExecutor(
            2, word_db, mode="thread", guard=guard
        ) as executor:
            allowance = executor._morsel_deadline()
        assert allowance is not None
        assert 0 < allowance <= 5.0  # half the remaining budget

    def test_mine_surfaces_watchdog_downgrade(
        self, clean_faults, word_db, pair_flock
    ):
        """End to end: a stalled morsel inside mine() is detected from
        the guard-derived allowance, salvaged serially, and reported as
        a kind="watchdog" downgrade — with the answer bit-identical."""
        serial, _ = mine(
            word_db, pair_flock, strategy="naive", parallelism=1
        )
        with faults.inject(
            "parallel.hang", lambda: faults.Hang(4.0), times=1
        ):
            relation, report = mine(
                word_db, pair_flock, strategy="naive", parallelism=2,
                budget=ResourceBudget(seconds=3.0),
            )
        assert relation.tuples == serial.tuples
        watchdog = [d for d in report.downgrades if d.kind == "watchdog"]
        assert watchdog
        assert watchdog[0].to_name == "serial salvage"
        assert "overdue" in watchdog[0].reason


# ----------------------------------------------------------------------
# mine() end to end, every strategy, both backends
# ----------------------------------------------------------------------


STRATEGIES = ["naive", "optimized", "dynamic", "stats"]


class TestMineParallel:
    @pytest.fixture(scope="class")
    def expected(self, word_db, pair_flock):
        relation, _ = mine(
            word_db, pair_flock, strategy="naive", parallelism=1
        )
        return relation

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_matches_serial(
        self, word_db, pair_flock, expected, strategy, backend
    ):
        relation, report = mine(
            word_db, pair_flock, strategy=strategy, backend=backend,
            parallelism=3,
        )
        assert relation.tuples == expected.tuples
        assert report.parallelism_requested == 3

    def test_report_mentions_parallelism(self, word_db, pair_flock):
        _, report = mine(
            word_db, pair_flock, strategy="naive", parallelism=2
        )
        assert report.parallelism_used == 2
        assert "parallelism: 2 jobs" in str(report)

    def test_session_passthrough_and_override(self, word_db, pair_flock):
        from repro.session import MiningSession

        with MiningSession(word_db, parallelism=2) as session:
            relation, report = session.mine(pair_flock)
            assert report.parallelism_requested == 2
            again, report2 = session.mine(pair_flock, parallelism=1)
        assert again.tuples == relation.tuples
        assert report2.parallelism_requested == 1

    def test_repro_jobs_env(self, word_db, pair_flock, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        _, report = mine(word_db, pair_flock, strategy="naive")
        assert report.parallelism_requested == 2
