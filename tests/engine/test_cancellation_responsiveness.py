"""Kernel loops must notice cancellation *between* iterations.

The conlint cancellation pass statically requires every hot loop in the
engine to poll the guard; these tests pin the runtime behavior those
checkpoints buy.  A cancel that lands mid-loop (after the first filter
or aggregate of several) must abort before the next iteration runs —
before the in-loop checkpoints, the whole loop finished first and the
cancel was only seen at the stage boundary.
"""

from __future__ import annotations

import pytest

import repro.engine.memory as memory_module
from repro.datalog import atom, rule
from repro.engine.memory import MemoryEngine
from repro.errors import ExecutionCancelled
from repro.flocks import QueryFlock, parse_filter
from repro.flocks.filters import plan_aggregate_specs
from repro.flocks.naive import _target_resolver, flock_answer_relation
from repro.guard import CancellationToken, ExecutionGuard
from repro.relational import database_from_dict


@pytest.fixture
def db():
    return database_from_dict(
        {"r": (("B", "I"), {(b, i) for b in range(4) for i in range(3)})}
    )


def composite_flock():
    query = rule("answer", ["B"], [atom("r", "B", "$1")])
    return QueryFlock(
        query,
        parse_filter("COUNT(answer.B) >= 1 AND SUM(answer.B) >= 1"),
    )


def test_group_filter_aborts_between_aggregates(db, monkeypatch):
    """Cancel lands after the first of two aggregate kernels: the
    second must never run."""
    flock = composite_flock()
    answer = flock_answer_relation(db, flock)
    aggregates, conditions = plan_aggregate_specs(
        flock.filter, _target_resolver(flock, answer)
    )
    assert len(aggregates) == 2  # COUNT and SUM conjuncts

    cancel = CancellationToken()
    calls = []
    real_group_aggregate = memory_module.group_aggregate

    def cancelling_aggregate(*args, **kwargs):
        calls.append(1)
        cancel.cancel()  # the client goes away mid-kernel
        return real_group_aggregate(*args, **kwargs)

    monkeypatch.setattr(
        memory_module, "group_aggregate", cancelling_aggregate
    )
    engine = MemoryEngine(db, guard=ExecutionGuard(cancel=cancel))
    with pytest.raises(ExecutionCancelled):
        engine.group_filter(
            answer, list(flock.parameter_columns), aggregates, conditions,
            name="flock",
        )
    assert len(calls) == 1  # aborted before the second aggregate


def test_group_filter_unguarded_engine_still_completes(db):
    flock = composite_flock()
    answer = flock_answer_relation(db, flock)
    aggregates, conditions = plan_aggregate_specs(
        flock.filter, _target_resolver(flock, answer)
    )
    result = MemoryEngine(db).group_filter(
        answer, list(flock.parameter_columns), aggregates, conditions,
        name="flock",
    )
    assert len(result) > 0
