"""Physical-IR regression tests.

The load-bearing guarantee of the engine layer: ``repro explain`` output
is rendered from the *same* :class:`PhysicalPlan` object the engine
executes, so the join order it names is — by construction, and checked
here — exactly the order the joins run in.
"""

import pytest

from repro.engine import MemoryEngine, lower_rule
from repro.engine.planner import complete_order
from repro.errors import EvaluationError
from repro.guard import ExecutionGuard
from repro.relational.evaluate import evaluate_conjunctive
from repro.relational.explain import explain_conjunctive
from repro.workloads import generate_medical


@pytest.fixture(scope="module")
def medical():
    return generate_medical(n_patients=120, seed=7)


def rendered_atom_predicates(text: str) -> list[str]:
    """The predicates of the scan/join lines of an explain rendering,
    in the order they appear."""
    predicates = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("scan ") or stripped.startswith("join "):
            atom_text = stripped.split(None, 1)[1]
            predicates.append(atom_text.split("(", 1)[0])
    return predicates


class TestExplainNamesExecutedOrder:
    """Satellite regression: explain output == executed join order."""

    @pytest.mark.parametrize("strategy", ["greedy", "selinger"])
    def test_render_is_the_executed_plan(
        self, medical, medical_query, strategy
    ):
        db = medical.db
        plan = lower_rule(db, medical_query, order_strategy=strategy)

        # explain_conjunctive renders the same lowering — byte identical.
        assert (
            explain_conjunctive(db, medical_query, order_strategy=strategy)
            == plan.render()
        )
        assert f"({strategy} join order)" in plan.render()

        # Execute the very same plan object; the guard trace records one
        # row per join stage, in execution order.
        guard = ExecutionGuard()
        MemoryEngine(db, guard=guard).run_plan(plan)
        executed = [step.name for step in guard.trace.steps]
        assert executed == [stage.node for stage in plan.stages]

        # And the explain text names that exact order.
        assert rendered_atom_predicates(plan.render()) == [
            name.split(":", 1)[1] for name in executed
        ]

    def test_greedy_and_selinger_agree_on_answers(
        self, medical, medical_query
    ):
        db = medical.db
        greedy = evaluate_conjunctive(db, medical_query)
        selinger = evaluate_conjunctive(
            db, medical_query, order_strategy="selinger"
        )
        assert greedy == selinger


class TestLowering:
    def test_first_stage_has_no_join(self, medical, medical_query):
        plan = lower_rule(medical.db, medical_query)
        assert plan.stages[0].join is None
        assert all(stage.join is not None for stage in plan.stages[1:])

    def test_explicit_order_must_be_permutation(self, medical, medical_query):
        with pytest.raises(EvaluationError, match="not a permutation"):
            lower_rule(medical.db, medical_query, join_order=[0, 0, 1])

    def test_unknown_strategy_rejected(self, medical, medical_query):
        with pytest.raises(ValueError, match="unknown order strategy"):
            lower_rule(medical.db, medical_query, order_strategy="magic")

    def test_negation_attached_once(self, medical, medical_query):
        plan = lower_rule(medical.db, medical_query)
        anti_joins = [
            op
            for stage in plan.stages
            for op in stage.filters
            if type(op).__name__ == "AntiJoin"
        ] + [
            op for op in plan.unit_filters if type(op).__name__ == "AntiJoin"
        ]
        assert len(anti_joins) == 1

    def test_explicit_order_is_followed(self, medical, medical_query):
        order = [2, 0, 1]
        plan = lower_rule(medical.db, medical_query, join_order=order)
        assert list(plan.order) == order
        assert plan.order_strategy == "explicit"


class TestReplanning:
    def test_complete_order_keeps_prefix(self, medical, medical_query):
        positives = medical_query.positive_atoms()
        order = complete_order(medical.db, positives, [2], 5)
        assert order[0] == 2
        assert sorted(order) == list(range(len(positives)))

    def test_completed_order_lowers(self, medical, medical_query):
        positives = medical_query.positive_atoms()
        order = complete_order(medical.db, positives, [1], 100)
        plan = lower_rule(medical.db, medical_query, join_order=order)
        guard = ExecutionGuard()
        result = MemoryEngine(medical.db, guard=guard).run_plan(plan)
        assert result == evaluate_conjunctive(medical.db, medical_query)
