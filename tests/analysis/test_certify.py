"""Legality certificates: witnesses, certification, independent re-checking.

The acceptance bar of the verifier: every pre-filter step of a plan the
optimized or dynamic strategies would use carries a certificate whose
containment witness ``verify_certificate`` re-validates — and a
hand-built illegal plan is rejected with a diagnostic naming the step
and the violated rule.
"""

import dataclasses

import pytest

from repro.analysis import (
    HomomorphismWitness,
    SubgoalSubsetWitness,
    certify_plan,
    certify_step_bound,
    find_witness,
    verify_certificate,
    verify_witness,
)
from repro.datalog import SafetyReport, as_union, atom, comparison, rule
from repro.errors import FilterError, PlanError
from repro.flocks import (
    FilterStep,
    FlockOptimizer,
    QueryFlock,
    QueryPlan,
    evaluate_flock_dynamic,
    fig3_flock,
    fig5_plan,
    mine,
    optimize_union,
    parse_filter,
    single_step_plan,
)


def make_step(name, query):
    """A FilterStep over ``query`` with its parameters auto-declared."""
    params = tuple(sorted(as_union(query).parameters(), key=str))
    return FilterStep(name, params, query)


class TestFindWitness:
    def test_pure_cq_gets_homomorphism(self, basket_query):
        subquery = basket_query.with_body_subset([0])
        witness = find_witness(subquery, basket_query)
        assert isinstance(witness, HomomorphismWitness)
        assert verify_witness(subquery, basket_query, witness)

    def test_arithmetic_gets_klug(self, basket_query_ordered):
        subquery = basket_query_ordered.with_body_subset([0, 1])
        witness = find_witness(subquery, basket_query_ordered)
        # Dropping only the comparison keeps both rules pure of negation,
        # so Klug's sound-and-complete test applies.
        assert witness is not None
        assert witness.kind in ("homomorphism", "klug")
        assert verify_witness(subquery, basket_query_ordered, witness)

    def test_negation_gets_subgoal_subset(self, medical_query):
        subquery = medical_query.with_body_subset([0, 2, 3])
        witness = find_witness(subquery, medical_query)
        assert isinstance(witness, SubgoalSubsetWitness)
        assert [sg.predicate for sg in witness.deleted] == ["treatments"]
        assert verify_witness(subquery, medical_query, witness)

    def test_non_containing_subquery_has_no_witness(self, basket_query):
        foreign = rule("answer", ["B"], [atom("other", "B", "$1")])
        assert find_witness(foreign, basket_query) is None

    def test_wrong_witness_kind_rejected(self, medical_query):
        subquery = medical_query.with_body_subset([0, 2, 3])
        # A homomorphism claim is meaningless with negation present.
        assert not verify_witness(
            subquery, medical_query, HomomorphismWitness(())
        )

    def test_wrong_deleted_set_rejected(self, medical_query):
        subquery = medical_query.with_body_subset([0, 2, 3])
        bogus = SubgoalSubsetWitness((medical_query.body[0],))
        assert not verify_witness(subquery, medical_query, bogus)


class TestCertifyLegalPlans:
    def test_optimizer_plan_is_certified(self):
        from repro.flocks import itemset_flock
        from repro.workloads import basket_database

        db = basket_database(n_baskets=300, n_items=150, avg_basket_size=6,
                             skew=1.3, seed=7)
        flock = itemset_flock(2, support=20)
        scored = FlockOptimizer(db, flock).best_plan()
        certificate = scored.certificate
        assert certificate is not None and certificate.ok
        assert certificate.prefilter_steps  # the a-priori rewrite fired
        for step in certificate.prefilter_steps:
            for branch in step.branches:
                assert branch.witness is not None
                assert branch.safety.is_safe
        assert verify_certificate(certificate).is_clean

    def test_fig5_plan_certificate(self):
        flock = fig3_flock(support=2)
        plan = fig5_plan(flock, support=2)
        certificate = certify_plan(flock, plan)
        assert certificate.ok
        kinds = {
            branch.witness.kind
            for step in certificate.prefilter_steps
            for branch in step.branches
        }
        # Negation in the flock rule: the paper's subgoal-subset
        # criterion is the only sound containment argument.
        assert kinds == {"subgoal-subset"}
        assert verify_certificate(certificate).is_clean
        assert "witness=" in certificate.render()

    def test_union_plan_has_one_branch_per_rule(
        self, small_web_db, web_flock
    ):
        plan = optimize_union(small_web_db, web_flock)
        certificate = certify_plan(web_flock, plan)
        assert certificate.ok
        for step in certificate.steps:
            assert len(step.branches) == len(web_flock.rules)
        assert verify_certificate(certificate).is_clean

    def test_single_step_plan_has_no_prefilter_steps(self, basket_flock):
        certificate = certify_plan(basket_flock, single_step_plan(basket_flock))
        assert certificate.ok
        assert certificate.prefilter_steps == ()
        assert verify_certificate(certificate).is_clean

    def test_mine_attaches_certificate(self, small_basket_db, basket_flock):
        _result, report = mine(
            small_basket_db, basket_flock, strategy="optimized",
            verify_plans=True,
        )
        assert report.certificate is not None
        assert report.certificate.ok
        assert verify_certificate(report.certificate).is_clean


class TestIllegalPlans:
    def codes(self, flock, plan):
        certificate = certify_plan(flock, plan)
        return {d.code for d in certificate.diagnostics}, certificate

    def test_unsafe_step_named_in_diagnostic(self, basket_flock):
        flock_rule = basket_flock.rules[0]
        bad = make_step("bad", flock_rule.with_body_subset([0, 2]))
        final = make_step(
            "ok", flock_rule.with_extra_subgoals([bad.ok_atom])
        )
        plan = QueryPlan((bad, final))
        codes, certificate = self.codes(basket_flock, plan)
        assert "plan-unsafe-step" in codes
        offending = [
            d for d in certificate.diagnostics.errors
            if d.code == "plan-unsafe-step"
        ]
        assert offending[0].location == "step bad"
        assert "rule 3" in offending[0].message
        with pytest.raises(PlanError, match="bad is unsafe"):
            certificate.raise_for_errors()

    def test_foreign_subgoal_rejected(self, basket_flock):
        flock_rule = basket_flock.rules[0]
        foreign = make_step(
            "f1",
            flock_rule.with_extra_subgoals([atom("intruder", "B")]),
        )
        final = make_step(
            "ok", flock_rule.with_extra_subgoals([foreign.ok_atom])
        )
        codes, _ = self.codes(basket_flock, QueryPlan((foreign, final)))
        assert "plan-foreign-subgoal" in codes
        assert "plan-not-containing" in codes

    def test_duplicate_step_name_rejected(self, basket_flock):
        flock_rule = basket_flock.rules[0]
        step = make_step("dup", flock_rule)
        codes, _ = self.codes(
            basket_flock, QueryPlan((step, step, make_step("ok", flock_rule)))
        )
        assert "plan-duplicate-step" in codes

    def test_shadowing_base_relation_rejected(self, basket_flock):
        flock_rule = basket_flock.rules[0]
        codes, _ = self.codes(
            basket_flock, QueryPlan((make_step("baskets", flock_rule),))
        )
        assert "plan-shadowed-relation" in codes

    def test_final_step_may_not_delete_subgoals(self, basket_flock):
        flock_rule = basket_flock.rules[0]
        # Deleting baskets(B,$2) and the comparison leaves only $1.
        truncated = make_step("ok", flock_rule.with_body_subset([0]))
        codes, _ = self.codes(basket_flock, QueryPlan((truncated,)))
        assert "plan-final-deletes-subgoal" in codes
        assert "plan-final-parameters" in codes

    def test_non_monotone_filter_blocks_prefilter_steps(self, basket_query_ordered):
        flock = QueryFlock(
            basket_query_ordered, parse_filter("COUNT(answer.B) = 5")
        )
        flock_rule = flock.rules[0]
        pre = make_step("f1", flock_rule.with_body_subset([0]))
        final = make_step("ok", flock_rule.with_extra_subgoals([pre.ok_atom]))
        certificate = certify_plan(flock, QueryPlan((pre, final)))
        assert "plan-non-monotone-filter" in {
            d.code for d in certificate.diagnostics
        }
        with pytest.raises(FilterError, match="not monotone"):
            certificate.raise_for_errors()


@pytest.fixture
def basket_two_step(basket_flock):
    """A legal hand-built two-step plan over the ordered basket flock."""
    flock_rule = basket_flock.rules[0]
    pre = make_step("f1", flock_rule.with_body_subset([0]))
    final = make_step("ok", flock_rule.with_extra_subgoals([pre.ok_atom]))
    plan = QueryPlan((pre, final))
    return certify_plan(basket_flock, plan)


def replace_branch(certificate, **changes):
    """The certificate with its first pre-filter branch altered."""
    step = certificate.steps[0]
    branch = dataclasses.replace(step.branches[0], **changes)
    new_step = dataclasses.replace(step, branches=(branch,) + step.branches[1:])
    return dataclasses.replace(
        certificate, steps=(new_step,) + certificate.steps[1:]
    )


class TestTamperedCertificates:
    def test_fresh_certificate_is_clean(self, basket_two_step):
        assert basket_two_step.ok
        assert verify_certificate(basket_two_step).is_clean

    def test_tampered_witness_detected(self, basket_two_step):
        forged = replace_branch(
            basket_two_step, witness=HomomorphismWitness(())
        )
        report = verify_certificate(forged)
        assert "certificate-witness-invalid" in {d.code for d in report}

    def test_tampered_subquery_detected(self, basket_two_step):
        flock_rule = basket_two_step.flock.rules[0]
        forged = replace_branch(basket_two_step, subquery=flock_rule)
        report = verify_certificate(forged)
        assert "certificate-mismatch" in {d.code for d in report}

    def test_missing_branch_detected(self, basket_two_step):
        step = dataclasses.replace(basket_two_step.steps[0], branches=())
        forged = dataclasses.replace(
            basket_two_step, steps=(step,) + basket_two_step.steps[1:]
        )
        report = verify_certificate(forged)
        assert "certificate-missing-branch" in {d.code for d in report}

    def test_fabricated_safety_report_detected(self, basket_two_step):
        branch = basket_two_step.steps[0].branches[0]
        fake = SafetyReport(
            branch.subquery,
            violations=(),
            witnesses=((branch.subquery.head_terms[0], atom("zzz", "B")),),
        )
        forged = replace_branch(basket_two_step, safety=fake)
        report = verify_certificate(forged)
        assert "certificate-safety-invalid" in {d.code for d in report}


class TestDynamicCertificates:
    def test_dynamic_decisions_carry_certificates(
        self, small_medical_db, medical_flock
    ):
        _result, trace = evaluate_flock_dynamic(
            small_medical_db, medical_flock
        )
        assert trace.certificates
        for certificate in trace.certificates:
            assert certificate.witness is not None
            assert certificate.verify().is_clean
        assert any(c.step_name == "root" for c in trace.certificates)

    def test_certify_step_bound_on_safe_subset(self, medical_query):
        certificate = certify_step_bound(medical_query, (0, 2, 3), "n1")
        assert certificate.safety.is_safe
        assert isinstance(certificate.witness, SubgoalSubsetWitness)
        assert certificate.verify().is_clean

    def test_certify_step_bound_flags_unsafe_subset(self, medical_query):
        certificate = certify_step_bound(medical_query, (0, 3), "n1")
        assert not certificate.safety.is_safe
        report = certificate.verify()
        assert "plan-unsafe-step" in {d.code for d in report}

    def test_mine_dynamic_records_decision_certificates(
        self, small_medical_db, medical_flock
    ):
        _result, report = mine(
            small_medical_db, medical_flock, strategy="dynamic",
            verify_plans=True,
        )
        assert report.decision_certificates
        for certificate in report.decision_certificates:
            assert certificate.verify().is_clean
