"""The IR schema checker: clean lowered plans, corrupted plans rejected.

The acceptance bar: a hand-corrupted ``PhysicalPlan``/``StepPlan`` (a
dangling join key, a mis-typed aggregate, ...) is rejected by
``check_physical_plan`` *before execution* — on the in-memory engine and
on the SQL renderer alike.
"""

import dataclasses

import pytest

from repro.analysis import assert_physical_plan, check_physical_plan
from repro.datalog import Variable, atom, rule
from repro.engine import MemoryEngine, lower_rule
from repro.engine.sqlgen import column_source, render_step
from repro.errors import PlanError
from repro.flocks import single_step_plan
from repro.flocks.executor import lower_filter_step


@pytest.fixture
def medical_plan(small_medical_db, medical_query):
    return lower_rule(small_medical_db, medical_query)


@pytest.fixture
def basket_step(small_basket_db, basket_flock):
    step = single_step_plan(basket_flock).steps[0]
    return lower_filter_step(small_basket_db, basket_flock, step)


@pytest.fixture
def web_step(small_web_db, web_flock):
    step = single_step_plan(web_flock).steps[0]
    return lower_filter_step(small_web_db, web_flock, step)


def corrupt_join(plan, **changes):
    """The plan with its second stage's HashJoin altered."""
    stage = plan.stages[1]
    join = dataclasses.replace(stage.join, **changes)
    stages = (
        plan.stages[:1]
        + (dataclasses.replace(stage, join=join),)
        + plan.stages[2:]
    )
    return dataclasses.replace(plan, stages=stages)


def codes(plan, db=None):
    return {d.code for d in check_physical_plan(plan, db=db)}


class TestRulePlans:
    def test_lowered_plan_is_clean(self, small_medical_db, medical_plan):
        report = check_physical_plan(medical_plan, db=small_medical_db)
        assert report.is_clean

    @pytest.mark.parametrize("strategy", ["greedy", "selinger"])
    def test_both_orderers_type_check(
        self, small_medical_db, medical_query, strategy
    ):
        plan = lower_rule(
            small_medical_db, medical_query, order_strategy=strategy
        )
        assert check_physical_plan(plan, db=small_medical_db).is_clean

    def test_dangling_join_key(self, medical_plan):
        bad = corrupt_join(medical_plan, on=("nope",))
        assert "ir-dangling-join-key" in codes(bad)

    def test_wrong_join_output_columns(self, medical_plan):
        bad = corrupt_join(medical_plan, columns=("only",))
        assert "ir-join-columns" in codes(bad)

    def test_wrong_scan_columns(self, medical_plan):
        stage = medical_plan.stages[0]
        scan = dataclasses.replace(stage.scan, columns=("X", "Y", "Z"))
        bad = dataclasses.replace(
            medical_plan,
            stages=(dataclasses.replace(stage, scan=scan),)
            + medical_plan.stages[1:],
        )
        assert "ir-scan-columns" in codes(bad)

    def test_first_stage_must_not_join(self, medical_plan):
        joined = medical_plan.stages[1]
        bad = dataclasses.replace(
            medical_plan, stages=(joined,) + medical_plan.stages[1:]
        )
        assert "ir-unexpected-join" in codes(bad)

    def test_later_stage_must_join(self, medical_plan):
        unjoined = dataclasses.replace(medical_plan.stages[1], join=None)
        bad = dataclasses.replace(
            medical_plan,
            stages=(medical_plan.stages[0], unjoined)
            + medical_plan.stages[2:],
        )
        assert "ir-missing-join" in codes(bad)

    def test_unbound_output_term(self, medical_plan):
        root = dataclasses.replace(
            medical_plan.root, output_terms=(Variable("ZZZ"),)
        )
        bad = dataclasses.replace(medical_plan, root=root)
        assert "ir-unbound-output" in codes(bad)

    def test_materialize_width_mismatch(self, medical_plan):
        root = dataclasses.replace(medical_plan.root, columns=("a", "b"))
        bad = dataclasses.replace(medical_plan, root=root)
        assert "ir-materialize-width" in codes(bad)

    def test_catalog_unknown_relation(self, medical_plan, small_basket_db):
        # A plan lowered against one catalog, checked against another
        # that lacks its relations.
        assert "ir-unknown-relation" in codes(
            medical_plan, db=small_basket_db
        )

    def test_catalog_arity_mismatch(self):
        from repro.relational import database_from_dict

        db = database_from_dict({"r": (("a", "b", "c"), [(1, 2, 3)])})
        query = rule("answer", ["X"], [atom("r", "X", "Y")])
        from repro.analysis import plan_verification

        with plan_verification(False):  # let the bad plan be built
            plan = lower_rule(db, query)
        assert "ir-arity-mismatch" in codes(plan, db=db)
        # ... and the lowering gate catches it when verification is on.
        with pytest.raises(PlanError, match="ir-arity-mismatch"):
            lower_rule(db, query)

    def test_not_a_plan(self):
        assert "ir-unknown-plan" in {
            d.code for d in check_physical_plan(object())
        }


class TestStepPlans:
    def test_lowered_step_is_clean(self, small_basket_db, basket_step):
        assert check_physical_plan(basket_step, db=small_basket_db).is_clean

    def test_union_step_is_clean(self, small_web_db, web_step):
        assert len(web_step.branches) == 3
        assert check_physical_plan(web_step, db=small_web_db).is_clean

    def test_mistyped_aggregate_target(self, basket_step):
        spec = dataclasses.replace(
            basket_step.group.aggregates[0], target=("nope",)
        )
        group = dataclasses.replace(basket_step.group, aggregates=(spec,))
        bad = dataclasses.replace(basket_step, group=group)
        assert "ir-aggregate-target" in codes(bad)

    def test_aggregate_column_collision(self, basket_step):
        spec = dataclasses.replace(
            basket_step.group.aggregates[0],
            column=basket_step.answer_columns[0],
        )
        group = dataclasses.replace(basket_step.group, aggregates=(spec,))
        bad = dataclasses.replace(basket_step, group=group)
        assert "ir-aggregate-column" in codes(bad)

    def test_group_key_must_be_answer_column(self, basket_step):
        group = dataclasses.replace(
            basket_step.group,
            group_by=("phantom",) + basket_step.group.group_by[1:],
        )
        bad = dataclasses.replace(basket_step, group=group)
        assert "ir-group-key" in codes(bad)

    def test_union_branch_schema_must_agree(self, basket_step):
        branch = basket_step.branches[0]
        root = dataclasses.replace(branch.root, columns=("w", "r", "o"))
        bad_branch = dataclasses.replace(branch, root=root)
        bad = dataclasses.replace(basket_step, branches=(bad_branch,))
        found = codes(bad)
        assert "ir-union-schema" in found

    def test_union_operator_schema_must_agree(self, basket_step):
        union = dataclasses.replace(basket_step.union, columns=("x",))
        bad = dataclasses.replace(basket_step, union=union)
        assert "ir-union-schema" in codes(bad)

    def test_threshold_must_test_produced_aggregate(self, basket_step):
        threshold = dataclasses.replace(
            basket_step.threshold,
            conditions=tuple(
                (cond, "_ghost")
                for cond, _ in basket_step.threshold.conditions
            ),
        )
        bad = dataclasses.replace(basket_step, threshold=threshold)
        assert "ir-threshold-column" in codes(bad)

    def test_dropping_group_key_breaks_distinctness(self, basket_step):
        root = dataclasses.replace(basket_step.root, columns=())
        bad = dataclasses.replace(basket_step, root=root)
        assert "ir-distinctness" in codes(bad)

    def test_empty_step_rejected(self, basket_step):
        bad = dataclasses.replace(basket_step, branches=())
        assert "ir-empty-step" in codes(bad)


class TestScanFilters:
    """Runtime semi-join filters: justified ones pass, corrupted ones
    draw each of the four ir-scanfilter-* codes."""

    @pytest.fixture
    def scanfilter_db(self):
        from repro.relational import database_from_dict

        return database_from_dict(
            {
                "ok": (("P",), [(1,), (2,)]),
                # In the catalog but *not* in the query: a filter sourced
                # from it is well-typed yet unjustified.
                "bystander": (("P",), [(1,)]),
                "r": (("B", "P"), [(1, 1), (2, 2), (3, 3)]),
            }
        )

    @pytest.fixture
    def filtered_plan(self, scanfilter_db):
        from repro.engine.ir import ScanFilter

        query = rule(
            "answer", ["B"], [atom("ok", "P"), atom("r", "B", "P")]
        )
        plan = lower_rule(scanfilter_db, query)
        return self.with_filter(plan, ScanFilter("P", "ok", "P", keys=2))

    @staticmethod
    def with_filter(plan, scan_filter):
        """The plan with ``scan_filter`` attached to the scan of r."""
        stages = tuple(
            dataclasses.replace(stage, scan_filters=(scan_filter,))
            if stage.scan.atom.predicate == "r"
            else stage
            for stage in plan.stages
        )
        return dataclasses.replace(plan, stages=stages)

    @staticmethod
    def refilter(plan, **changes):
        """The plan with its one scan filter's fields altered."""
        stage = next(s for s in plan.stages if s.scan_filters)
        replaced = dataclasses.replace(stage.scan_filters[0], **changes)
        return TestScanFilters.with_filter(plan, replaced)

    def test_justified_filter_is_clean(self, scanfilter_db, filtered_plan):
        assert check_physical_plan(filtered_plan, db=scanfilter_db).is_clean

    def test_filter_on_unscanned_column(self, scanfilter_db, filtered_plan):
        bad = self.refilter(filtered_plan, column="Z")
        assert "ir-scanfilter-column" in codes(bad, db=scanfilter_db)

    def test_unjustified_source(self, scanfilter_db, filtered_plan):
        # bystander exists and has column P, but no positive subgoal
        # joins it — the semi-join has no legality certificate.
        bad = self.refilter(filtered_plan, source="bystander")
        found = codes(bad, db=scanfilter_db)
        assert "ir-scanfilter-unjustified" in found
        assert "ir-scanfilter-source" not in found

    def test_source_missing_from_catalog(self, filtered_plan):
        from repro.relational import database_from_dict

        okless = database_from_dict(
            {"r": (("B", "P"), [(1, 1)])}
        )
        assert "ir-scanfilter-source" in codes(filtered_plan, db=okless)

    def test_source_column_missing(self, scanfilter_db, filtered_plan):
        bad = self.refilter(filtered_plan, source_column="nope")
        assert "ir-scanfilter-source-column" in codes(bad, db=scanfilter_db)

    def test_catalog_checks_skipped_without_db(self, filtered_plan):
        # Without a catalog only the structural/justification checks
        # run; a dangling source cannot be detected.
        bad = self.refilter(filtered_plan, source_column="nope")
        assert "ir-scanfilter-source-column" not in codes(bad)

    def test_memory_engine_gates_unjustified_filter(
        self, scanfilter_db, filtered_plan
    ):
        bad = self.refilter(filtered_plan, source="bystander")
        with pytest.raises(PlanError, match="ir-scanfilter-unjustified"):
            MemoryEngine(scanfilter_db).run_plan(bad)


class TestExecutionGates:
    """Both backends refuse a corrupted plan before running it."""

    def test_memory_engine_rejects_corrupt_rule_plan(
        self, small_medical_db, medical_plan
    ):
        bad = corrupt_join(medical_plan, on=("nope",))
        with pytest.raises(PlanError, match="ir-dangling-join-key"):
            MemoryEngine(small_medical_db).run_plan(bad)

    def test_memory_engine_rejects_corrupt_step_plan(
        self, small_basket_db, basket_step
    ):
        spec = dataclasses.replace(
            basket_step.group.aggregates[0], target=("nope",)
        )
        group = dataclasses.replace(basket_step.group, aggregates=(spec,))
        bad = dataclasses.replace(basket_step, group=group)
        with pytest.raises(PlanError, match="ir-aggregate-target"):
            MemoryEngine(small_basket_db).run_step(bad)

    def test_sql_renderer_rejects_corrupt_step_plan(
        self, small_basket_db, basket_step
    ):
        branch = corrupt_join(basket_step.branches[0], on=("nope",))
        bad = dataclasses.replace(basket_step, branches=(branch,))
        with pytest.raises(PlanError, match="ir-dangling-join-key"):
            render_step(bad, column_source(small_basket_db, {}))

    def test_assert_physical_plan_passes_clean_plan(
        self, small_medical_db, medical_plan
    ):
        assert_physical_plan(medical_plan, db=small_medical_db)

    def test_gate_is_off_without_verification(
        self, small_basket_db, basket_step
    ):
        from repro.analysis import plan_verification

        root = dataclasses.replace(basket_step.root, columns=())
        bad = dataclasses.replace(basket_step, root=root)
        with plan_verification(False):
            # No pre-execution gate: the renderer emits (wrong) SQL
            # rather than raising.
            sql = render_step(bad, column_source(small_basket_db, {}))
        assert "SELECT" in sql
