"""Lock-order regression: the analyzer's declared graph matches runtime.

Three layers of the same contract:

1. the static analyzer (``repro.analysis.conlint``) derives the
   ``MiningSession._counter_lock → ResultCache._lock`` edge from the
   nested acquisition in :meth:`MiningSession.stats` and proves the
   graph acyclic;
2. a live session with both locks swapped for
   :class:`~repro.testing.locks.InstrumentedLock` wrappers, hammered
   from threads, observes only declared edges at runtime;
3. taking the two locks in the *reverse* order trips
   :class:`~repro.testing.locks.LockOrderViolation` immediately.
"""

from __future__ import annotations

import threading
from pathlib import Path

import pytest

from repro.analysis.conlint import build_model, lock_order_edges
from repro.session import MiningSession
from repro.testing.locks import LockOrderAuditor, LockOrderViolation

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

SESSION_LOCK = "MiningSession._counter_lock"
CACHE_LOCK = "ResultCache._lock"


@pytest.fixture(scope="module")
def declared_edges() -> set[tuple[str, str]]:
    """The analyzer's lock-order graph as ``Class.lock`` name pairs."""
    model = build_model([str(SRC)])
    return {
        (f"{outer_cls}.{outer_lock}", f"{inner_cls}.{inner_lock}")
        for (outer_cls, outer_lock), (inner_cls, inner_lock) in (
            lock_order_edges(model)
        )
    }


def test_analyzer_declares_session_to_cache_edge(declared_edges):
    assert (SESSION_LOCK, CACHE_LOCK) in declared_edges


def test_declared_graph_is_acyclic(declared_edges):
    # A cycle would also be a conlint-lock-cycle error; assert directly
    # so this test stays meaningful if the error path ever regresses.
    reverse = {(inner, outer) for outer, inner in declared_edges}
    assert not (declared_edges & reverse)


def test_runtime_acquisitions_obey_declared_order(
    declared_edges, small_basket_db, basket_flock
):
    session = MiningSession(small_basket_db)
    auditor = LockOrderAuditor(declared=declared_edges)
    session._counter_lock = auditor.instrument(SESSION_LOCK)
    # The cache lock is re-entrant in production; keep that here.
    session.cache._lock = auditor.instrument(
        CACHE_LOCK, inner=threading.RLock()
    )

    session.mine(basket_flock)

    errors: list[BaseException] = []

    def hammer() -> None:
        try:
            for _ in range(100):
                session.stats()
                session.cache.stats_snapshot()
        except BaseException as error:  # pragma: no cover - fail path
            errors.append(error)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    observed = auditor.edges()
    # stats() really nested the two locks...
    assert (SESSION_LOCK, CACHE_LOCK) in observed
    # ...and nothing ran against the declared order.
    assert observed <= declared_edges


def test_reverse_acquisition_raises(declared_edges):
    auditor = LockOrderAuditor(declared=declared_edges)
    cache_lock = auditor.instrument(CACHE_LOCK)
    counter_lock = auditor.instrument(SESSION_LOCK)
    with cache_lock:
        with pytest.raises(LockOrderViolation):
            counter_lock.acquire()
        # The failed acquire released the underlying lock.
        assert not counter_lock.locked()
    # Declared order still works after the violation.
    with counter_lock:
        with cache_lock:
            pass
    assert (SESSION_LOCK, CACHE_LOCK) in auditor.edges()


def test_transitive_reverse_is_caught():
    auditor = LockOrderAuditor(declared={("A._l", "B._l"), ("B._l", "C._l")})
    a = auditor.instrument("A._l")
    c = auditor.instrument("C._l")
    with c:
        with pytest.raises(LockOrderViolation):
            a.acquire()


def test_unordered_locks_record_without_enforcing():
    auditor = LockOrderAuditor(declared=set())
    a = auditor.instrument("X._l")
    b = auditor.instrument("Y._l")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    assert auditor.edges() == {("X._l", "Y._l"), ("Y._l", "X._l")}
