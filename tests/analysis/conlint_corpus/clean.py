# expect: clean
"""A well-behaved guarded class: every access under its lock."""
import threading


class Tidy:
    GUARDED = {"_value": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def bump(self):
        with self._lock:
            self._value += 1

    def peek(self):
        with self._lock:
            return self._value
