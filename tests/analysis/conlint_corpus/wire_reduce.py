# expect: conlint-wire-reduce
"""An exception with a parameterized __init__ and no __reduce__:
unpickling in the parent replays cls(*args) and mis-builds it."""


class WorkerError(Exception):
    def __init__(self, message, task_id):
        super().__init__(message)
        self.task_id = task_id
