# expect: clean
# conlint: hot-module
"""The same hot loop, made responsive with an in-loop checkpoint."""


def drain(rows, guard):
    total = 0
    while rows:
        guard.checkpoint(rows=len(rows))
        total += rows.pop()
    return total
