# expect: conlint-wire-arg
"""A lambda passed as a submit argument crosses the process boundary."""
from concurrent.futures import ProcessPoolExecutor


def work(fn):
    return fn


def run():
    pool = ProcessPoolExecutor(max_workers=1)
    return pool.submit(work, lambda value: value + 1)
