# expect: conlint-guard-unknown-lock
"""GUARDED names a lock no method of the class ever creates."""


class Unmapped:
    GUARDED = {"_value": "_mutex"}

    def __init__(self):
        self._value = 0
