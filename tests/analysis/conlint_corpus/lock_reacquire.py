# expect: conlint-lock-cycle
"""Re-acquiring a non-reentrant Lock the method already holds."""
import threading


class Reacquire:
    GUARDED = {"_value": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def outer(self):
        with self._lock:
            with self._lock:  # plain Lock: guaranteed self-deadlock
                self._value += 1
