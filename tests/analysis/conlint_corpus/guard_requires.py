# expect: conlint-guard-requires
"""A @requires helper called without holding its declared lock."""
import threading

from repro.concurrency import requires


class Store:
    GUARDED = {"_items": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    @requires("_lock")
    def _evict(self):
        del self._items[:]

    def clear(self):
        self._evict()  # caller does not hold _lock
