# expect: conlint-bad-suppression
"""A suppression without justification is itself an error."""
import threading


class Sloppy:
    GUARDED = {"_value": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def peek(self):
        return self._value  # conlint: skip[conlint-guard-unlocked]
