# expect: conlint-parse-error
def broken(:
