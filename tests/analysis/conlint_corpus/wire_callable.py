# expect: conlint-wire-callable
"""A lambda submitted to a process pool never survives pickling."""
from concurrent.futures import ProcessPoolExecutor


def run():
    pool = ProcessPoolExecutor(max_workers=1)
    return pool.submit(lambda: 41 + 1)
