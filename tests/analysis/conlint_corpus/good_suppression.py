# expect: clean
"""A justified suppression drops the finding it covers."""
import threading


class Relaxed:
    GUARDED = {"_value": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def bump(self):
        with self._lock:
            self._value += 1

    def peek_stale(self):
        return self._value  # conlint: skip[conlint-guard-unlocked] -- stale read is fine for logging
