# expect: conlint-lock-cycle
"""Two methods nest the same pair of locks in opposite orders."""
import threading


class Pair:
    def __init__(self):
        self._la = threading.Lock()
        self._lb = threading.Lock()

    def forward(self):
        with self._la:
            with self._lb:
                pass

    def backward(self):
        with self._lb:
            with self._la:
                pass
