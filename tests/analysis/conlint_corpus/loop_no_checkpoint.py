# expect: conlint-loop-no-checkpoint
# conlint: hot-module
"""A hot kernel loop that never polls the execution guard."""


def drain(rows, guard):
    total = 0
    while rows:
        total += rows.pop()
    return total
