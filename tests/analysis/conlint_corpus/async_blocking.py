# expect: conlint-async-blocking
"""A sync sleep on the event loop stalls every other request."""
import time


async def lazy_handler():
    time.sleep(0.01)
    return "done"
