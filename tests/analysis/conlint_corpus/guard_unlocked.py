# expect: conlint-guard-unlocked
"""A guarded attribute read outside its declared lock."""
import threading


class Counter:
    GUARDED = {"_value": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def bump(self):
        with self._lock:
            self._value += 1

    def peek(self):
        return self._value  # read without holding _lock
