"""The one-pass checker: ``check_flock``, its module CLI, and ``repro check``."""

import json

import pytest

from repro.analysis.check import check_flock, main as check_main
from repro.cli import main as cli_main
from repro.datalog import atom, rule
from repro.flocks import QueryFlock, support_filter
from repro.relational import save_database


FLOCK_TEXT = """QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2

FILTER:
COUNT(answer.B) >= 2
"""

WARNING_FLOCK_TEXT = """QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2 AND $2 < $1

FILTER:
COUNT(answer.B) >= 2
"""

GHOST_FLOCK_TEXT = """QUERY:
answer(X) :- ghost(X,$1)

FILTER:
COUNT(answer.X) >= 2
"""


@pytest.fixture
def workspace(tmp_path, small_basket_db):
    flock_file = tmp_path / "flock.txt"
    flock_file.write_text(FLOCK_TEXT)
    data_dir = tmp_path / "data"
    save_database(small_basket_db, data_dir)
    return flock_file, data_dir


class TestCheckFlock:
    def test_clean_flock_with_data(self, small_basket_db, basket_flock):
        result = check_flock(basket_flock, db=small_basket_db)
        assert result.ok
        assert result.exit_code() == 0
        assert result.plan is not None
        assert result.certificate is not None and result.certificate.ok

    def test_clean_flock_without_data(self, basket_flock):
        result = check_flock(basket_flock)
        assert result.ok
        assert result.certificate is not None

    def test_medical_reports_lint_skip_info(self, medical_flock):
        result = check_flock(medical_flock)
        assert result.ok and result.exit_code() == 0
        assert "redundancy-check-skipped" in {d.code for d in result.report}

    def test_union_flock_checks(self, small_web_db, web_flock):
        result = check_flock(web_flock, db=small_web_db)
        assert result.ok

    def test_missing_relation_is_an_error(self, small_basket_db):
        flock = QueryFlock(
            rule("answer", ["X"], [atom("ghost", "X", "$1")]),
            support_filter(2, target="X"),
        )
        result = check_flock(flock, db=small_basket_db)
        assert not result.ok
        assert result.exit_code() == 4
        found = {d.code for d in result.report}
        assert {"check-plan-search-failed", "check-lowering-failed"} & found

    def test_to_dict_shape(self, small_basket_db, basket_flock):
        data = check_flock(basket_flock, db=small_basket_db).to_dict()
        assert data["ok"] is True
        assert data["exit_code"] == 0
        assert ":= FILTER" in data["plan"]
        assert isinstance(data["diagnostics"], list)


class TestModuleMain:
    def test_paper_flocks_are_clean(self, capsys):
        assert check_main(["--paper"]) == 0
        out = capsys.readouterr().out
        for label in ("fig2:", "fig3:", "fig4:", "fig6(n=2):", "fig10:"):
            assert label in out

    def test_flock_file_argument(self, workspace, capsys):
        flock_file, _ = workspace
        assert check_main([str(flock_file)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_no_targets_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            check_main([])


class TestCheckCli:
    def test_clean_exit_0(self, workspace, capsys):
        flock_file, data_dir = workspace
        code = cli_main(["check", str(flock_file), str(data_dir)])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_clean_without_data(self, workspace, capsys):
        flock_file, _ = workspace
        assert cli_main(["check", str(flock_file)]) == 0

    def test_warnings_exit_3(self, tmp_path, capsys):
        bad = tmp_path / "warn.txt"
        bad.write_text(WARNING_FLOCK_TEXT)
        code = cli_main(["check", str(bad)])
        assert code == 3
        out = capsys.readouterr().out
        assert "unsatisfiable-comparisons" in out
        assert "warning(s)" in out

    def test_errors_exit_4(self, workspace, tmp_path, capsys):
        _, data_dir = workspace
        bad = tmp_path / "ghost.txt"
        bad.write_text(GHOST_FLOCK_TEXT)
        code = cli_main(["check", str(bad), str(data_dir)])
        assert code == 4
        assert "error(s)" in capsys.readouterr().out

    def test_json_format(self, workspace, capsys):
        flock_file, data_dir = workspace
        code = cli_main(
            ["check", str(flock_file), str(data_dir), "--format", "json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["exit_code"] == 0

    def test_json_reports_diagnostics(self, tmp_path, capsys):
        bad = tmp_path / "warn.txt"
        bad.write_text(WARNING_FLOCK_TEXT)
        code = cli_main(["check", str(bad), "--format", "json"])
        assert code == 3
        data = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in data["diagnostics"]}
        assert "unsatisfiable-comparisons" in codes

    def test_lint_alias_still_works(self, workspace, capsys):
        flock_file, _ = workspace
        assert cli_main(["lint", str(flock_file)]) == 0
        assert "clean" in capsys.readouterr().out
