"""conlint entry-point plumbing: carets, exit codes, JSON schema.

The analyzer must speak the same dialect as ``repro check``: caret
spans under findings in text mode, exit codes 0 (clean) / 3 (warnings
only) / 4 (errors), and a ``--format json`` payload whose shape is the
``DiagnosticReport.to_dict()`` schema the rest of the toolchain parses.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.conlint import lint_paths, main, to_json
from repro.cli import main as cli_main

CORPUS = Path(__file__).parent / "conlint_corpus"

CLEAN = str(CORPUS / "clean.py")
ERRORS = str(CORPUS / "guard_unlocked.py")
WARNINGS = str(CORPUS / "loop_no_checkpoint.py")


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        assert main([CLEAN]) == 0
        assert "clean" in capsys.readouterr().out

    def test_warnings_only_exits_three(self, capsys):
        assert main([WARNINGS]) == 3
        out = capsys.readouterr().out
        assert "conlint-loop-no-checkpoint" in out
        assert "1 warning(s)" in out

    def test_errors_exit_four(self, capsys):
        assert main([ERRORS]) == 4
        out = capsys.readouterr().out
        assert "conlint-guard-unlocked" in out
        assert "1 error(s)" in out


class TestTextRendering:
    def test_findings_carry_caret_spans(self, capsys):
        main([ERRORS])
        out = capsys.readouterr().out
        # The offending source line, with a caret column under it.
        assert "return self._value" in out
        assert "^" in out

    def test_location_is_path_line_col(self):
        (diagnostic,) = list(lint_paths([ERRORS]))
        path, line, col = diagnostic.location.rsplit(":", 2)
        assert path == ERRORS
        assert int(line) > 0 and int(col) > 0

    def test_hints_are_printed(self, capsys):
        main([ERRORS])
        assert "hint:" in capsys.readouterr().out


class TestJsonSchema:
    def test_report_shape_matches_repro_check(self, capsys):
        assert main([ERRORS, "--format", "json"]) == 4
        payload = json.loads(capsys.readouterr().out)
        # DiagnosticReport.to_dict() keys (the `repro check` schema)
        # plus the gate-friendly ok/exit_code.
        assert set(payload) == {
            "clean", "errors", "warnings", "infos", "diagnostics",
            "ok", "exit_code",
        }
        assert payload["clean"] is False
        assert payload["ok"] is False
        assert payload["exit_code"] == 4
        assert payload["errors"] == 1
        (diagnostic,) = payload["diagnostics"]
        assert set(diagnostic) == {
            "code", "severity", "message", "location", "position", "hint",
        }
        assert diagnostic["severity"] == "error"

    def test_to_json_agrees_with_report(self):
        report = lint_paths([WARNINGS])
        payload = to_json(report)
        assert payload["exit_code"] == report.exit_code() == 3
        assert payload["warnings"] == 1
        assert payload["clean"] is False


class TestCheckConcurrencyFlag:
    def test_clean_paths_exit_zero(self, capsys):
        assert cli_main(["check", "--concurrency", CLEAN]) == 0
        assert "clean" in capsys.readouterr().out

    def test_errors_exit_four_with_json(self, capsys):
        code = cli_main(
            ["check", "--concurrency", ERRORS, "--format", "json"]
        )
        assert code == 4
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["diagnostics"][0]["code"] == "conlint-guard-unlocked"

    def test_check_without_flock_or_flag_is_usage_error(self, capsys):
        assert cli_main(["check"]) == 2
        assert "flock file is required" in capsys.readouterr().err


class TestBadPaths:
    def test_missing_path_reports_parse_error_code(self):
        report = lint_paths([str(CORPUS / "does_not_exist.py")])
        codes = {diagnostic.code for diagnostic in report}
        assert codes == {"conlint-parse-error"}
        assert report.exit_code() == 4
