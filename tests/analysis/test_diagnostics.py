"""The shared diagnostics layer: formatting, severities, exit codes."""

from repro.analysis import Diagnostic, DiagnosticReport, Severity
from repro.analysis.diagnostics import SourceSpan, error, info, warning


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert not Severity.ERROR < Severity.INFO

    def test_comparison_with_non_severity(self):
        assert Severity.INFO.__lt__(3) is NotImplemented


class TestDiagnostic:
    def test_str_has_severity_code_location_message(self):
        d = error("plan-unsafe-step", "step f1 is unsafe", location="step f1")
        assert str(d) == "error[plan-unsafe-step] at step f1: step f1 is unsafe"

    def test_str_without_location(self):
        d = warning("cartesian-product", "disconnected")
        assert str(d) == "warning[cartesian-product]: disconnected"

    def test_hint_rendered_on_own_line(self):
        d = error("ir-dangling-join-key", "bad key", hint="use shared columns")
        assert "\n  hint: use shared columns" in str(d)

    def test_span_renders_caret(self):
        text = "answer(B) :- baskets(B,$1)"
        d = error(
            "demo", "here", span=SourceSpan(text, text.index("baskets"))
        )
        rendered = str(d)
        assert "baskets" in rendered
        assert "^" in rendered

    def test_to_dict_roundtrips_fields(self):
        d = info("redundancy-check-skipped", "skipped", location="rule 1",
                 hint="nothing to do")
        assert d.to_dict() == {
            "code": "redundancy-check-skipped",
            "severity": "info",
            "message": "skipped",
            "location": "rule 1",
            "hint": "nothing to do",
        }

    def test_helpers_set_severity(self):
        assert error("c", "m").severity is Severity.ERROR
        assert warning("c", "m").severity is Severity.WARNING
        assert info("c", "m").severity is Severity.INFO


class TestDiagnosticReport:
    def test_empty_report_is_clean(self):
        report = DiagnosticReport()
        assert report.ok
        assert report.is_clean
        assert report.exit_code() == 0
        assert str(report) == "clean: no diagnostics"
        assert bool(report)

    def test_warnings_exit_3(self):
        report = DiagnosticReport((warning("c", "m"),))
        assert report.ok  # warnings do not make a report failing
        assert not report.is_clean
        assert report.exit_code() == 3

    def test_errors_exit_4(self):
        report = DiagnosticReport((warning("c", "m"), error("d", "n")))
        assert not report.ok
        assert not bool(report)
        assert report.exit_code() == 4

    def test_infos_never_affect_exit_code(self):
        report = DiagnosticReport((info("c", "m"),))
        assert report.ok
        assert report.is_clean
        assert report.exit_code() == 0

    def test_severity_buckets(self):
        e, w, i = error("e", "m"), warning("w", "m"), info("i", "m")
        report = DiagnosticReport((e, w, i))
        assert report.errors == (e,)
        assert report.warnings == (w,)
        assert report.infos == (i,)
        assert len(report) == 3
        assert list(report) == [e, w, i]

    def test_merged_preserves_order(self):
        a = DiagnosticReport((error("a", "m"),))
        b = DiagnosticReport((warning("b", "m"),))
        c = DiagnosticReport((info("c", "m"),))
        merged = a.merged(b, c)
        assert [d.code for d in merged] == ["a", "b", "c"]

    def test_collect(self):
        report = DiagnosticReport.collect([info("x", "m")])
        assert [d.code for d in report] == ["x"]

    def test_to_dict_counts(self):
        report = DiagnosticReport((error("e", "m"), warning("w", "m")))
        data = report.to_dict()
        assert data["errors"] == 1
        assert data["warnings"] == 1
        assert data["clean"] is False
        assert [d["code"] for d in data["diagnostics"]] == ["e", "w"]
