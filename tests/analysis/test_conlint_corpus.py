"""The conlint self-test corpus: every file yields exactly its codes.

Each ``tests/analysis/conlint_corpus/*.py`` file carries one or more
``# expect: conlint-<code>`` header comments (or ``# expect: clean``)
and is linted standalone; the set of diagnostic codes produced must
equal the declared expectation.  This is the analyzer's ground truth —
a pass that stops firing (or starts over-firing) breaks here first.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.conlint import lint_paths

CORPUS = Path(__file__).parent / "conlint_corpus"
EXPECT_RE = re.compile(r"^#\s*expect:\s*(\S+)", re.MULTILINE)

FILES = sorted(CORPUS.glob("*.py"))


def expected_codes(path: Path) -> set[str]:
    declared = set(EXPECT_RE.findall(path.read_text()))
    assert declared, f"{path.name} has no '# expect:' header"
    declared.discard("clean")
    return declared


def test_corpus_covers_every_code():
    all_expected = set().union(*(expected_codes(p) for p in FILES))
    assert all_expected == {
        "conlint-guard-unlocked",
        "conlint-guard-unknown-lock",
        "conlint-guard-requires",
        "conlint-lock-cycle",
        "conlint-wire-callable",
        "conlint-wire-arg",
        "conlint-wire-reduce",
        "conlint-async-blocking",
        "conlint-loop-no-checkpoint",
        "conlint-bad-suppression",
        "conlint-parse-error",
    }


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
def test_corpus_file_yields_exactly_its_codes(path: Path):
    report = lint_paths([str(path)])
    found = {diagnostic.code for diagnostic in report}
    assert found == expected_codes(path)


def test_corpus_findings_point_into_the_file():
    for path in FILES:
        for diagnostic in lint_paths([str(path)]):
            assert diagnostic.location.startswith(str(path))
