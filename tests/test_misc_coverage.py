"""Targeted tests for smaller code paths not covered elsewhere."""

import pytest

from repro.datalog import Variable, atom, rule
from repro.flocks import (
    ExecutionTrace,
    FlockOptimizer,
    FlockResult,
    StepTrace,
    QueryFlock,
    evaluate_flock,
    flock_to_sql,
    parse_flock,
    support_filter,
)
from repro.relational import (
    Relation,
    database_from_dict,
    evaluate_conjunctive,
)


class TestEvaluateOutputShapes:
    def test_mixed_constant_and_variable_output(self):
        db = database_from_dict({"r": (("a", "b"), [(1, 2), (3, 4)])})
        query = rule("answer", ["X"], [atom("r", "X", "Y")])
        from repro.datalog.terms import Constant

        result = evaluate_conjunctive(
            db, query,
            output_terms=[Constant("tag"), Variable("X"), Constant(9)],
        )
        assert ("tag", 1, 9) in result
        assert ("tag", 3, 9) in result
        assert result.arity == 3

    def test_unbound_output_term_rejected(self):
        from repro.errors import EvaluationError

        db = database_from_dict({"r": (("a",), [(1,)])})
        query = rule("answer", ["X"], [atom("r", "X")])
        with pytest.raises(EvaluationError):
            evaluate_conjunctive(db, query, output_terms=[Variable("Z")])

    def test_duplicate_binding_cache_self_join(self):
        # Two literally identical subgoals share a binding relation and
        # collapse to a single logical subgoal under set semantics.
        db = database_from_dict({"r": (("a", "b"), [(1, 2), (2, 3)])})
        query = rule(
            "answer", ["X"], [atom("r", "X", "Y"), atom("r", "X", "Y")]
        )
        result = evaluate_conjunctive(db, query)
        assert result.column_values("X") == {1, 2}


class TestResultTypes:
    def test_step_trace_str(self):
        step = StepTrace("okS", "desc", 100, 7, 0.01)
        text = str(step)
        assert "okS" in text and "100" in text and "7" in text

    def test_execution_trace_totals(self):
        trace = ExecutionTrace()
        trace.record(StepTrace("a", "", 10, 1, 0.5))
        trace.record(StepTrace("b", "", 20, 2, 0.25))
        assert trace.total_seconds == pytest.approx(0.75)
        assert trace.total_intermediate_tuples == 30
        assert "a" in str(trace) and "b" in str(trace)

    def test_flock_result_repr_surface(self):
        rel = Relation("flock", ("$1",), {("beer",)})
        result = FlockResult(rel)
        assert len(result) == 1
        assert ("beer",) in result
        assert result.assignments == frozenset({("beer",)})


class TestScoredPlanDisplay:
    def test_str_mentions_costs(self, small_medical_db, medical_flock):
        opt = FlockOptimizer(small_medical_db, medical_flock)
        scored = opt.best_plan()
        text = str(scored)
        assert "cost≈" in text


class TestRelationDisplay:
    def test_pretty_zero_columns(self):
        unit = Relation("unit", (), {()})
        assert "(no columns)" in unit.pretty()

    def test_repr(self):
        rel = Relation("r", ("a",), {(1,)})
        assert "Relation('r'" in repr(rel)


class TestSqlEscaping:
    def test_string_constants_with_quotes(self):
        import sqlite3

        db = database_from_dict(
            {"r": (("a", "b"), [("o'neil", 1), ("plain", 2)])}
        )
        # A constant with an apostrophe must be escaped in generated SQL.
        flock = QueryFlock(
            rule(
                "answer", ["B"],
                [atom("r", "X", "B"), atom("r", "'o'neil'", "$1")],
            ),
            support_filter(1, target="B"),
        )
        sql = flock_to_sql(flock, db)
        assert "'o''neil'" in sql
        conn = sqlite3.connect(":memory:")
        conn.execute("CREATE TABLE r (a, b)")
        conn.executemany("INSERT INTO r VALUES (?, ?)", sorted(db.get("r").tuples))
        rows = {tuple(row) for row in conn.execute(sql.rstrip(";"))}
        ours = evaluate_flock(db, flock)
        assert rows == set(ours.tuples)


class TestParseFlockOptions:
    def test_assume_nonnegative_false_propagates(self):
        flock = parse_flock(
            """
            QUERY:
            answer(B,W) :- baskets(B,$1) AND importance(B,W)
            FILTER:
            SUM(answer.W) >= 20
            """,
            assume_nonnegative=False,
        )
        assert not flock.filter.is_monotone

    def test_flock_str_includes_filter(self, basket_flock):
        assert "COUNT(answer.B) >= 2" in str(basket_flock)


class TestPlantedBasketPairs:
    def test_planted_pairs_boost_cooccurrence(self):
        from repro.workloads import generate_baskets

        pair = ("item0100", "item0200")
        with_plant = generate_baskets(
            400, 300, skew=1.0, seed=9,
            planted_pairs=[pair], planted_rate=0.3,
        )
        without = generate_baskets(400, 300, skew=1.0, seed=9)

        def cooccurrence(rel):
            from collections import defaultdict

            baskets = defaultdict(set)
            for bid, item in rel.tuples:
                baskets[bid].add(item)
            return sum(
                1 for items in baskets.values()
                if pair[0] in items and pair[1] in items
            )

        assert cooccurrence(with_plant) > cooccurrence(without) + 50
