"""Semantics of the deterministic fault-injection harness itself."""

import pytest

from repro import EvaluationError, evaluate_flock
from repro.testing import FaultSpec, active_faults, inject, reset_faults, trip


pytestmark = pytest.mark.faults


@pytest.fixture(autouse=True)
def clean_registry():
    reset_faults()
    yield
    reset_faults()


class TestTrip:
    def test_noop_when_nothing_armed(self):
        trip("relational.join")  # must not raise

    def test_noop_for_other_sites(self):
        with inject("sqlite.execute", ValueError):
            trip("relational.join")  # different site: passes

    def test_armed_site_raises(self):
        with inject("anywhere", ValueError):
            with pytest.raises(ValueError, match="injected fault at anywhere"):
                trip("anywhere")

    def test_disarmed_on_context_exit(self):
        with inject("anywhere", ValueError):
            pass
        trip("anywhere")  # must not raise

    def test_disarmed_even_when_block_raises(self):
        with pytest.raises(RuntimeError):
            with inject("anywhere", ValueError):
                raise RuntimeError("unrelated")
        assert active_faults() == ()


class TestScheduling:
    def test_skip_lets_early_hits_pass(self):
        with inject("site", ValueError, skip=2) as fault:
            trip("site")
            trip("site")
            with pytest.raises(ValueError):
                trip("site")
        assert (fault.hits, fault.failures) == (3, 1)

    def test_times_bounds_failures_then_heals(self):
        with inject("site", ValueError, times=2) as fault:
            for _ in range(2):
                with pytest.raises(ValueError):
                    trip("site")
            trip("site")  # healed
            trip("site")
        assert (fault.hits, fault.failures) == (4, 2)

    def test_skip_and_times_compose(self):
        with inject("site", ValueError, skip=1, times=1) as fault:
            trip("site")
            with pytest.raises(ValueError):
                trip("site")
            trip("site")
        assert (fault.hits, fault.failures) == (3, 1)


class TestErrorSources:
    def test_exception_instance_is_raised_as_is(self):
        boom = ValueError("specific instance")
        with inject("site", boom):
            with pytest.raises(ValueError) as exc:
                trip("site")
        assert exc.value is boom

    def test_exception_class_gets_site_message(self):
        with inject("site", KeyError):
            with pytest.raises(KeyError, match="injected fault at site"):
                trip("site")

    def test_factory_is_called_per_failure(self):
        calls = []

        def factory():
            calls.append(1)
            return ValueError(f"failure #{len(calls)}")

        with inject("site", factory):
            with pytest.raises(ValueError, match="failure #1"):
                trip("site")
            with pytest.raises(ValueError, match="failure #2"):
                trip("site")

    def test_bad_factory_rejected(self):
        spec = FaultSpec(site="site", error=lambda: "not an exception")
        with pytest.raises(TypeError):
            spec.make_error()


class TestRegistry:
    def test_nested_same_site_rejected(self):
        with inject("site", ValueError):
            with pytest.raises(RuntimeError, match="already armed"):
                with inject("site", KeyError):
                    pass  # pragma: no cover

    def test_distinct_sites_nest(self):
        with inject("a", ValueError):
            with inject("b", KeyError):
                assert active_faults() == ("a", "b")
            assert active_faults() == ("a",)

    def test_reset_disarms_everything(self):
        with inject("a", ValueError):
            reset_faults()
            trip("a")  # must not raise


class TestInstrumentedSites:
    def test_relational_join_site_is_live(self, small_basket_db, basket_flock):
        """The site checks really are wired into the evaluators."""
        with inject("relational.join", EvaluationError) as fault:
            with pytest.raises(EvaluationError):
                evaluate_flock(small_basket_db, basket_flock)
        assert fault.failures == 1
