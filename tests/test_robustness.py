"""Failure-injection and robustness tests across the API surface.

Every malformed input must fail with a library exception (a subclass of
ReproError) carrying a useful message — never a bare KeyError/TypeError
from the internals, and never a silent wrong answer.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    EvaluationError,
    FilterError,
    ParseError,
    PlanError,
    QueryFlock,
    ReproError,
    SafetyError,
    SchemaError,
    atom,
    comparison,
    evaluate_flock,
    negated,
    parse_flock,
    parse_query,
    rule,
    support_filter,
)
from repro.relational import Database, Relation, database_from_dict, evaluate_conjunctive


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ParseError, SchemaError, SafetyError, PlanError, FilterError,
         EvaluationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)


class TestMissingRelations:
    def test_unknown_relation_in_flock(self):
        db = database_from_dict({"other": (("a",), [(1,)])})
        flock = QueryFlock(
            rule("answer", ["B"], [atom("baskets", "B", "$1")]),
            support_filter(1, target="B"),
        )
        with pytest.raises(SchemaError) as exc:
            evaluate_flock(db, flock)
        assert "baskets" in str(exc.value)
        assert "other" in str(exc.value)  # suggests what exists

    def test_arity_mismatch_reported(self):
        db = database_from_dict({"r": (("a", "b", "c"), [(1, 2, 3)])})
        query = rule("answer", ["X"], [atom("r", "X", "Y")])
        # With plan verification on, the IR schema checker rejects the
        # plan (PlanError) before the engine would (EvaluationError);
        # either way the message must name the arity problem.
        with pytest.raises((EvaluationError, PlanError)) as exc:
            evaluate_conjunctive(db, query)
        assert "arity" in str(exc.value)


class TestMalformedFlockText:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "QUERY: FILTER:",
            "QUERY:\nanswer(B) :- baskets(B,$1)\n",  # missing FILTER
            "FILTER:\nCOUNT(answer.B) >= 20",  # missing QUERY
            "QUERY:\nanswer(B) : baskets(B,$1)\nFILTER:\nCOUNT(answer.B) >= 20",
            "QUERY:\nanswer(B) :- baskets(B,$1)\nFILTER:\nMEAN(answer.B) >= 20",
        ],
    )
    def test_rejected_with_library_error(self, text):
        with pytest.raises(ReproError):
            parse_flock(text)

    def test_filter_threshold_must_be_numeric(self):
        with pytest.raises(ReproError):
            parse_flock(
                "QUERY:\nanswer(B) :- r(B,$1)\nFILTER:\nCOUNT(answer.B) >= lots"
            )


class TestParserFuzz:
    printable = st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=80,
    )

    @given(printable)
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_text_never_crashes_unexpectedly(self, text):
        """parse_query either succeeds or raises ParseError/ValueError
        from term validation — nothing else."""
        try:
            parse_query(text)
        except (ParseError, ValueError):
            pass

    @given(printable)
    @settings(max_examples=200, deadline=None)
    def test_flock_parser_never_crashes_unexpectedly(self, text):
        try:
            parse_flock(f"QUERY:\n{text}\nFILTER:\nCOUNT(answer.B) >= 2")
        except ReproError:
            pass
        except ValueError:
            pass


class TestDegenerateData:
    def test_empty_database_flock(self):
        db = database_from_dict({"baskets": (("BID", "Item"), [])})
        flock = QueryFlock(
            rule("answer", ["B"],
                 [atom("baskets", "B", "$1"), atom("baskets", "B", "$2")]),
            support_filter(1, target="B"),
        )
        assert len(evaluate_flock(db, flock)) == 0

    def test_single_tuple_database(self):
        db = database_from_dict({"baskets": (("BID", "Item"), [(1, "x")])})
        flock = QueryFlock(
            rule("answer", ["B"],
                 [atom("baskets", "B", "$1"), atom("baskets", "B", "$2")]),
            support_filter(1, target="B"),
        )
        result = evaluate_flock(db, flock)
        assert result.tuples == frozenset({("x", "x")})

    def test_flock_with_no_parameters(self):
        # Degenerate but legal: a yes/no flock (zero-column result).
        db = database_from_dict({"r": (("a",), [(1,), (2,)])})
        flock = QueryFlock(
            rule("answer", ["X"], [atom("r", "X")]),
            support_filter(2, target="X"),
        )
        result = evaluate_flock(db, flock)
        assert result.columns == ()
        assert len(result) == 1  # "yes": 2 >= 2

    def test_flock_with_no_parameters_failing(self):
        db = database_from_dict({"r": (("a",), [(1,)])})
        flock = QueryFlock(
            rule("answer", ["X"], [atom("r", "X")]),
            support_filter(2, target="X"),
        )
        assert len(evaluate_flock(db, flock)) == 0

    def test_negation_of_empty_relation(self):
        db = database_from_dict(
            {
                "r": (("a", "b"), [(1, "x"), (2, "x")]),
                "s": (("a", "b"), []),
            }
        )
        flock = QueryFlock(
            rule("answer", ["X"],
                 [atom("r", "X", "$1"), negated("s", "X", "$1")]),
            support_filter(2, target="X"),
        )
        result = evaluate_flock(db, flock)
        assert result.tuples == frozenset({("x",)})

    def test_comparison_between_incomparable_types(self):
        # Python 3 raises TypeError comparing int to str; the engine
        # surfaces it rather than silently dropping rows.
        db = database_from_dict({"r": (("a", "b"), [(1, "x")])})
        query = rule(
            "answer", ["A"], [atom("r", "A", "B"), comparison("A", "<", "B")]
        )
        with pytest.raises(TypeError):
            evaluate_conjunctive(db, query)


class TestRelationValidation:
    def test_heterogeneous_width_rows(self):
        with pytest.raises(SchemaError):
            Relation("r", ("a", "b"), [(1, 2), (3,)])

    def test_database_replacement_is_clean(self):
        db = Database()
        db.add_rows("r", ("a",), [(1,)])
        db.add_rows("r", ("a", "b"), [(1, 2)])  # replace with wider schema
        assert db.get("r").arity == 2
