"""CLI tests: every subcommand driven through main() with real files."""

import pytest

from repro.cli import main
from repro.relational import save_database
from repro.workloads import basket_database


FLOCK_TEXT = """QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2

FILTER:
COUNT(answer.B) >= 5
"""


@pytest.fixture
def workspace(tmp_path):
    flock_file = tmp_path / "flock.txt"
    flock_file.write_text(FLOCK_TEXT)
    data_dir = tmp_path / "data"
    db = basket_database(n_baskets=120, n_items=60, skew=1.2, seed=3)
    save_database(db, data_dir)
    return flock_file, data_dir


class TestRun:
    @pytest.mark.parametrize("strategy", ["naive", "optimized", "dynamic", "stats"])
    def test_strategies_all_run(self, workspace, capsys, strategy):
        flock_file, data_dir = workspace
        code = main(["run", str(flock_file), str(data_dir),
                     "--strategy", strategy])
        assert code == 0
        out = capsys.readouterr().out
        assert "acceptable assignments" in out
        assert "$1\t$2" in out

    def test_strategies_agree(self, workspace, capsys):
        flock_file, data_dir = workspace
        outputs = []
        for strategy in ("naive", "optimized", "dynamic"):
            main(["run", str(flock_file), str(data_dir),
                  "--strategy", strategy, "--limit", "1000"])
            out = capsys.readouterr().out
            rows = frozenset(
                line for line in out.splitlines()
                if line and not line.startswith(("#", "$"))
            )
            outputs.append(rows)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_limit_truncates(self, workspace, capsys):
        flock_file, data_dir = workspace
        main(["run", str(flock_file), str(data_dir), "--limit", "1"])
        out = capsys.readouterr().out
        assert "more" in out

    def test_verbose_trace(self, workspace, capsys):
        flock_file, data_dir = workspace
        main(["run", str(flock_file), str(data_dir), "--strategy", "dynamic",
              "--verbose"])
        err = capsys.readouterr().err
        assert "trace" in err

    def test_jobs_matches_serial(self, workspace, capsys):
        flock_file, data_dir = workspace
        outputs = []
        for jobs in ("1", "2"):
            code = main(["run", str(flock_file), str(data_dir),
                         "--strategy", "naive", "--jobs", jobs,
                         "--limit", "1000"])
            assert code == 0
            out = capsys.readouterr().out
            rows = frozenset(
                line for line in out.splitlines()
                if line and not line.startswith(("#", "$"))
            )
            outputs.append(rows)
        assert outputs[0] == outputs[1]

    def test_jobs_reported_in_trace(self, workspace, capsys):
        flock_file, data_dir = workspace
        code = main(["run", str(flock_file), str(data_dir),
                     "--strategy", "naive", "--jobs", "2", "--verbose"])
        assert code == 0
        err = capsys.readouterr().err
        assert "parallelism: 2 jobs" in err

    def test_jobs_rejects_zero(self, workspace, capsys):
        flock_file, data_dir = workspace
        with pytest.raises(SystemExit):
            main(["run", str(flock_file), str(data_dir), "--jobs", "0"])


class TestPlan:
    def test_plan_renders_filter_steps(self, workspace, capsys):
        flock_file, data_dir = workspace
        code = main(["plan", str(flock_file), str(data_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert ":= FILTER" in out

    def test_naive_plan_without_data(self, workspace, capsys):
        flock_file, _ = workspace
        code = main(["plan", str(flock_file), "--strategy", "naive"])
        assert code == 0
        out = capsys.readouterr().out
        assert "single-step" in out


class TestSql:
    def test_naive_sql(self, workspace, capsys):
        flock_file, data_dir = workspace
        code = main(["sql", str(flock_file), str(data_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "GROUP BY" in out and "HAVING" in out

    def test_rewrite_sql(self, workspace, capsys):
        flock_file, data_dir = workspace
        code = main(["sql", str(flock_file), str(data_dir), "--rewrite"])
        assert code == 0
        out = capsys.readouterr().out
        assert "a-priori rewrite" in out

    def test_rewrite_without_data_fails(self, workspace, capsys):
        flock_file, _ = workspace
        code = main(["sql", str(flock_file), "--rewrite"])
        assert code == 2


class TestExplain:
    def test_explain_lists_subqueries(self, workspace, capsys):
        flock_file, _ = workspace
        code = main(["explain", str(flock_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "monotone: True" in out
        assert "safe: True" in out
        assert "answer(B) :- baskets(B, $1)" in out


class TestErrors:
    def test_missing_file(self, tmp_path, capsys):
        code = main(["explain", str(tmp_path / "nope.txt")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_flock_text(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("this is not a flock")
        code = main(["explain", str(bad)])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestLint:
    def test_clean_flock(self, workspace, capsys):
        flock_file, _ = workspace
        code = main(["lint", str(flock_file)])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_warnings_exit_3(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text(
            "QUERY:\n"
            "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND "
            "$1 < $2 AND $2 < $1\n"
            "FILTER:\nCOUNT(answer.B) >= 5\n"
        )
        code = main(["lint", str(bad)])
        assert code == 3
        assert "unsatisfiable-comparisons" in capsys.readouterr().out


class TestExplainWithData:
    def test_explain_includes_join_plan(self, workspace, capsys):
        flock_file, data_dir = workspace
        code = main(["explain", str(flock_file), str(data_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN" in out
        assert "scan " in out


class TestAutoStrategy:
    def test_auto_default(self, workspace, capsys):
        flock_file, data_dir = workspace
        code = main(["run", str(flock_file), str(data_dir)])
        assert code == 0
        assert "(auto," in capsys.readouterr().out

    def test_auto_verbose_shows_mining_report(self, workspace, capsys):
        flock_file, data_dir = workspace
        main(["run", str(flock_file), str(data_dir), "--verbose"])
        err = capsys.readouterr().err
        assert "strategy: dynamic (requested auto)" in err


class TestGenerate:
    @pytest.mark.parametrize(
        "domain", ["baskets", "weighted", "medical", "web", "graph", "articles"]
    )
    def test_domains_write_csvs(self, tmp_path, capsys, domain):
        out = tmp_path / domain
        code = main(["generate", domain, str(out), "--size", "40", "--seed", "5"])
        assert code == 0
        assert list(out.glob("*.csv"))
        assert "wrote" in capsys.readouterr().out

    def test_generated_data_runs_a_flock(self, tmp_path, capsys):
        out = tmp_path / "data"
        main(["generate", "baskets", str(out), "--size", "80", "--seed", "6"])
        flock_file = tmp_path / "flock.txt"
        flock_file.write_text(FLOCK_TEXT)
        code = main(["run", str(flock_file), str(out), "--strategy", "naive"])
        assert code == 0

    def test_deterministic_by_seed(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        main(["generate", "baskets", str(a), "--size", "30", "--seed", "7"])
        main(["generate", "baskets", str(b), "--size", "30", "--seed", "7"])
        assert (a / "baskets.csv").read_text() == (b / "baskets.csv").read_text()


UNION_FLOCK_TEXT = """QUERY:
answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2

FILTER:
COUNT(answer(*)) >= 5
"""


@pytest.fixture
def union_workspace(tmp_path):
    from repro.workloads import generate_webdocs

    flock_file = tmp_path / "union.txt"
    flock_file.write_text(UNION_FLOCK_TEXT)
    data_dir = tmp_path / "webdata"
    workload = generate_webdocs(n_documents=80, n_anchors=160, seed=21)
    save_database(workload.db, data_dir)
    return flock_file, data_dir


class TestUnionFlockCli:
    def test_run_optimized_union(self, union_workspace, capsys):
        flock_file, data_dir = union_workspace
        code = main(["run", str(flock_file), str(data_dir),
                     "--strategy", "optimized"])
        assert code == 0
        assert "acceptable assignments" in capsys.readouterr().out

    def test_plan_union(self, union_workspace, capsys):
        flock_file, data_dir = union_workspace
        code = main(["plan", str(flock_file), str(data_dir)])
        assert code == 0
        assert ":= FILTER" in capsys.readouterr().out

    def test_run_auto_union(self, union_workspace, capsys):
        flock_file, data_dir = union_workspace
        code = main(["run", str(flock_file), str(data_dir)])
        assert code == 0

    def test_union_strategies_agree(self, union_workspace, capsys):
        flock_file, data_dir = union_workspace
        outputs = []
        for strategy in ("naive", "optimized"):
            main(["run", str(flock_file), str(data_dir),
                  "--strategy", strategy, "--limit", "1000"])
            out = capsys.readouterr().out
            rows = frozenset(
                line for line in out.splitlines()
                if line and not line.startswith(("#", "$"))
            )
            outputs.append(rows)
        assert outputs[0] == outputs[1]


class TestSession:
    def test_script_warm_run_hits_cache(self, workspace, tmp_path, capsys):
        flock_file, data_dir = workspace
        script = tmp_path / "session.txt"
        script.write_text(
            f"run {flock_file} 5\n"
            f"run {flock_file} 8\n"
            "stats\n"
            "quit\n"
        )
        code = main(["session", str(data_dir), "--script", str(script)])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("acceptable assignments") == 2
        assert "(cache" in out
        assert "1 exact hits" in out

    def test_threshold_override_changes_answer(self, workspace, tmp_path,
                                               capsys):
        flock_file, data_dir = workspace
        script = tmp_path / "session.txt"
        script.write_text(f"run {flock_file} 2\nrun {flock_file} 50\n")
        code = main(["session", str(data_dir), "--script", str(script)])
        assert code == 0
        counts = [
            int(line.split()[1])
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("# ")
        ]
        assert len(counts) == 2
        assert counts[0] > counts[1]

    def test_bad_command_sets_status(self, workspace, tmp_path, capsys):
        _, data_dir = workspace
        script = tmp_path / "session.txt"
        script.write_text("frobnicate\n")
        code = main(["session", str(data_dir), "--script", str(script)])
        assert code == 2
        assert "unknown command" in capsys.readouterr().err

    def test_missing_flock_file_reports_error(self, workspace, tmp_path,
                                              capsys):
        _, data_dir = workspace
        script = tmp_path / "session.txt"
        script.write_text("run /nonexistent.flock\n")
        code = main(["session", str(data_dir), "--script", str(script)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_persist_warms_second_invocation(self, workspace, tmp_path,
                                             capsys):
        flock_file, data_dir = workspace
        cache_db = tmp_path / "cache.db"
        script = tmp_path / "session.txt"
        script.write_text(f"run {flock_file}\n")
        main(["session", str(data_dir), "--script", str(script),
              "--persist", str(cache_db)])
        capsys.readouterr()
        code = main(["session", str(data_dir), "--script", str(script),
                     "--persist", str(cache_db)])
        assert code == 0
        assert "(cache" in capsys.readouterr().out


class TestCheckpointResume:
    def test_checkpoint_run_prints_run_id(self, workspace, capsys, tmp_path):
        flock_file, data_dir = workspace
        ckpt = tmp_path / "ckpt.db"
        code = main(["run", str(flock_file), str(data_dir),
                     "--checkpoint", str(ckpt), "--run-id", "cli1"])
        assert code == 0
        err = capsys.readouterr().err
        assert "checkpoint run cli1" in err
        assert ckpt.exists()

    def test_resume_round_trip(self, workspace, capsys, tmp_path):
        flock_file, data_dir = workspace
        ckpt = tmp_path / "ckpt.db"
        main(["run", str(flock_file), str(data_dir),
              "--checkpoint", str(ckpt), "--run-id", "cli2"])
        first = capsys.readouterr().out
        code = main(["run", str(flock_file), str(data_dir),
                     "--checkpoint", str(ckpt), "--resume", "cli2"])
        captured = capsys.readouterr()
        assert code == 0

        def rows(text):  # drop the "# ... ms" header: timing varies
            return [
                line for line in text.splitlines()
                if not line.startswith("#")
            ]

        assert rows(captured.out) == rows(first)  # bit-identical answer
        assert "resumed" in captured.err

    def test_resume_requires_checkpoint(self, workspace, capsys):
        flock_file, data_dir = workspace
        code = main(["run", str(flock_file), str(data_dir),
                     "--resume", "cli3"])
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_resume_unknown_run_id_is_clean_error(
        self, workspace, capsys, tmp_path
    ):
        flock_file, data_dir = workspace
        ckpt = tmp_path / "ckpt.db"
        main(["run", str(flock_file), str(data_dir),
              "--checkpoint", str(ckpt)])
        capsys.readouterr()
        code = main(["run", str(flock_file), str(data_dir),
                     "--checkpoint", str(ckpt), "--resume", "missing"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_checkpoint_rejects_sqlite_backend(
        self, workspace, capsys, tmp_path
    ):
        flock_file, data_dir = workspace
        ckpt = tmp_path / "ckpt.db"
        code = main(["run", str(flock_file), str(data_dir),
                     "--checkpoint", str(ckpt), "--backend", "sqlite"])
        assert code == 2
        assert "in-memory" in capsys.readouterr().err
