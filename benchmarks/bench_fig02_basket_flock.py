"""Fig. 2 / Examples 2.1, 3.1: the market-basket flock.

Paper artifacts: the flock itself, and Example 3.1's observation that it
has exactly two nontrivial subqueries whose pruning sets coincide by
symmetry.  The measurement compares every evaluation strategy on a Zipf
basket workload and checks the symmetry claim on real data.
"""

from repro.datalog import safe_subqueries
from repro.flocks import (
    QueryFlock,
    evaluate_flock,
    evaluate_flock_dynamic,
    execute_plan,
    frequent_pairs,
    itemset_plan,
    support_filter,
)

from conftest import report


def test_naive(benchmark, basket_db, basket_flock_20):
    result = benchmark.pedantic(
        lambda: evaluate_flock(basket_db, basket_flock_20),
        rounds=3, iterations=1,
    )
    assert result.columns == ("$1", "$2")


def test_apriori_plan(benchmark, basket_db, basket_flock_20):
    plan = itemset_plan(basket_flock_20)
    result = benchmark.pedantic(
        lambda: execute_plan(basket_db, basket_flock_20, plan, validate=False),
        rounds=3, iterations=1,
    )
    assert result.relation == evaluate_flock(basket_db, basket_flock_20)


def test_dynamic(benchmark, basket_db, basket_flock_20):
    result = benchmark.pedantic(
        lambda: evaluate_flock_dynamic(basket_db, basket_flock_20),
        rounds=3, iterations=1,
    )
    assert result[0].relation == evaluate_flock(basket_db, basket_flock_20)


def test_classic_apriori_file_algorithm(benchmark, basket_db):
    """The ad-hoc file-processing baseline the paper concedes is faster
    than DBMS execution (Section 1.4)."""
    baskets = basket_db.get("baskets")
    pairs = benchmark.pedantic(
        lambda: frequent_pairs(baskets, 20), rounds=3, iterations=1
    )
    flock_pairs = {
        frozenset(t)
        for t in evaluate_flock(
            basket_db,
            QueryFlock(
                _pair_query(), support_filter(20, target="B")
            ),
        ).tuples
    }
    assert pairs == flock_pairs


def _pair_query():
    from repro.datalog import atom, comparison, rule

    return rule(
        "answer",
        ["B"],
        [
            atom("baskets", "B", "$1"),
            atom("baskets", "B", "$2"),
            comparison("$1", "<", "$2"),
        ],
    )


def test_example31_symmetry(benchmark, basket_db):
    """Example 3.1: the $1-subquery survivors equal the $2-subquery
    survivors ("By symmetry, the set of $1's that survive ... is exactly
    the same as the set of $2's")."""
    from repro.datalog import atom, rule

    base = rule(
        "answer", ["B"], [atom("baskets", "B", "$1"), atom("baskets", "B", "$2")]
    )
    subs = safe_subqueries(base)
    assert len(subs) == 2
    outcome = {}

    def run():
        survivors = []
        for candidate in subs:
            flock = QueryFlock(candidate.query, support_filter(20, target="B"))
            result = evaluate_flock(basket_db, flock)
            survivors.append({row[0] for row in result.tuples})
        outcome["sets"] = survivors

    benchmark.pedantic(run, rounds=1, iterations=1)
    first, second = outcome["sets"]
    report(
        "ex3.1",
        "two nontrivial subqueries; their surviving item sets coincide",
        f"both subqueries keep {len(first)} items; sets equal: "
        f"{first == second}",
    )
    assert first == second
