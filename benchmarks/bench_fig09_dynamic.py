"""Figs. 8-9 / Example 4.4: dynamic selection of filter steps.

Paper artifacts: the join-order tree for the medical flock, the
decision procedure (filter a new parameter set when tuples-per-
assignment is below the support threshold), and the resulting Fig. 9
plan with explicit joins.  The measurement runs the dynamic evaluator on
two variants of the medical workload — one with many rare symptoms
(filtering pays at the exhibits leaf, as Example 4.4 assumes) and one
where every symptom is common (filtering is skipped) — showing the
*decisions themselves* flip with the statistics, which is the whole
point of the dynamic strategy.
"""

import pytest

from repro.flocks import evaluate_flock, evaluate_flock_dynamic
from repro.workloads import generate_medical

from conftest import report, scaled


@pytest.fixture(scope="module")
def rare_symptom_workload():
    """Many symptoms, few patients each: exhibits ratio below 20."""
    return generate_medical(
        n_patients=scaled(2000), n_symptoms=900, noise_symptom_rate=1.5,
        seed=201,
    )


@pytest.fixture(scope="module")
def common_symptom_workload():
    """Few symptoms shared by everyone: exhibits ratio far above 20."""
    return generate_medical(
        n_patients=scaled(2500), n_symptoms=12, noise_symptom_rate=1.5,
        seed=202,
    )


def test_dynamic_rare_symptoms(benchmark, rare_symptom_workload, medical_flock_20):
    result = benchmark.pedantic(
        lambda: evaluate_flock_dynamic(
            rare_symptom_workload.db, medical_flock_20
        ),
        rounds=2, iterations=1,
    )
    assert result[0].relation == evaluate_flock(
        rare_symptom_workload.db, medical_flock_20
    )


def test_dynamic_common_symptoms(benchmark, common_symptom_workload, medical_flock_20):
    result = benchmark.pedantic(
        lambda: evaluate_flock_dynamic(
            common_symptom_workload.db, medical_flock_20
        ),
        rounds=2, iterations=1,
    )
    assert result[0].relation == evaluate_flock(
        common_symptom_workload.db, medical_flock_20
    )


def test_decisions_follow_statistics(
    benchmark, rare_symptom_workload, common_symptom_workload, medical_flock_20
):
    """Example 4.4's reasoning, observed: the exhibits leaf is filtered
    when symptoms are rare (ratio < 20) and skipped when they are
    common (ratio > 20)."""
    outcome = {}

    def run():
        _, rare_trace = evaluate_flock_dynamic(
            rare_symptom_workload.db, medical_flock_20
        )
        _, common_trace = evaluate_flock_dynamic(
            common_symptom_workload.db, medical_flock_20
        )
        outcome["rare"] = _symptom_leaf_decision(rare_trace)
        outcome["common"] = _symptom_leaf_decision(common_trace)
        outcome["rare_plan"] = rare_trace.render_plan()

    benchmark.pedantic(run, rounds=1, iterations=1)
    rare, common = outcome["rare"], outcome["common"]
    report(
        "fig9/ex4.4",
        "filter the exhibits leaf when tuples-per-symptom is below the "
        "threshold; skip when above ('we may decide that filtering $m at "
        "this time is likely to be unproductive')",
        f"rare-symptom db: ratio {rare.tuples_per_assignment:.1f} -> "
        f"{'FILTER' if rare.filtered else 'skip'}; common-symptom db: "
        f"ratio {common.tuples_per_assignment:.1f} -> "
        f"{'FILTER' if common.filtered else 'skip'}",
    )
    assert rare.filtered
    assert not common.filtered
    assert "FILTER" in outcome["rare_plan"]


def _symptom_leaf_decision(trace):
    for decision in trace.decisions:
        if decision.parameter_columns == ("$s",) and "exhibits" in decision.node:
            return decision
    raise AssertionError("no $s leaf decision recorded")
