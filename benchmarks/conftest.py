"""Shared benchmark fixtures: session-scoped workloads sized so the full
benchmark run finishes in a couple of minutes while leaving headroom for
the paper's effects (support-20 thresholds, Zipf tails) to show.

Every bench module prints a ``paper vs measured`` summary via
:func:`report`; EXPERIMENTS.md collects the numbers.
"""

import os

import pytest

from repro.flocks import parse_flock
from repro.workloads import (
    article_database,
    basket_database,
    generate_hub_digraph,
    generate_medical,
    generate_webdocs,
    generate_weighted_baskets,
)


#: Workload scale factor.  1.0 reproduces the paper-sized runs; the CI
#: smoke job sets ``REPRO_BENCH_SCALE=0.25`` so the same benchmark code
#: (and its shape assertions) executes end to end in seconds.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def scaled(n: int, minimum: int = 1) -> int:
    """Workload size under ``REPRO_BENCH_SCALE``."""
    return max(minimum, round(n * SCALE))


def report(experiment: str, paper: str, measured: str) -> None:
    """Uniform paper-vs-measured line, grep-able from bench output."""
    print(f"\n[{experiment}] paper: {paper}")
    print(f"[{experiment}] measured: {measured}")


@pytest.fixture(scope="session")
def word_db():
    """The Section 1.3 stand-in corpus: Zipf word occurrences.

    Sized so that most of the vocabulary stays below support 20 (the
    long tail a-priori eliminates) while articles are long enough that
    the naive self-join pays a quadratic price per article.
    """
    return article_database(
        n_articles=scaled(500), vocabulary=scaled(8000),
        words_per_article=60, skew=0.8, seed=101,
    )


@pytest.fixture(scope="session")
def basket_db():
    return basket_database(
        n_baskets=scaled(1000), n_items=scaled(1200), avg_basket_size=8,
        skew=1.1, seed=102,
    )


@pytest.fixture(scope="session")
def medical_workload():
    return generate_medical(
        n_patients=3000, n_diseases=50, n_symptoms=200, n_medicines=100,
        n_planted=4, seed=103,
    )


@pytest.fixture(scope="session")
def web_workload():
    return generate_webdocs(
        n_documents=1200, n_anchors=3000, vocabulary=700, n_planted=4,
        seed=104,
    )


@pytest.fixture(scope="session")
def hub_graph_db():
    return generate_hub_digraph(
        n_hubs=20, successors_per_hub=30, core_nodes=250,
        core_out_degree=3, noise_nodes=1500, noise_arcs=3000, seed=105,
    )


@pytest.fixture(scope="session")
def weighted_db():
    return generate_weighted_baskets(
        n_baskets=800, n_items=600, avg_basket_size=7, skew=1.1,
        max_weight=10, seed=106,
    )


@pytest.fixture(scope="session")
def basket_flock_20():
    return parse_flock(
        """
        QUERY:
        answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
        FILTER:
        COUNT(answer.B) >= 20
        """
    )


@pytest.fixture(scope="session")
def medical_flock_20():
    return parse_flock(
        """
        QUERY:
        answer(P) :-
            exhibits(P,$s) AND
            treatments(P,$m) AND
            diagnoses(P,D) AND
            NOT causes(D,$s)
        FILTER:
        COUNT(answer.P) >= 20
        """
    )


@pytest.fixture(scope="session")
def web_flock_20():
    return parse_flock(
        """
        QUERY:
        answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
        answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND
                     inTitle(D2,$2) AND $1 < $2
        answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND
                     inTitle(D2,$1) AND $1 < $2
        FILTER:
        COUNT(answer(*)) >= 20
        """
    )
