"""Section 1.3: the a-priori rewrite speedup.

Paper claim: rewriting the Fig. 1 SQL pair query "to first find those
items that appeared in at least 20 baskets ... and then joining the set
of these items with the baskets relation ... resulted in a 20-fold
speedup", on newspaper word-occurrence data at support 20.

Reproduction: the same flock over a synthetic Zipf word-occurrence
corpus (see ``repro.workloads.text`` for the substitution note),
evaluated three ways on our engine — naive (full self-join + HAVING),
the a-priori plan, and the dynamic evaluator.  We expect the rewrite to
win by roughly an order of magnitude; the precise factor depends on the
engine, exactly as the paper's 20x depended on theirs.
"""

import time

from repro.flocks import (
    evaluate_flock,
    evaluate_flock_dynamic,
    execute_plan,
    itemset_plan,
    single_step_plan,
)

from conftest import report


def _plan(flock):
    return itemset_plan(flock)


def test_naive_baseline(benchmark, word_db, basket_flock_20):
    result = benchmark.pedantic(
        lambda: evaluate_flock(word_db, basket_flock_20), rounds=2, iterations=1
    )
    assert len(result) > 0


def test_apriori_rewrite(benchmark, word_db, basket_flock_20):
    plan = _plan(basket_flock_20)
    result = benchmark.pedantic(
        lambda: execute_plan(word_db, basket_flock_20, plan, validate=False),
        rounds=2,
        iterations=1,
    )
    assert result.relation == evaluate_flock(word_db, basket_flock_20)


def test_dynamic_rewrite(benchmark, word_db, basket_flock_20):
    result = benchmark.pedantic(
        lambda: evaluate_flock_dynamic(word_db, basket_flock_20),
        rounds=2,
        iterations=1,
    )
    assert result[0].relation == evaluate_flock(word_db, basket_flock_20)


def test_speedup_factor(benchmark, word_db, basket_flock_20):
    """The headline number: naive time / rewritten time."""

    def timed(fn, rounds=2):
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        return best

    measurements = {}

    def compare():
        plan = _plan(basket_flock_20)
        measurements["naive"] = timed(
            lambda: evaluate_flock(word_db, basket_flock_20)
        )
        measurements["rewrite"] = timed(
            lambda: execute_plan(word_db, basket_flock_20, plan, validate=False)
        )
        measurements["dynamic"] = timed(
            lambda: evaluate_flock_dynamic(word_db, basket_flock_20)
        )

    benchmark.pedantic(compare, rounds=1, iterations=1)
    naive_s = measurements["naive"]
    rewrite_s = measurements["rewrite"]
    dynamic_s = measurements["dynamic"]

    speedup = naive_s / rewrite_s
    dynamic_speedup = naive_s / dynamic_s
    report(
        "sec1.3",
        "20-fold speedup from the a-priori rewrite at support 20 "
        "(word occurrences in newspaper articles, commercial DBMS)",
        f"static rewrite {speedup:.1f}x, dynamic {dynamic_speedup:.1f}x "
        f"(naive {naive_s * 1e3:.0f} ms, rewrite {rewrite_s * 1e3:.0f} ms, "
        f"dynamic {dynamic_s * 1e3:.0f} ms) on the synthetic Zipf corpus",
    )
    # Shape check: the rewrite must win clearly (the exact 20x was an
    # artifact of the authors' DBMS; we require a material speedup).
    assert speedup > 2.0


def test_tuple_reduction(benchmark, word_db, basket_flock_20):
    """The mechanism: pre-filtering must eliminate most of the tuples
    before the self-join ("If c is high enough, we can eliminate most of
    the tuples in the baskets relation before we do the hard part")."""
    plan = _plan(basket_flock_20)
    results = {}

    def run():
        results["rewritten"] = execute_plan(
            word_db, basket_flock_20, plan, validate=False
        )
        results["plain"] = execute_plan(
            word_db, basket_flock_20, single_step_plan(basket_flock_20),
            validate=False,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    rewritten_join = results["rewritten"].trace.steps[-1].input_tuples
    naive_join = results["plain"].trace.steps[-1].input_tuples
    report(
        "sec1.3-mechanism",
        "a-priori eliminates most tuples before the join",
        f"self-join answer tuples {naive_join} -> {rewritten_join} "
        f"({naive_join / max(rewritten_join, 1):.1f}x fewer)",
    )
    assert rewritten_join < naive_join / 2
