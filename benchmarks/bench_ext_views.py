"""Extension bench: intermediate predicates (Example 2.2's caveat).

The paper's Fig. 3 flock assumes one disease per patient; with several
diseases, the per-row join against ``diagnoses`` misattributes symptoms
(a symptom explained by disease B still pairs with disease A's row).
The implemented extension materializes ``explained(P,S)`` as a view and
rewrites the flock over it.

This bench quantifies both sides on a multi-disease medical workload:
the *accuracy* difference (pairs the naive Fig. 3 formulation wrongly
reports) and the *cost* of view materialization.
"""

import random


from repro.datalog import materialize_views, parse_rule
from repro.flocks import evaluate_flock, parse_flock
from repro.relational import Database, Relation

from conftest import report


def multi_disease_workload(n_patients=2000, seed=601):
    """A medical DB where every patient has 1-3 diseases."""
    rng = random.Random(seed)
    diseases = [f"d{i:02d}" for i in range(30)]
    symptoms = [f"s{i:03d}" for i in range(120)]
    medicines = [f"m{i:02d}" for i in range(40)]
    causes = {(d, s) for d in diseases for s in rng.sample(symptoms, 4)}
    disease_meds = {d: rng.sample(medicines, 2) for d in diseases}

    # Plant one true side-effect: the most-used medicine secretly causes
    # a symptom that no disease causes at all.
    usage = {m: sum(m in meds for meds in disease_meds.values()) for m in medicines}
    planted_medicine = max(medicines, key=usage.get)
    caused_symptoms = {s for _d, s in causes}
    planted_symptom = next(s for s in symptoms if s not in caused_symptoms)

    diagnoses, exhibits, treatments = set(), set(), set()
    for p in range(n_patients):
        mine = rng.sample(diseases, rng.randint(1, 3))
        took_planted = False
        for d in mine:
            diagnoses.add((p, d))
            for (dd, s) in causes:
                if dd == d and rng.random() < 0.7:
                    exhibits.add((p, s))
            for m in disease_meds[d]:
                if rng.random() < 0.8:
                    treatments.add((p, m))
                    took_planted = took_planted or m == planted_medicine
        if took_planted and rng.random() < 0.8:
            exhibits.add((p, planted_symptom))
        if rng.random() < 0.3:
            exhibits.add((p, rng.choice(symptoms)))
    return Database(
        [
            Relation("diagnoses", ("P", "D"), diagnoses),
            Relation("exhibits", ("P", "S"), exhibits),
            Relation("treatments", ("P", "M"), treatments),
            Relation("causes", ("D", "S"), causes),
        ]
    )


NAIVE_FLOCK = """
QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= 20
"""

VIEW_FLOCK = """
QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    NOT explained(P,$s)
FILTER:
COUNT(answer.P) >= 20
"""

EXPLAINED = parse_rule("explained(P, S) :- diagnoses(P, D) AND causes(D, S)")


def test_view_materialization(benchmark):
    db = multi_disease_workload()
    scratch = benchmark.pedantic(
        lambda: materialize_views(db, [EXPLAINED]), rounds=3, iterations=1
    )
    assert "explained" in scratch


def test_view_flock_evaluation(benchmark):
    db = multi_disease_workload()
    scratch = materialize_views(db, [EXPLAINED])
    flock = parse_flock(VIEW_FLOCK)
    result = benchmark.pedantic(
        lambda: evaluate_flock(scratch, flock), rounds=3, iterations=1
    )
    assert result.columns == ("$m", "$s")


def test_accuracy_difference(benchmark):
    db = multi_disease_workload()
    outcome = {}

    def run():
        naive = evaluate_flock(db, parse_flock(NAIVE_FLOCK))
        scratch = materialize_views(db, [EXPLAINED])
        correct = evaluate_flock(scratch, parse_flock(VIEW_FLOCK))
        outcome["naive"] = set(naive.tuples)
        outcome["correct"] = set(correct.tuples)

    benchmark.pedantic(run, rounds=1, iterations=1)
    spurious = outcome["naive"] - outcome["correct"]
    missed = outcome["correct"] - outcome["naive"]
    report(
        "ext-views",
        "with several diseases per patient the Fig. 3 flock misattributes "
        "symptoms; intermediate predicates fix it ('that extension is "
        "feasible')",
        f"naive reports {len(outcome['naive'])} pairs, view-corrected "
        f"{len(outcome['correct'])}; {len(spurious)} spurious pairs "
        f"eliminated, {len(missed)} missed by naive",
    )
    # Every correct pair is also reported by the (over-permissive) naive
    # form: the view can only *remove* misattributed support.
    assert outcome["correct"] <= outcome["naive"]
    assert spurious, "expected the naive formulation to over-report"
    # The planted true side-effect must survive the correction.
    assert outcome["correct"], "expected the planted side-effect to be found"
