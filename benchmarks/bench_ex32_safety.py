"""Example 3.2: safety analysis of the medical flock's subqueries.

Paper artifacts: "Which of the 14 nontrivial subsets of the subgoals are
safe?" — condition (1) rules out one, condition (2) rules out that one
plus five more, leaving eight safe subqueries, four of which the paper
names as optimization candidates.  The benchmark regenerates the counts
mechanically and times the enumeration machinery (it sits on the
optimizer's hot path).
"""

from repro.datalog import atom, negated, rule, safe_subqueries, unsafe_subqueries

from conftest import report


def medical_query():
    return rule(
        "answer",
        ["P"],
        [
            atom("exhibits", "P", "$s"),
            atom("treatments", "P", "$m"),
            atom("diagnoses", "P", "D"),
            negated("causes", "D", "$s"),
        ],
    )


def test_enumeration_speed(benchmark):
    query = medical_query()
    candidates = benchmark(lambda: safe_subqueries(query))
    assert len(candidates) == 8


def test_enumeration_speed_wide_query(benchmark):
    """An 8-subgoal query (255 nontrivial subsets) to show the
    exponential enumeration stays cheap at realistic query sizes."""
    body = [atom(f"r{i}", "P", f"$p{i}") for i in range(7)]
    body.append(negated("n", "P", "$p0"))
    query = rule("answer", ["P"], body)
    candidates = benchmark(lambda: safe_subqueries(query))
    assert candidates


def test_example32_counts(benchmark):
    query = medical_query()
    outcome = {}

    def run():
        outcome["safe"] = safe_subqueries(query)
        outcome["unsafe"] = unsafe_subqueries(query)

    benchmark.pedantic(run, rounds=1, iterations=1)
    safe, unsafe = outcome["safe"], outcome["unsafe"]
    texts = {str(c.query) for c in safe}
    named_candidates = [
        "answer(P) :- exhibits(P, $s)",
        "answer(P) :- treatments(P, $m)",
        "answer(P) :- exhibits(P, $s) AND diagnoses(P, D) AND NOT causes(D, $s)",
        "answer(P) :- exhibits(P, $s) AND treatments(P, $m)",
    ]
    present = sum(1 for t in named_candidates if t in texts)
    report(
        "ex3.2",
        "14 nontrivial subgoal subsets; 8 safe, 6 unsafe; 4 named "
        "candidate subqueries",
        f"{len(safe) + len(unsafe)} nontrivial subsets; {len(safe)} safe, "
        f"{len(unsafe)} unsafe; {present}/4 named candidates present",
    )
    assert len(safe) == 8
    assert len(unsafe) == 6
    assert present == 4
