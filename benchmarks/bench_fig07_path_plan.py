"""Figs. 6-7 / Example 4.3: the pathological path flock and its chained plan.

Paper artifacts: the n-hop path flock whose plan space admits an
(n+1)-step chain, "any step of which might make a useful simplification
of the query".  The measurement runs the naive evaluation against the
Fig. 7 chain on a hub graph, for growing n, and reports the per-level
survivor counts — the chain must shrink the candidate set monotonically.
"""

import pytest

from repro.datalog import atom, rule
from repro.datalog.subqueries import SubqueryCandidate
from repro.flocks import (
    QueryFlock,
    chained_plan,
    evaluate_flock,
    execute_plan,
    support_filter,
)

from conftest import report


def path_query(n: int):
    body = [atom("arc", "$1", "X")]
    prev = "X"
    for i in range(1, n + 1):
        nxt = f"Y{i}"
        body.append(atom("arc", prev, nxt))
        prev = nxt
    return rule("answer", ["X"], body)


def fig7_chain(query):
    return [
        (
            f"ok{level - 1}",
            SubqueryCandidate(
                tuple(range(level)), query.with_body_subset(range(level))
            ),
        )
        for level in range(1, len(query.body) + 1)
    ]


@pytest.mark.parametrize("n", [1, 2, 3])
def test_naive_path(benchmark, hub_graph_db, n):
    flock = QueryFlock(path_query(n), support_filter(20, target="X"))
    result = benchmark.pedantic(
        lambda: evaluate_flock(hub_graph_db, flock), rounds=2, iterations=1
    )
    assert len(result) >= 20  # the planted hubs qualify


@pytest.mark.parametrize("n", [1, 2, 3])
def test_chained_path_plan(benchmark, hub_graph_db, n):
    query = path_query(n)
    flock = QueryFlock(query, support_filter(20, target="X"))
    plan = chained_plan(flock, fig7_chain(query))
    result = benchmark.pedantic(
        lambda: execute_plan(hub_graph_db, flock, plan, validate=False),
        rounds=2, iterations=1,
    )
    assert result.relation == evaluate_flock(hub_graph_db, flock)


def test_chain_shrinks_candidates(benchmark):
    """On a graph whose hub paths die at controlled depths, every chain
    level must prune a slice of the candidate set — 'any step of which
    might make a useful simplification of the query'."""
    from repro.workloads import generate_layered_hub_digraph

    db = generate_layered_hub_digraph(
        max_depth=3, hubs_per_depth=15, successors_per_hub=25, seed=301
    )
    n = 3
    query = path_query(n)
    flock = QueryFlock(query, support_filter(20, target="X"))
    plan = chained_plan(flock, fig7_chain(query))
    outcome = {}

    def run():
        result = execute_plan(db, flock, plan, validate=False)
        outcome["survivors"] = [
            s.output_assignments for s in result.trace.steps
        ]
        outcome["result"] = len(result)

    benchmark.pedantic(run, rounds=1, iterations=1)
    survivors = outcome["survivors"]
    report(
        "fig7",
        f"an (n+1)-step chain for n={n}; each level may usefully "
        "simplify the query",
        f"candidate $1 values per level: {survivors[:-1]}, final "
        f"result {outcome['result']} nodes",
    )
    chain_counts = survivors[:-1]
    # Every chain level strictly prunes: depth-(l-1) hubs fall out at
    # level l (15 hubs per depth layer).
    assert all(
        later < earlier
        for earlier, later in zip(chain_counts, chain_counts[1:])
    )
    assert outcome["result"] == 15  # only depth-3 hubs survive n=3
