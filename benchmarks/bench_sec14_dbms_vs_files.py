"""Section 1.4: DBMS-based vs file-based mining.

Paper claims: (1) "SQL systems are unable to compete with ad-hoc file
processing algorithms such as a-priori and its variants"; (2) the
flock optimizations "can be carried over to a file-based, rather than
DBMS-based setting, with corresponding speedup".

Reproduction: the same pair-mining question answered four ways —
classic a-priori (the ad-hoc file algorithm), our engine naive, SQLite
naive (the conventional DBMS), and SQLite with the rewrite script —
expecting classic to win outright and the rewrite to transfer its
speedup into the DBMS setting.
"""

import time

from repro.flocks import SQLiteBackend, evaluate_flock, frequent_pairs, itemset_plan, itemsets_from_flock_result

from conftest import report


def test_classic_file_algorithm(benchmark, word_db):
    baskets = word_db.get("baskets")
    pairs = benchmark.pedantic(
        lambda: frequent_pairs(baskets, 20), rounds=2, iterations=1
    )
    assert pairs


def test_sqlite_naive(benchmark, word_db, basket_flock_20):
    backend = SQLiteBackend(word_db)
    result = benchmark.pedantic(
        lambda: backend.evaluate_flock(basket_flock_20), rounds=2, iterations=1
    )
    backend.close()
    assert len(result) > 0


def test_sqlite_rewrite(benchmark, word_db, basket_flock_20):
    backend = SQLiteBackend(word_db)
    plan = itemset_plan(basket_flock_20)
    result = benchmark.pedantic(
        lambda: backend.execute_plan(basket_flock_20, plan),
        rounds=2, iterations=1,
    )
    backend.close()
    assert len(result) > 0


def test_ranking_and_agreement(benchmark, word_db, basket_flock_20):
    outcome = {}

    def run():
        baskets = word_db.get("baskets")
        plan = itemset_plan(basket_flock_20)

        started = time.perf_counter()
        classic = frequent_pairs(baskets, 20)
        outcome["classic_s"] = time.perf_counter() - started

        started = time.perf_counter()
        engine = evaluate_flock(word_db, basket_flock_20)
        outcome["engine_s"] = time.perf_counter() - started

        backend = SQLiteBackend(word_db)
        started = time.perf_counter()
        dbms = backend.evaluate_flock(basket_flock_20)
        outcome["dbms_s"] = time.perf_counter() - started

        started = time.perf_counter()
        dbms_rewrite = backend.execute_plan(basket_flock_20, plan)
        outcome["dbms_rewrite_s"] = time.perf_counter() - started
        backend.close()

        outcome["agree"] = (
            classic
            == itemsets_from_flock_result(engine)
            == itemsets_from_flock_result(dbms)
            == itemsets_from_flock_result(dbms_rewrite)
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "sec1.4",
        "ad-hoc file algorithms beat DBMS-based mining; the flock "
        "optimizations carry over to the DBMS with corresponding speedup",
        f"agree: {outcome['agree']}; classic a-priori "
        f"{outcome['classic_s'] * 1e3:.0f} ms | engine naive "
        f"{outcome['engine_s'] * 1e3:.0f} ms | SQLite naive "
        f"{outcome['dbms_s'] * 1e3:.0f} ms | SQLite rewrite "
        f"{outcome['dbms_rewrite_s'] * 1e3:.0f} ms "
        f"({outcome['dbms_s'] / outcome['dbms_rewrite_s']:.1f}x rewrite "
        "speedup inside the DBMS)",
    )
    assert outcome["agree"]
    # The headline ranking: the ad-hoc algorithm beats both naive paths.
    assert outcome["classic_s"] < outcome["engine_s"]
    assert outcome["classic_s"] < outcome["dbms_s"]
    # And the rewrite transfers into the DBMS setting.
    assert outcome["dbms_rewrite_s"] < outcome["dbms_s"]
