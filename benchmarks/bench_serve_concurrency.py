#!/usr/bin/env python
"""Serve-layer concurrency benchmark: the cache-sharing win.

N concurrent clients ask overlapping questions — the same Section 1.3
word-pair flock in alpha-variant spellings plus a ladder of stricter
thresholds.  Against one ``repro serve`` daemon they share a single
containment-aware result cache, so only the *first* ask pays for
evaluation; everyone else is served by re-filtering cached aggregates.
The baseline runs the same request multiset as sequential cold
:func:`repro.mine` calls (no session, no sharing) — the way N separate
batch scripts would.

Outputs ``BENCH_serve.json`` (override with ``$REPRO_BENCH_JSON``)::

    {
      "serial_ms":      total wall for the sequential cold baseline,
      "concurrent_ms":  wall for the same requests via concurrent clients,
      "speedup":        serial_ms / concurrent_ms   (must be > 1),
      "cache_hits":     server-side hits scraped from /metrics (> 0),
      ...
    }

Usage::

    python benchmarks/bench_serve_concurrency.py --scale 0.25
    python benchmarks/bench_serve_concurrency.py --server http://host:port

With ``--server`` the workload is pushed to the running daemon via
``POST /v1/data`` first (the CI serve job boots ``repro serve`` and
points the benchmark at it); without it an in-process server thread is
used.
"""

import argparse
import json
import os
import sys
import threading
import time

if __package__ is None or __package__ == "":  # script invocation
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
    )

from repro import mine, parse_flock  # noqa: E402
from repro.serve import (  # noqa: E402
    MiningClient,
    MiningService,
    ServerConfig,
    server_in_thread,
)
from repro.workloads import article_database  # noqa: E402

FLOCK = """
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2

FILTER:
COUNT(answer.B) >= {support}
"""

#: Alpha-variant spelling (atoms reordered): a different client asking
#: the same question differently still shares the cache entry.
FLOCK_SWAPPED = """
QUERY:
answer(B) :- baskets(B,$2) AND baskets(B,$1) AND $1 < $2

FILTER:
COUNT(answer.B) >= {support}
"""


def scaled(n: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, round(n * scale))


def make_db(scale: float):
    return article_database(
        n_articles=scaled(500, scale),
        vocabulary=scaled(8000, scale),
        words_per_article=60,
        skew=0.8,
        seed=101,
    )


def request_menu(clients: int, requests_per_client: int):
    """Per-client request lists: overlapping spellings and a threshold
    ladder (20 base, stricter follow-ups all containment-served)."""
    spellings = (FLOCK, FLOCK_SWAPPED)
    thresholds = (20, 25, 30)
    menu = []
    for client in range(clients):
        asks = []
        for request in range(requests_per_client):
            text = spellings[(client + request) % len(spellings)]
            support = thresholds[(client + request) % len(thresholds)]
            asks.append(text.format(support=support))
        menu.append(asks)
    return menu


def run_serial_baseline(db, menu) -> float:
    """The same request multiset as isolated cold mine() calls."""
    started = time.perf_counter()
    for asks in menu:
        for text in asks:
            relation, _ = mine(db, parse_flock(text))
            assert len(relation) >= 0
    return (time.perf_counter() - started) * 1e3


def run_concurrent_clients(address: str, menu) -> tuple[float, list[dict]]:
    """One thread per client, all issuing their asks against the
    shared server; returns (wall_ms, per-client summaries)."""
    barrier = threading.Barrier(len(menu))
    summaries = [None] * len(menu)
    failures = []

    def client_main(index: int, asks) -> None:
        client = MiningClient(address, tenant=f"client-{index}")
        barrier.wait()
        hits = 0
        rows = 0
        try:
            for text in asks:
                result = client.mine(text)
                hits += result["report"]["cache_hits"]
                rows += result["row_count"]
        except Exception as error:  # noqa: BLE001 - reported below
            failures.append(error)
            return
        summaries[index] = {
            "client": index, "requests": len(asks),
            "cache_hits": hits, "rows": rows,
        }

    threads = [
        threading.Thread(target=client_main, args=(i, asks))
        for i, asks in enumerate(menu)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_ms = (time.perf_counter() - started) * 1e3
    if failures:
        raise failures[0]
    return wall_ms, summaries


def push_workload(address: str, db) -> None:
    """Load the corpus into a remote daemon via POST /v1/data."""
    client = MiningClient(address)
    for name in db.names():
        relation = db.get(name)
        client.load_relation(
            name, list(relation.columns),
            [list(row) for row in sorted(relation.tuples, key=repr)],
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get("REPRO_BENCH_SCALE", "1")),
                        help="workload scale factor (CI smoke uses 0.25)")
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--requests", type=int, default=4,
                        help="requests per client")
    parser.add_argument("--workers", type=int, default=4,
                        help="server dispatcher threads (in-process mode)")
    parser.add_argument("--server", default=None, metavar="URL",
                        help="benchmark a running daemon instead of an "
                        "in-process server (workload pushed via /v1/data)")
    parser.add_argument("--json", default=os.environ.get(
        "REPRO_BENCH_JSON", "BENCH_serve.json"))
    args = parser.parse_args(argv)

    db = make_db(args.scale)
    menu = request_menu(args.clients, args.requests)
    total_requests = sum(len(asks) for asks in menu)

    print(f"workload: {db} (scale {args.scale})")
    print(f"requests: {args.clients} clients x {args.requests} "
          f"({total_requests} total, overlapping)")

    serial_ms = run_serial_baseline(db, menu)
    print(f"serial baseline: {total_requests} cold mine() calls in "
          f"{serial_ms:.0f} ms")

    def measure(address: str):
        wall_ms, summaries = run_concurrent_clients(address, menu)
        probe = MiningClient(address)
        hits = probe.metric_value("repro_cache_hits_total") or 0
        misses = probe.metric_value("repro_cache_misses_total") or 0
        health = probe.health()
        return wall_ms, summaries, hits, misses, health

    if args.server is not None:
        push_workload(args.server, db)
        concurrent_ms, summaries, hits, misses, health = measure(args.server)
    else:
        service = MiningService(
            db, ServerConfig(port=0, workers=args.workers)
        )
        with server_in_thread(service) as server:
            concurrent_ms, summaries, hits, misses, health = measure(
                server.address
            )

    speedup = serial_ms / max(concurrent_ms, 1e-9)
    print(f"concurrent clients: same {total_requests} requests in "
          f"{concurrent_ms:.0f} ms  ->  {speedup:.2f}x")
    print(f"server cache: {hits:.0f} hit(s), {misses:.0f} miss(es); "
          f"p99 {health['latency']['p99_ms']:.1f} ms")

    payload = {
        "scale": args.scale,
        "clients": args.clients,
        "requests_per_client": args.requests,
        "total_requests": total_requests,
        "workers": args.workers if args.server is None else None,
        "external_server": args.server,
        "serial_ms": round(serial_ms, 2),
        "concurrent_ms": round(concurrent_ms, 2),
        "speedup": round(speedup, 3),
        "cache_hits": hits,
        "cache_misses": misses,
        "latency_p50_ms": health["latency"]["p50_ms"],
        "latency_p99_ms": health["latency"]["p99_ms"],
        "clients_detail": summaries,
    }
    with open(args.json, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.json}")

    # The acceptance claims, enforced where the numbers are made:
    assert hits > 0, "server reported zero cache hits — no sharing happened"
    assert speedup > 1.0, (
        f"concurrent clients were not faster than the sequential cold "
        f"baseline ({speedup:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
