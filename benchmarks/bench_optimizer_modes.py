"""Ablation: cost-model quality (Section 4.4's statistics gathering).

The paper: "we may want to do substantial gathering of statistics to
support the filter/don't filter decision."  This bench compares the
three decision sources on a long-tailed basket workload:

* pigeonhole estimates only (cheap, no data access);
* gathered statistics (exact survivor counts for single-subgoal
  candidates — one group-by scan each);
* fully dynamic decisions (Section 4.4).

All three must return the naive answer; the interesting output is the
quality/overhead trade-off.
"""

import time

from repro.flocks import (
    FlockOptimizer,
    evaluate_flock,
    evaluate_flock_dynamic,
    execute_plan,
    itemset_flock,
)
from repro.workloads import basket_database

from conftest import report


def _workload():
    return basket_database(
        n_baskets=700, n_items=1500, avg_basket_size=8, skew=1.0, seed=401
    )


def test_pigeonhole_optimizer(benchmark):
    db = _workload()
    flock = itemset_flock(2, support=15)

    def run():
        plan = FlockOptimizer(db, flock, gather_statistics=False).best_plan().plan
        return execute_plan(db, flock, plan, validate=False)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.relation == evaluate_flock(db, flock)


def test_gathered_statistics_optimizer(benchmark):
    db = _workload()
    flock = itemset_flock(2, support=15)

    def run():
        plan = FlockOptimizer(db, flock, gather_statistics=True).best_plan().plan
        return execute_plan(db, flock, plan, validate=False)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.relation == evaluate_flock(db, flock)


def test_dynamic_decisions(benchmark):
    db = _workload()
    flock = itemset_flock(2, support=15)
    result = benchmark.pedantic(
        lambda: evaluate_flock_dynamic(db, flock), rounds=2, iterations=1
    )
    assert result[0].relation == evaluate_flock(db, flock)


def test_mode_comparison(benchmark):
    db = _workload()
    flock = itemset_flock(2, support=15)
    outcome = {}

    def compare():
        started = time.perf_counter()
        naive = evaluate_flock(db, flock)
        outcome["naive_s"] = time.perf_counter() - started

        for label, gather in (("pigeonhole", False), ("gathered", True)):
            started = time.perf_counter()
            opt = FlockOptimizer(db, flock, gather_statistics=gather)
            scored = opt.best_plan()
            plan_time = time.perf_counter() - started
            started = time.perf_counter()
            result = execute_plan(db, flock, scored.plan, validate=False)
            outcome[label] = (
                plan_time,
                time.perf_counter() - started,
                len(scored.plan),
                scored.estimated_cost,
            )
            assert result.relation == naive

        started = time.perf_counter()
        dyn, trace = evaluate_flock_dynamic(db, flock)
        outcome["dynamic_s"] = time.perf_counter() - started
        outcome["dynamic_filters"] = trace.filters_applied()
        assert dyn.relation == naive

    benchmark.pedantic(compare, rounds=1, iterations=1)
    pg_plan, pg_exec, pg_steps, pg_cost = outcome["pigeonhole"]
    gs_plan, gs_exec, gs_steps, gs_cost = outcome["gathered"]
    report(
        "sec4.4-statistics",
        "gathering statistics sharpens the filter/don't-filter decision",
        f"naive {outcome['naive_s'] * 1e3:.0f} ms | pigeonhole: plan "
        f"{pg_plan * 1e3:.0f} ms + exec {pg_exec * 1e3:.0f} ms "
        f"({pg_steps} steps, est {pg_cost:,.0f}) | gathered: plan "
        f"{gs_plan * 1e3:.0f} ms + exec {gs_exec * 1e3:.0f} ms "
        f"({gs_steps} steps, est {gs_cost:,.0f}) | dynamic "
        f"{outcome['dynamic_s'] * 1e3:.0f} ms "
        f"({outcome['dynamic_filters']} filters)",
    )
    # Gathered statistics can only tighten the cost estimate.
    assert gs_cost <= pg_cost + 1e-9
