"""Join-order modes: greedy vs Selinger DP vs pessimistic UES bounds.

The paper defers join ordering to "the general theory of cost-based
optimization ([G*79])"; this bench compares the three orderers the
planner offers, with and without runtime semi-join filter injection:

* ``greedy`` — smallest estimated growth next (the default);
* ``selinger`` — the System-R DP over left-deep orders, still under the
  independence cost model;
* ``ues`` — the pessimistic mode: stages ranked by *guaranteed* output
  upper bounds (exact distinct counts × max per-value frequencies),
  never by independence estimates.

Workloads: the two Section 1.3 paper workloads (Zipf word occurrences
and market baskets), where all modes should be comparable, plus the
**adversarial-skew clickstream** (:mod:`repro.workloads.skew`) built to
fool estimates: bot accounts hot in two relations at once make the
estimate-minimal order join hot⋈hot early and blow up, while the UES
bound carries the bots' max frequency and provably defers that join.

Every (mode × filters) cell must return identical survivors.  Output:
a JSON report at ``$REPRO_BENCH_JSON_OPTIMIZER`` (default
``BENCH_optimizer.json``) with one row per cell and the headline
UES+filters vs greedy speedups.

Floors: ``REPRO_BENCH_MIN_UES_SPEEDUP`` (exported by the CI smoke job
as ``1.0``) gates the adversarial-skew headline at any scale; a
full-scale run (``REPRO_BENCH_SCALE >= 1``) additionally asserts the
acceptance targets — >=1.5x on adversarial-skew and parity (within
measurement tolerance) on the paper workloads.
"""

import json
import os
import time

import pytest

from repro.flocks import parse_flock
from repro.flocks.mining import mine
from repro.workloads import generate_skewed_clickstream

from conftest import SCALE, report, scaled

JSON_PATH = os.environ.get(
    "REPRO_BENCH_JSON_OPTIMIZER", "BENCH_optimizer.json"
)

#: (join_order, runtime_filters) cells swept per workload.
MODES = [
    ("greedy", False),
    ("greedy", True),
    ("selinger", False),
    ("selinger", True),
    ("ues", False),
    ("ues", True),
]

#: Timing = best of this many end-to-end mine() calls per cell (each
#: call re-plans, so plan search is included in every sample).
ROUNDS = 3


@pytest.fixture(scope="module")
def skew_db():
    return generate_skewed_clickstream(
        n_users=scaled(8000),
        n_bots=scaled(24, minimum=4),
        n_promo_users=scaled(600, minimum=40),
        n_pages=scaled(600, minimum=60),
        n_videos=scaled(500, minimum=50),
        n_items=scaled(300, minimum=30),
        bot_activity=scaled(120, minimum=30),
        seed=407,
    )


@pytest.fixture(scope="module")
def skew_flock():
    return parse_flock(
        """
        QUERY:
        answer(U) :- promo(U,G) AND clicks(U,$1) AND views(U,V)
                     AND purchases(U,$2)
        FILTER:
        COUNT(answer.U) >= 3
        """
    )


def _sweep(db, flock, workload: str) -> list:
    """One row per (join_order, runtime_filters) cell: best-of-ROUNDS
    wall ms plus survivor count — which must agree across every cell."""
    rows = []
    baseline = None
    for join_order, runtime_filters in MODES:
        wall_ms = float("inf")
        for _ in range(ROUNDS):
            started = time.perf_counter()
            relation, rpt = mine(
                db, flock,
                strategy="optimized", backend="memory", parallelism=1,
                join_order=join_order, runtime_filters=runtime_filters,
            )
            wall_ms = min(wall_ms, (time.perf_counter() - started) * 1e3)
        survivors = sorted(relation.tuples, key=repr)
        if baseline is None:
            baseline = survivors
        assert survivors == baseline, (
            f"{workload}: {join_order}/filters={runtime_filters} "
            f"survivors differ from {MODES[0]}"
        )
        rows.append({
            "workload": workload,
            "join_order": join_order,
            "runtime_filters": runtime_filters,
            "wall_ms": round(wall_ms, 2),
            "survivors": len(survivors),
            "rows_pruned": rpt.runtime_filter_rows_pruned,
        })
    return rows


def _cell(rows: list, workload: str, join_order: str, rf: bool) -> dict:
    return next(
        r for r in rows
        if r["workload"] == workload
        and r["join_order"] == join_order
        and r["runtime_filters"] is rf
    )


def _speedup(rows: list, workload: str) -> float:
    """UES + runtime filters vs the greedy default (no filters)."""
    greedy = _cell(rows, workload, "greedy", False)["wall_ms"]
    ues = _cell(rows, workload, "ues", True)["wall_ms"]
    return greedy / max(ues, 1e-9)


def _write_json(rows: list, speedups: dict) -> None:
    payload = {
        "scale": SCALE,
        "cpu_count": os.cpu_count(),
        "modes": [
            {"join_order": order, "runtime_filters": rf}
            for order, rf in MODES
        ],
        "speedup_ues_filters_vs_greedy": {
            workload: round(value, 3) for workload, value in speedups.items()
        },
        "rows": rows,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_optimizer_modes(
    benchmark, word_db, basket_db, basket_flock_20, skew_db, skew_flock
):
    """Full mode × filters sweep over three workloads, JSON out."""
    collected = {}

    def run():
        rows = []
        rows += _sweep(skew_db, skew_flock, "adversarial-skew")
        rows += _sweep(word_db, basket_flock_20, "words-sec1.3")
        rows += _sweep(basket_db, basket_flock_20, "baskets-sec1.3")
        collected["rows"] = rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = collected["rows"]
    speedups = {
        workload: _speedup(rows, workload)
        for workload in ("adversarial-skew", "words-sec1.3", "baskets-sec1.3")
    }
    _write_json(rows, speedups)

    skew_rf = _cell(rows, "adversarial-skew", "ues", True)
    report(
        "optimizer-modes",
        "bounds beat estimates on correlated skew, tie on paper data",
        " | ".join(
            f"{workload} ues+filters {speedup:.2f}x vs greedy"
            for workload, speedup in speedups.items()
        )
        + f" | {skew_rf['rows_pruned']} scan rows pruned on skew",
    )

    # Runtime filters must actually fire on the skew workload (its page
    # and item long tails are built to be mostly prunable).
    assert skew_rf["rows_pruned"] > 0

    floor = os.environ.get("REPRO_BENCH_MIN_UES_SPEEDUP", "")
    if floor:
        measured = speedups["adversarial-skew"]
        assert measured >= float(floor), (
            f"expected >={floor}x on adversarial-skew, "
            f"measured {measured:.2f}x"
        )

    if SCALE >= 1.0:
        # The acceptance targets, asserted only at full scale where the
        # skew structure is big enough to dominate fixed costs.
        assert speedups["adversarial-skew"] >= 1.5, speedups
        for workload in ("words-sec1.3", "baskets-sec1.3"):
            # Parity on the paper workloads: UES must never lose; 5%
            # covers timer noise between best-of-3 samples.
            assert speedups[workload] >= 0.95, speedups
