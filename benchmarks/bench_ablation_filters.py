"""Ablation: which of Example 3.2's candidate filter steps pay off?

The paper deliberately leaves the choice open — "We cannot pick a
strategy without knowing something about sizes of the relations and
numbers of patients, diseases, etc." — and gives intuitions: subquery
(1) helps when rare symptoms abound, (2) when medicines are rarely
used, (3) when diseases have few medicines, (4) when the two-relation
join is much cheaper than the four-relation one.

This ablation executes every combination of the four candidate
pre-filters on the medical workload and reports final-join sizes and
times, so the paper's "it depends on the statistics" claim becomes a
concrete table.
"""

from itertools import combinations

import pytest

from repro.datalog.subqueries import SubqueryCandidate
from repro.flocks import (
    evaluate_flock,
    execute_plan,
    plan_from_subqueries,
    single_step_plan,
)

from conftest import report


def candidate_steps(flock):
    """The paper's four numbered candidates from Example 3.2."""
    rule = flock.rules[0]
    return {
        "sq1_exhibits": SubqueryCandidate((0,), rule.with_body_subset([0])),
        "sq2_treatments": SubqueryCandidate((1,), rule.with_body_subset([1])),
        "sq3_unexplained": SubqueryCandidate(
            (0, 2, 3), rule.with_body_subset([0, 2, 3])
        ),
        "sq4_pair": SubqueryCandidate((0, 1), rule.with_body_subset([0, 1])),
    }


@pytest.mark.parametrize(
    "names",
    [
        (),
        ("sq1_exhibits",),
        ("sq2_treatments",),
        ("sq3_unexplained",),
        ("sq4_pair",),
        ("sq1_exhibits", "sq2_treatments"),
    ],
    ids=lambda names: "+".join(names) or "none",
)
def test_filter_combination(benchmark, medical_workload, medical_flock_20, names):
    candidates = candidate_steps(medical_flock_20)
    if names:
        plan = plan_from_subqueries(
            medical_flock_20, [(n, candidates[n]) for n in names]
        )
    else:
        plan = single_step_plan(medical_flock_20)
    result = benchmark.pedantic(
        lambda: execute_plan(
            medical_workload.db, medical_flock_20, plan, validate=False
        ),
        rounds=2, iterations=1,
    )
    assert result.relation == evaluate_flock(
        medical_workload.db, medical_flock_20
    )


def test_ablation_table(benchmark, medical_workload, medical_flock_20):
    """Every subset of the four candidates: final-join input sizes."""
    candidates = candidate_steps(medical_flock_20)
    outcome = {}

    def run():
        rows = []
        for size in range(0, 3):
            for names in combinations(sorted(candidates), size):
                if names:
                    plan = plan_from_subqueries(
                        medical_flock_20, [(n, candidates[n]) for n in names]
                    )
                else:
                    plan = single_step_plan(medical_flock_20)
                result = execute_plan(
                    medical_workload.db, medical_flock_20, plan, validate=False
                )
                rows.append(
                    ("+".join(names) or "none",
                     result.trace.steps[-1].input_tuples,
                     result.trace.total_seconds)
                )
        outcome["rows"] = rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = outcome["rows"]
    baseline = rows[0][1]
    best = min(rows, key=lambda r: r[1])
    print("\n[ablation] final-join answer tuples by pre-filter set:")
    for name, final_join, seconds in rows:
        print(f"  {name:<40s} {final_join:>8d} tuples  {seconds * 1e3:7.1f} ms")
    report(
        "ex3.2-ablation",
        "which candidate subqueries help 'depends on the statistics of "
        "the situation'",
        f"baseline {baseline} tuples; best combination {best[0]} with "
        f"{best[1]} tuples ({baseline / max(best[1], 1):.2f}x reduction)",
    )
    # Filters never hurt correctness and never grow the final join.
    assert all(final <= baseline for _, final, _ in rows)
