"""Columnar engine vs the pre-refactor row-at-a-time evaluator.

Before the physical-IR refactor, every strategy evaluated through
row-set operators: joins probed frozensets of tuples and grouping
re-built a key tuple per row.  The columnar :class:`MemoryEngine`
interprets the same lowered plans over per-column arrays instead.

The baselines below were measured on this machine with the last
pre-refactor commit (row-at-a-time operators, same workloads, same
``rounds=2`` best-of protocol).  They are pinned so the speedup is
tracked against a fixed reference rather than drifting with the code
under test; re-measure them from the old commit if the hardware
changes.
"""

import time

from repro.flocks import (
    evaluate_flock,
    evaluate_flock_dynamic,
    execute_plan,
    itemset_plan,
    parse_flock,
)

from conftest import report

# Pre-refactor row-at-a-time timings (ms), best of 2 rounds.
BASELINE_WORD_MS = {"naive": 7205.8, "rewrite": 1778.4, "dynamic": 1044.7}
BASELINE_WORD_SURVIVORS = 769
BASELINE_BASKET_MS = {"naive": 169.1, "rewrite": 195.5, "dynamic": 203.0}


def _timed(fn, rounds=2):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best * 1e3, result


def _measure(db, flock):
    plan = itemset_plan(flock)
    naive_ms, survivors = _timed(lambda: evaluate_flock(db, flock))
    rewrite_ms, _ = _timed(
        lambda: execute_plan(db, flock, plan, validate=False)
    )
    dynamic_ms, _ = _timed(lambda: evaluate_flock_dynamic(db, flock))
    return (
        {"naive": naive_ms, "rewrite": rewrite_ms, "dynamic": dynamic_ms},
        len(survivors),
    )


def _summary(measured, baseline):
    return ", ".join(
        f"{key} {measured[key]:.0f} ms (was {baseline[key]:.0f} ms, "
        f"{baseline[key] / measured[key]:.1f}x)"
        for key in ("naive", "rewrite", "dynamic")
    )


def test_columnar_vs_row_at_a_time_words(benchmark, word_db, basket_flock_20):
    """The Section 1.3 corpus: the acceptance workload for the engine.

    The columnar engine must beat the pinned row-at-a-time evaluator by
    at least 2x on the naive in-memory path.
    """
    results = {}

    def run():
        results["measured"], results["survivors"] = _measure(
            word_db, basket_flock_20
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    measured = results["measured"]
    report(
        "engine-columnar-words",
        "columnar engine vs pre-refactor row-at-a-time evaluator "
        "(word corpus, support 20)",
        _summary(measured, BASELINE_WORD_MS),
    )
    assert results["survivors"] == BASELINE_WORD_SURVIVORS
    assert BASELINE_WORD_MS["naive"] / measured["naive"] >= 2.0


def test_columnar_vs_row_at_a_time_baskets(benchmark, basket_db):
    """The basket workload: smaller relations, so the columnar layout
    has less to amortize; we track the ratio without a hard floor."""
    flock = parse_flock(
        """
        QUERY:
        answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
        FILTER:
        COUNT(answer.B) >= 10
        """
    )
    results = {}

    def run():
        results["measured"], results["survivors"] = _measure(basket_db, flock)

    benchmark.pedantic(run, rounds=1, iterations=1)
    measured = results["measured"]
    report(
        "engine-columnar-baskets",
        "columnar engine vs pre-refactor row-at-a-time evaluator "
        "(baskets, support 10)",
        _summary(measured, BASELINE_BASKET_MS),
    )
    assert results["survivors"] > 0
    # No regression: the columnar engine must not be slower than the
    # row-at-a-time evaluator on any strategy.
    for key, baseline_ms in BASELINE_BASKET_MS.items():
        assert measured[key] < baseline_ms * 1.5
