"""Fig. 5 / Examples 4.1-4.2: the three-step medical plan.

Paper artifacts: the okS/okM/final plan and the argument that the third
step is *easier*, not harder, than the original query because the small
ok-relations join first and shrink every intermediate result.  The
measurement executes the exact Fig. 5 plan, validates it with the
Section 4.2 legality rule, and checks the intermediate-size claim.
"""

from repro.datalog.subqueries import SubqueryCandidate
from repro.flocks import (
    evaluate_flock,
    execute_plan,
    plan_from_subqueries,
    single_step_plan,
    validate_plan,
)

from conftest import report


def fig5_plan(flock):
    rule = flock.rules[0]
    return plan_from_subqueries(
        flock,
        [
            ("okS", SubqueryCandidate((0,), rule.with_body_subset([0]))),
            ("okM", SubqueryCandidate((1,), rule.with_body_subset([1]))),
        ],
    )


def test_fig5_plan_execution(benchmark, medical_workload, medical_flock_20):
    plan = fig5_plan(medical_flock_20)
    validate_plan(medical_flock_20, plan)
    result = benchmark.pedantic(
        lambda: execute_plan(
            medical_workload.db, medical_flock_20, plan, validate=False
        ),
        rounds=3, iterations=1,
    )
    assert result.relation == evaluate_flock(
        medical_workload.db, medical_flock_20
    )


def test_single_step_baseline(benchmark, medical_workload, medical_flock_20):
    plan = single_step_plan(medical_flock_20)
    result = benchmark.pedantic(
        lambda: execute_plan(
            medical_workload.db, medical_flock_20, plan, validate=False
        ),
        rounds=3, iterations=1,
    )
    assert result.relation == evaluate_flock(
        medical_workload.db, medical_flock_20
    )


def test_third_step_easier_not_harder(benchmark, medical_workload, medical_flock_20):
    """Example 4.1: "the third step should be easier, not harder, to
    answer than the original query" — its answer relation must be no
    larger than the unfiltered one."""
    outcome = {}

    def run():
        with_filters = execute_plan(
            medical_workload.db, medical_flock_20, fig5_plan(medical_flock_20),
            validate=False,
        )
        plain = execute_plan(
            medical_workload.db, medical_flock_20,
            single_step_plan(medical_flock_20), validate=False,
        )
        outcome["filtered_final"] = with_filters.trace.steps[-1].input_tuples
        outcome["plain_final"] = plain.trace.steps[-1].input_tuples
        outcome["ok_s"] = with_filters.trace.steps[0].output_assignments
        outcome["ok_m"] = with_filters.trace.steps[1].output_assignments

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig5",
        "okS and okM join quickly with exhibits/treatments and shrink "
        "subsequent joins; the final step is easier than the original",
        f"okS keeps {outcome['ok_s']} symptoms, okM keeps {outcome['ok_m']} "
        f"medicines; final answer relation {outcome['plain_final']} -> "
        f"{outcome['filtered_final']} tuples "
        f"({outcome['plain_final'] / max(outcome['filtered_final'], 1):.2f}x)",
    )
    assert outcome["filtered_final"] <= outcome["plain_final"]
