"""Section 4.3 heuristic 2 / footnote 3: flock plans generalize a-priori.

Paper claim: the level-wise a-priori method for k-itemsets *is* a flock
query plan ("we compute candidate sets of k items by restricting to
those itemsets such that each subset of k-1 items previously has met the
support test").  The measurement checks exact agreement between the
classic algorithm and the flock machinery for k = 2 and 3, and times
both — the classic file-processing algorithm should win (Section 1.4
concedes this), with the flock plan well ahead of naive evaluation.
"""

import time

from repro.flocks import (
    apriori_itemsets,
    evaluate_flock,
    execute_plan,
    frequent_pairs,
    itemset_flock,
    itemset_plan,
    itemsets_from_flock_result,
)

from conftest import report


def test_classic_apriori_k3(benchmark, basket_db):
    baskets = basket_db.get("baskets")
    levels = benchmark.pedantic(
        lambda: apriori_itemsets(baskets, 20, max_size=3),
        rounds=3, iterations=1,
    )
    assert 1 in levels


def test_flock_plan_k2(benchmark, basket_db):
    flock = itemset_flock(2, support=20)
    plan = itemset_plan(flock)
    result = benchmark.pedantic(
        lambda: execute_plan(basket_db, flock, plan, validate=False),
        rounds=3, iterations=1,
    )
    assert itemsets_from_flock_result(result.relation) == frequent_pairs(
        basket_db.get("baskets"), 20
    )


def test_flock_plan_k3(benchmark, basket_db):
    flock = itemset_flock(3, support=20)
    plan = itemset_plan(flock)
    result = benchmark.pedantic(
        lambda: execute_plan(basket_db, flock, plan, validate=False),
        rounds=2, iterations=1,
    )
    classic = set(
        apriori_itemsets(basket_db.get("baskets"), 20, max_size=3).get(3, {})
    )
    assert itemsets_from_flock_result(result.relation) == classic


def test_equivalence_and_ranking(benchmark, basket_db):
    """All three methods agree; the expected performance order is
    classic < flock plan < naive flock."""
    baskets = basket_db.get("baskets")
    outcome = {}

    def run():
        flock = itemset_flock(2, support=20)
        plan = itemset_plan(flock)

        started = time.perf_counter()
        classic = frequent_pairs(baskets, 20)
        outcome["classic_s"] = time.perf_counter() - started

        started = time.perf_counter()
        planned = execute_plan(basket_db, flock, plan, validate=False)
        outcome["plan_s"] = time.perf_counter() - started

        started = time.perf_counter()
        naive = evaluate_flock(basket_db, flock)
        outcome["naive_s"] = time.perf_counter() - started

        outcome["agree"] = (
            classic
            == itemsets_from_flock_result(planned.relation)
            == itemsets_from_flock_result(naive)
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "apriori-equiv",
        "classic a-priori is the specialization of flock plans to "
        "itemsets; ad-hoc file algorithms outperform DBMS execution "
        "(Section 1.4)",
        f"agree: {outcome['agree']}; classic {outcome['classic_s'] * 1e3:.0f} ms, "
        f"flock plan {outcome['plan_s'] * 1e3:.0f} ms, naive "
        f"{outcome['naive_s'] * 1e3:.0f} ms",
    )
    assert outcome["agree"]
    assert outcome["classic_s"] < outcome["naive_s"]
