"""Fig. 1: the pair query in SQL, on a real SQL engine.

Paper artifact: the SELECT/GROUP BY/HAVING formulation, and the Section
1.3 observation that "the right optimizations are beyond the state of
the art in commercial database systems" — a conventional optimizer will
not discover the a-priori rewrite, so applying it by hand is the win.

Reproduction: we generate both the naive SQL (Fig. 1) and the rewritten
script (materialized frequent-items table + reduced pair query)
mechanically from the flock, run both on SQLite — a real conventional
engine whose optimizer certainly does not know the a-priori trick — and
compare.
"""

import sqlite3
import time

from repro.flocks import flock_to_sql, itemset_plan, plan_to_sql, fig1_sql

from conftest import report


def _load_sqlite(db) -> sqlite3.Connection:
    conn = sqlite3.connect(":memory:")
    rel = db.get("baskets")
    conn.execute("CREATE TABLE baskets (BID, Item)")
    conn.executemany("INSERT INTO baskets VALUES (?, ?)", list(rel.tuples))
    return conn


def _run_script(conn: sqlite3.Connection, script: str) -> list[tuple]:
    statements = [s.strip() for s in script.split(";") if s.strip()]
    rows: list[tuple] = []
    for i, statement in enumerate(statements):
        cursor = conn.execute(statement)
        if i == len(statements) - 1:
            rows = cursor.fetchall()
    return rows


def test_fig1_text_is_generated(benchmark, word_db, basket_flock_20):
    """The generated SQL must have the Fig. 1 shape (and generating it
    must be cheap — it sits in interactive paths)."""
    sql = benchmark(lambda: flock_to_sql(basket_flock_20, word_db))
    assert "GROUP BY" in sql and "HAVING" in sql
    assert "baskets t0, baskets t1" in sql
    assert "FROM baskets i1, baskets i2" in fig1_sql()


def test_sqlite_naive(benchmark, word_db, basket_flock_20):
    sql = flock_to_sql(basket_flock_20, word_db)

    def run():
        conn = _load_sqlite(word_db)
        rows = _run_script(conn, sql)
        conn.close()
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rows


def test_sqlite_rewritten(benchmark, word_db, basket_flock_20):
    script = plan_to_sql(
        basket_flock_20, itemset_plan(basket_flock_20), word_db
    )

    def run():
        conn = _load_sqlite(word_db)
        rows = _run_script(conn, script)
        conn.close()
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rows


def test_sqlite_speedup_and_agreement(benchmark, word_db, basket_flock_20):
    naive_sql = flock_to_sql(basket_flock_20, word_db)
    plan_sql = plan_to_sql(
        basket_flock_20, itemset_plan(basket_flock_20), word_db
    )
    outcome = {}

    def compare():
        conn = _load_sqlite(word_db)
        started = time.perf_counter()
        naive_rows = _run_script(conn, naive_sql)
        outcome["naive_s"] = time.perf_counter() - started
        conn.close()

        conn = _load_sqlite(word_db)
        started = time.perf_counter()
        plan_rows = _run_script(conn, plan_sql)
        outcome["plan_s"] = time.perf_counter() - started
        conn.close()
        outcome["agree"] = set(naive_rows) == set(plan_rows)
        outcome["pairs"] = len(naive_rows)

    benchmark.pedantic(compare, rounds=1, iterations=1)
    assert outcome["agree"]
    speedup = outcome["naive_s"] / outcome["plan_s"]
    report(
        "fig1",
        "conventional optimizers do not find the a-priori rewrite; doing "
        "it by hand gave 20x on the authors' DBMS",
        f"SQLite: naive {outcome['naive_s'] * 1e3:.0f} ms vs rewritten "
        f"{outcome['plan_s'] * 1e3:.0f} ms = {speedup:.1f}x on "
        f"{outcome['pairs']} result pairs (same answer)",
    )
    assert speedup > 1.5
