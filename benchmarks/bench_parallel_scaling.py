"""Parallel partitioned execution: scaling on the Section 1.3 workload.

The morsel-driven executor hash-partitions the group key (the basket
column) so the naive self-join + HAVING pipeline fans out over a
process pool.  This bench sweeps worker counts over the same Zipf
word-occurrence corpus used by ``bench_sec13_speedup`` and records one
row per (workload, jobs): wall milliseconds and the survivor count —
which must be identical at every worker count (the merge is canonical,
so parallel results are bit-for-bit the serial ones).

Output: a JSON report at ``$REPRO_BENCH_JSON`` (default
``BENCH_parallel.json`` in the current directory) with the sweep rows
and the headline jobs=4 vs jobs=1 speedup.

The >=2x speedup assertion only fires on a full-scale run
(``REPRO_BENCH_SCALE >= 1``) on a machine with at least 4 cores; the CI
smoke job runs the same sweep at SCALE=0.25 with --jobs 2 purely as an
end-to-end correctness check.
"""

import json
import os
import time

from repro.flocks.mining import mine

from conftest import SCALE, report


#: Worker counts swept, overridable as e.g. REPRO_BENCH_JOBS="1,2".
JOBS_SWEEP = tuple(
    int(j) for j in os.environ.get("REPRO_BENCH_JOBS", "1,2,4").split(",")
)

JSON_PATH = os.environ.get("REPRO_BENCH_JSON", "BENCH_parallel.json")


def _sweep(db, flock, workload: str):
    """One row per worker count: wall ms + survivors (must all agree)."""
    rows = []
    baseline = None
    for jobs in JOBS_SWEEP:
        started = time.perf_counter()
        relation, rpt = mine(
            db, flock, strategy="naive", backend="memory", parallelism=jobs
        )
        wall_ms = (time.perf_counter() - started) * 1e3
        survivors = sorted(relation.tuples, key=repr)
        if baseline is None:
            baseline = survivors
        assert survivors == baseline, (
            f"{workload}: jobs={jobs} survivors differ from jobs="
            f"{JOBS_SWEEP[0]}"
        )
        rows.append({
            "workload": workload,
            "jobs": jobs,
            "wall_ms": round(wall_ms, 2),
            "survivors": len(survivors),
            "parallelism_used": rpt.parallelism_used,
            "downgrades": [str(d) for d in rpt.downgrades],
        })
    return rows


def _write_json(rows, speedup):
    # Per-row serial_ms / parallel_ms so downstream consumers (the serve
    # benchmark, later PRs tracking the jobs=2 regression) read the
    # speedup directly instead of recomputing it from wall_ms pairs.
    serial_ms = {
        r["workload"]: r["wall_ms"] for r in rows if r["jobs"] == 1
    }
    for r in rows:
        base = serial_ms.get(r["workload"])
        r["speedup_vs_serial"] = (
            round(base / max(r["wall_ms"], 1e-9), 3)
            if base is not None else None
        )
    payload = {
        "scale": SCALE,
        "cpu_count": os.cpu_count(),
        "jobs_sweep": list(JOBS_SWEEP),
        "speedup_max_jobs_vs_serial": round(speedup, 2) if speedup else None,
        "speedup_by_jobs": {
            str(r["jobs"]): r["speedup_vs_serial"] for r in rows
        },
        "rows": rows,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_words_scaling(benchmark, word_db, basket_flock_20):
    """§1.3 words workload: jobs sweep, identical survivors, JSON out."""
    collected = {}

    def run():
        collected["rows"] = _sweep(word_db, basket_flock_20, "words-sec1.3")

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = collected["rows"]

    by_jobs = {r["jobs"]: r for r in rows}
    speedup = None
    if 1 in by_jobs and max(JOBS_SWEEP) > 1:
        fastest = by_jobs[max(JOBS_SWEEP)]
        speedup = by_jobs[1]["wall_ms"] / max(fastest["wall_ms"], 1e-9)
    _write_json(rows, speedup)

    sweep_text = ", ".join(
        f"jobs={r['jobs']}: {r['wall_ms']:.0f} ms" for r in rows
    )
    report(
        "parallel-scaling",
        "partitioned parallelism cuts the naive pipeline's wall clock "
        "without changing the answer",
        f"{sweep_text}; survivors {rows[0]['survivors']} at every worker "
        f"count; wrote {JSON_PATH}",
    )

    # Every worker count actually ran parallel (no silent serial fallback)
    for r in rows:
        if r["jobs"] > 1:
            assert r["parallelism_used"] == r["jobs"], r
            assert not r["downgrades"], r

    # CI smoke floor: with shared-memory seeding and encoded result
    # buffers, jobs=2 must never be a *regression* over serial, even on
    # a small box at tiny scale.  Opt-in via env so local exploratory
    # runs (under profilers, on loaded machines) do not trip it.
    floor = os.environ.get("REPRO_BENCH_MIN_SPEEDUP_J2", "")
    if floor and 2 in by_jobs:
        measured = by_jobs[1]["wall_ms"] / max(by_jobs[2]["wall_ms"], 1e-9)
        assert measured >= float(floor), (
            f"expected >={floor}x at jobs=2, measured {measured:.2f}x"
        )

    # Headline claim: >=2x at 4 workers — only meaningful at full scale
    # on real cores (the CI smoke box has 1-2).
    if SCALE >= 1 and (os.cpu_count() or 1) >= 4 and 4 in by_jobs:
        assert speedup >= 2.0, (
            f"expected >=2x at jobs=4, measured {speedup:.2f}x"
        )
