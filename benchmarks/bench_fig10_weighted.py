"""Fig. 10 / Section 5: the weighted-basket monotone SUM flock.

Paper artifact: the future-work extension — "the techniques described in
this paper apply directly to any monotone filter condition", with the
weighted market basket as the example.  The measurement evaluates the
SUM flock naively and with a monotone-SUM a-priori plan (pre-filter
items whose total basket weight is below threshold), confirming the
pruning remains sound and profitable.
"""

from repro.datalog.subqueries import SubqueryCandidate
from repro.flocks import (
    evaluate_flock,
    execute_plan,
    parse_flock,
    plan_from_subqueries,
    single_step_plan,
)

from conftest import report


FLOCK_TEXT = """
QUERY:
answer(B,W) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    importance(B,W) AND
    $1 < $2

FILTER:
SUM(answer.W) >= 100
"""


def weighted_flock():
    return parse_flock(FLOCK_TEXT)


def weighted_plan(flock):
    rule = flock.rules[0]
    return plan_from_subqueries(
        flock,
        [
            (
                "okW1",
                SubqueryCandidate((0, 2), rule.with_body_subset([0, 2])),
            ),
            (
                "okW2",
                SubqueryCandidate((1, 2), rule.with_body_subset([1, 2])),
            ),
        ],
    )


def test_weighted_naive(benchmark, weighted_db):
    flock = weighted_flock()
    result = benchmark.pedantic(
        lambda: evaluate_flock(weighted_db, flock), rounds=3, iterations=1
    )
    assert result.columns == ("$1", "$2")


def test_weighted_apriori_plan(benchmark, weighted_db):
    flock = weighted_flock()
    plan = weighted_plan(flock)
    result = benchmark.pedantic(
        lambda: execute_plan(weighted_db, flock, plan, validate=False),
        rounds=3, iterations=1,
    )
    assert result.relation == evaluate_flock(weighted_db, flock)


def test_monotone_sum_pruning(benchmark, weighted_db):
    flock = weighted_flock()
    assert flock.filter.is_monotone
    outcome = {}

    def run():
        plan = weighted_plan(flock)
        pruned = execute_plan(weighted_db, flock, plan, validate=False)
        plain = execute_plan(
            weighted_db, flock, single_step_plan(flock), validate=False
        )
        outcome["pruned_final"] = pruned.trace.steps[-1].input_tuples
        outcome["plain_final"] = plain.trace.steps[-1].input_tuples
        outcome["agree"] = pruned.relation == plain.relation
        outcome["pairs"] = len(pruned)

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig10",
        "a-priori applies to any monotone filter; SUM of non-negative "
        "weights is monotone",
        f"SUM-flock answers {outcome['pairs']} pairs; pre-filtering by "
        "per-item weight shrank the final join "
        f"{outcome['plain_final']} -> {outcome['pruned_final']} tuples; "
        f"results agree: {outcome['agree']}",
    )
    assert outcome["agree"]
    assert outcome["pruned_final"] <= outcome["plain_final"]
