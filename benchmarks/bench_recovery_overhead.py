"""Recovery overhead: what step checkpointing costs, and what resume saves.

Two questions about the fault-tolerance layer on the Section 1.3 words
workload:

1. **Checkpoint tax** — ``mine(checkpoint=...)`` writes every completed
   FILTER step's survivor set through SQLite.  The survivors are the
   *small* side of the a-priori funnel (that is the whole point of the
   rewrite), so the tax must stay marginal: the full-scale run asserts
   checkpoint-on wall clock within 5% of checkpoint-off.
2. **Warm resume** — kill the run before its final step, resume from
   the manifest, and compare against a cold re-mine.  Resume serves the
   completed prefix from the store and re-executes only the remainder.

Output: a JSON report at ``$REPRO_BENCH_RECOVERY_JSON`` (default
``BENCH_recovery.json``) with the medians and the answer-identity
checks; EXPERIMENTS.md collects the numbers.

Like the parallel-scaling bench, the overhead assertion only fires at
full scale (``REPRO_BENCH_SCALE >= 1``) — at smoke scale the absolute
times are fractions of a millisecond and the ratio is noise — but the
correctness assertions (bit-identical answers, steps actually resumed)
run at every scale.
"""

import json
import os
import statistics
import time

from repro.flocks import optimize
from repro.flocks.mining import mine
from repro.recovery import CheckpointStore, RetryPolicy
from repro.testing import faults

from conftest import SCALE, report

JSON_PATH = os.environ.get("REPRO_BENCH_RECOVERY_JSON", "BENCH_recovery.json")

#: Timing repetitions (median reported).
ROUNDS = int(os.environ.get("REPRO_BENCH_RECOVERY_ROUNDS", "3"))


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - started) * 1e3


def _median_ms(fn):
    times = []
    result = None
    for _ in range(ROUNDS):
        result, ms = _timed(fn)
        times.append(ms)
    return result, statistics.median(times)


def test_checkpoint_overhead_and_warm_resume(
    benchmark, word_db, basket_flock_20, tmp_path_factory
):
    workdir = tmp_path_factory.mktemp("recovery-bench")

    def run():
        _measure(workdir, word_db, basket_flock_20)

    benchmark.pedantic(run, rounds=1, iterations=1)


def _measure(workdir, word_db, basket_flock_20):
    # -- 1. checkpoint tax ---------------------------------------------
    (baseline, _), off_ms = _median_ms(
        lambda: mine(word_db, basket_flock_20, strategy="optimized")
    )

    # One long-lived store, as a session would hold it: the measured
    # tax is the per-run step writes, not the one-off file creation.
    store = CheckpointStore(str(workdir / "tax.db"))

    def checkpointed():
        return mine(
            word_db, basket_flock_20, strategy="optimized", checkpoint=store
        )

    (ckpt_relation, ckpt_report), on_ms = _median_ms(checkpointed)
    store.close()
    assert ckpt_relation.tuples == baseline.tuples
    assert ckpt_report.steps_checkpointed >= 1
    overhead = (on_ms - off_ms) / max(off_ms, 1e-9)

    # -- 2. warm resume after a kill -----------------------------------
    plan = optimize(word_db, basket_flock_20)
    n_steps = len(plan.steps)
    resume_row = None
    if n_steps >= 2:
        path = str(workdir / "kill.db")
        # Crash before the final (most expensive) step.
        with faults.inject("executor.step", RuntimeError, skip=n_steps - 1):
            try:
                mine(
                    word_db, basket_flock_20, strategy="optimized",
                    checkpoint=path, run_id="bench",
                    retry=RetryPolicy(max_attempts=1),
                )
                raise AssertionError("injected kill did not fire")
            except RuntimeError:
                pass

        def resume():
            return mine(
                word_db, basket_flock_20, strategy="optimized",
                checkpoint=path, resume="bench",
            )

        (warm_relation, warm_report), _ = _timed(resume)  # first resume marks
        assert warm_report.steps_resumed == n_steps - 1   # the run complete,
        (warm_relation, warm_report), warm_ms = _timed(resume)  # then re-time
        (cold_relation, _), cold_ms = _timed(
            lambda: mine(word_db, basket_flock_20, strategy="optimized")
        )
        assert warm_relation.tuples == baseline.tuples
        assert cold_relation.tuples == baseline.tuples
        resume_row = {
            "plan_steps": n_steps,
            "steps_resumed": warm_report.steps_resumed,
            "warm_resume_ms": round(warm_ms, 2),
            "cold_mine_ms": round(cold_ms, 2),
        }

    payload = {
        "scale": SCALE,
        "rounds": ROUNDS,
        "checkpoint_off_ms": round(off_ms, 2),
        "checkpoint_on_ms": round(on_ms, 2),
        "overhead_fraction": round(overhead, 4),
        "warm_resume": resume_row,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    resume_text = (
        f"resume {resume_row['warm_resume_ms']:.0f} ms vs cold "
        f"{resume_row['cold_mine_ms']:.0f} ms "
        f"({resume_row['steps_resumed']}/{resume_row['plan_steps']} "
        "steps served from checkpoints)"
        if resume_row
        else "single-step plan at this scale; resume path exercised in tests"
    )
    report(
        "recovery-overhead",
        "step checkpointing is marginal (survivors are the small side "
        "of the a-priori funnel); resume skips completed steps",
        f"checkpoint off {off_ms:.0f} ms, on {on_ms:.0f} ms "
        f"({overhead * 100:+.1f}%); {resume_text}; wrote {JSON_PATH}",
    )

    # The 5% ceiling is a full-scale claim: smoke-scale runs are
    # sub-millisecond and the ratio is dominated by SQLite file setup.
    if SCALE >= 1:
        assert overhead <= 0.05, (
            f"checkpointing cost {overhead * 100:.1f}% (> 5%) on the "
            "words workload"
        )
