"""Fig. 4 / Examples 2.3, 3.3: the strongly-connected-words union flock.

Paper artifacts: the three-rule union flock and the Example 3.3 union
bound for parameter $1 — "a word cannot be a candidate for $1 unless we
get to at least 20 when we sum" its title occurrences, anchor
occurrences, and anchor-to-title occurrences.  The measurement runs the
union naively and with the Example 3.3 pre-filter plan, over a corpus
with planted correlated word pairs.
"""

from repro.datalog import Parameter, union_subqueries_with_parameters
from repro.flocks import evaluate_flock, execute_plan, plan_from_subqueries

from conftest import report


def test_union_naive(benchmark, web_workload, web_flock_20):
    result = benchmark.pedantic(
        lambda: evaluate_flock(web_workload.db, web_flock_20),
        rounds=3, iterations=1,
    )
    assert result.columns == ("$1", "$2")


def test_union_prefiltered_plan(benchmark, web_workload, web_flock_20):
    candidates = union_subqueries_with_parameters(
        web_flock_20.query, [Parameter("1")]
    )
    plan = plan_from_subqueries(web_flock_20, [("okW", candidates[0])])
    result = benchmark.pedantic(
        lambda: execute_plan(web_workload.db, web_flock_20, plan, validate=False),
        rounds=3, iterations=1,
    )
    assert result.relation == evaluate_flock(web_workload.db, web_flock_20)


def test_example33_bound_and_recovery(benchmark, web_workload, web_flock_20):
    outcome = {}

    def run():
        candidates = union_subqueries_with_parameters(
            web_flock_20.query, [Parameter("1")]
        )
        best = candidates[0]
        outcome["branches"] = [str(b.query) for b in best.branches]
        result = evaluate_flock(web_workload.db, web_flock_20)
        outcome["found"] = set(result.tuples)

    benchmark.pedantic(run, rounds=1, iterations=1)
    expected_branches = [
        "answer(D) :- inTitle(D, $1)",
        "answer(A) :- inAnchor(A, $1)",
        "answer(A) :- link(A, D1, D2) AND inTitle(D2, $1)",
    ]
    recovered = web_workload.planted_pairs & outcome["found"]
    report(
        "fig4/ex3.3",
        "union flock over titles+anchors; the $1 bound is one safe "
        "subquery per branch (title, anchor, link-to-title)",
        f"branch subqueries match: {outcome['branches'] == expected_branches}; "
        f"{len(outcome['found'])} connected pairs found, "
        f"{len(recovered)}/{len(web_workload.planted_pairs)} planted pairs "
        "recovered",
    )
    assert outcome["branches"] == expected_branches
    assert recovered
