"""Session result cache: cold evaluation vs. warm threshold sweeps.

The scenario is Goethals & Van den Bussche's interactive loop on the
Fig. 2 basket flock: mine once at a low support, then walk the
threshold up, reading each answer off the cached aggregates.  By §5
monotonicity every threshold at or above the cached one is a pure
re-filter — zero base-relation joins — so the warm sweep should run
orders of magnitude faster than re-evaluating at each threshold.
"""

from repro.flocks import evaluate_flock
from repro.session import MiningSession, with_support_threshold

from conftest import report

#: Swept descending; all are >= SWEEP[-1], the threshold the cache is
#: warmed at, so in the warm benchmark every step must hit.
SWEEP = (80, 60, 40, 30, 20)


def _mine_sweep(session, flock):
    results = []
    for support in SWEEP:
        rel, rep = session.mine(with_support_threshold(flock, support))
        results.append((support, len(rel), rep.strategy_used))
    return results


def test_cold_sweep(benchmark, basket_db, basket_flock_20):
    """Baseline: a fresh session (and so a fresh evaluation) per sweep."""

    def cold():
        # A new session each round: every threshold is a miss except
        # those implied by a lower one mined earlier in the same sweep —
        # descending order makes each step strictly weaker, all misses.
        session = MiningSession(basket_db)
        return _mine_sweep(session, basket_flock_20)

    results = benchmark.pedantic(cold, rounds=3, iterations=1)
    assert all(strategy != "cache" for _, _, strategy in results)


def test_warm_sweep(benchmark, basket_db, basket_flock_20):
    """One evaluation at the sweep's minimum threshold, then every
    threshold in the sweep served from the cache."""
    session = MiningSession(basket_db)
    session.mine(with_support_threshold(basket_flock_20, min(SWEEP)))

    results = benchmark.pedantic(
        lambda: _mine_sweep(session, basket_flock_20),
        rounds=3, iterations=1,
    )
    assert all(strategy == "cache" for _, _, strategy in results)
    # Answers shrink as support rises, and match fresh evaluation.
    counts = [count for _, count, _ in results]
    assert counts == sorted(counts)
    hottest = with_support_threshold(basket_flock_20, SWEEP[0])
    assert results[0][1] == len(evaluate_flock(basket_db, hottest))
    report(
        "session-cache",
        "interactive threshold sweeps should be join-free after one "
        "evaluation (Section 5 monotonicity)",
        f"{len(SWEEP)}-step descending sweep {SWEEP} all served from "
        "cache after warming at support "
        f"{min(SWEEP)}; answers {counts} monotone in support",
    )
