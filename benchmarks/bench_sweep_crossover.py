"""Parameter sweeps: where the a-priori rewrite wins, and by how much.

The paper's intuition sweep, made concrete: the rewrite's advantage
should *grow with the support threshold* (a higher floor disqualifies
more of the vocabulary, so the pre-filter removes more) and *shrink as
item frequencies concentrate* (when almost everything reaches support,
"subquery (1) would not be worth the extra effort" — Example 3.2's
caveat).  Each sweep prints a series row per setting; the assertions
check the trend's direction, not absolute numbers.
"""

import time

from repro.flocks import (
    evaluate_flock,
    execute_plan,
    itemset_flock,
    itemset_plan,
)
from repro.workloads import article_database

from conftest import report


def _times(db, support: int, rounds: int = 2) -> tuple[float, float, int]:
    """Best-of-N timings to damp scheduler noise (the sweep asserts a
    monotone trend, so a single noisy point would flake)."""
    flock = itemset_flock(2, support=support)
    plan = itemset_plan(flock)

    naive_s = float("inf")
    rewrite_s = float("inf")
    naive = None
    for _ in range(rounds):
        started = time.perf_counter()
        naive = evaluate_flock(db, flock)
        naive_s = min(naive_s, time.perf_counter() - started)

        started = time.perf_counter()
        rewritten = execute_plan(db, flock, plan, validate=False)
        rewrite_s = min(rewrite_s, time.perf_counter() - started)
        assert rewritten.relation == naive
    return naive_s, rewrite_s, len(naive)


def test_threshold_sweep(benchmark):
    """Speedup as a function of the support threshold."""
    db = article_database(
        n_articles=300, vocabulary=4000, words_per_article=40,
        skew=0.9, seed=501,
    )
    outcome = {}

    def run():
        rows = []
        for support in (5, 10, 20, 40):
            naive_s, rewrite_s, pairs = _times(db, support)
            rows.append((support, naive_s, rewrite_s, naive_s / rewrite_s, pairs))
        outcome["rows"] = rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = outcome["rows"]
    print("\n[sweep] support | naive ms | rewrite ms | speedup | pairs")
    for support, naive_s, rewrite_s, speedup, pairs in rows:
        print(
            f"  {support:7d} | {naive_s * 1e3:8.0f} | {rewrite_s * 1e3:10.0f} "
            f"| {speedup:6.2f}x | {pairs}"
        )
    speedups = [row[3] for row in rows]
    report(
        "sweep-threshold",
        "higher support floors disqualify more items, so the rewrite's "
        "advantage grows ('if c is high enough, we can eliminate most of "
        "the tuples')",
        f"speedups at supports {[r[0] for r in rows]}: "
        f"{[f'{s:.2f}x' for s in speedups]}",
    )
    # Direction: the highest threshold must beat the lowest clearly.
    assert speedups[-1] > speedups[0]


def test_skew_sweep(benchmark):
    """Speedup as a function of vocabulary skew at fixed support 20.

    Lower skew (flatter Zipf) spreads occurrences thinly, so almost no
    word reaches support and the pre-filter eliminates nearly
    everything; high skew concentrates occurrences on a frequent head
    that survives the filter, shrinking the advantage.
    """
    outcome = {}

    def run():
        rows = []
        for skew in (0.7, 1.0, 1.3):
            db = article_database(
                n_articles=300, vocabulary=4000, words_per_article=40,
                skew=skew, seed=502,
            )
            naive_s, rewrite_s, pairs = _times(db, support=20)
            rows.append((skew, naive_s / rewrite_s, pairs))
        outcome["rows"] = rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = outcome["rows"]
    print("\n[sweep] skew | speedup | pairs")
    for skew, speedup, pairs in rows:
        print(f"  {skew:4.1f} | {speedup:6.2f}x | {pairs}")
    report(
        "sweep-skew",
        "the rewrite pays when most of the vocabulary misses support; a "
        "heavy frequent head erodes the advantage",
        f"speedup by skew {[r[0] for r in rows]}: "
        f"{[f'{r[1]:.2f}x' for r in rows]}",
    )
    assert rows[0][1] > rows[-1][1]
