"""Fig. 3 / Example 2.2: the unexplained-side-effects flock.

Paper artifact: the flock with a negated subgoal.  The measurement runs
it over the synthetic medical workload, confirms the planted
side-effects are recovered, and times the strategies.
"""

from repro.flocks import (
    evaluate_flock,
    evaluate_flock_dynamic,
    execute_plan,
    optimize,
)

from conftest import report


def test_naive(benchmark, medical_workload, medical_flock_20):
    result = benchmark.pedantic(
        lambda: evaluate_flock(medical_workload.db, medical_flock_20),
        rounds=3, iterations=1,
    )
    assert result.columns == ("$m", "$s")


def test_optimized_plan(benchmark, medical_workload, medical_flock_20):
    plan = optimize(medical_workload.db, medical_flock_20)
    result = benchmark.pedantic(
        lambda: execute_plan(
            medical_workload.db, medical_flock_20, plan, validate=False
        ),
        rounds=3, iterations=1,
    )
    assert result.relation == evaluate_flock(
        medical_workload.db, medical_flock_20
    )


def test_dynamic(benchmark, medical_workload, medical_flock_20):
    result = benchmark.pedantic(
        lambda: evaluate_flock_dynamic(medical_workload.db, medical_flock_20),
        rounds=3, iterations=1,
    )
    assert result[0].relation == evaluate_flock(
        medical_workload.db, medical_flock_20
    )


def test_side_effects_recovered(benchmark, medical_workload, medical_flock_20):
    outcome = {}

    def run():
        result = evaluate_flock(medical_workload.db, medical_flock_20)
        outcome["found"] = {(s, m) for m, s in result.tuples}
        outcome["n"] = len(result)

    benchmark.pedantic(run, rounds=1, iterations=1)
    recovered = medical_workload.planted_pairs & outcome["found"]
    report(
        "fig3",
        "the flock finds (symptom, medicine) pairs with >= 20 patients "
        "whose disease does not explain the symptom",
        f"{outcome['n']} pairs pass support 20; "
        f"{len(recovered)}/{len(medical_workload.planted_pairs)} planted "
        "side-effects recovered",
    )
    assert recovered == medical_workload.planted_pairs
