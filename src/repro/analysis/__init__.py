"""Static analysis for query flocks and the physical IR.

Two verifiers behind one diagnostics framework:

* **Plan legality certificates** (:mod:`repro.analysis.certify`):
  :func:`certify_plan` turns the Section 4.2 legality rule into a
  re-checkable object — per pre-filter step, the subquery's safety
  report plus an explicit containment witness (Chandra–Merlin
  homomorphism, Klug argument, or the subgoal-subset criterion) — and
  :func:`verify_certificate` re-validates a certificate independently
  of how it was produced.
* **IR schema checker** (:mod:`repro.analysis.schema`):
  :func:`check_physical_plan` types every operator of a lowered
  physical plan, rejecting malformed plans before execution.

Both emit structured :class:`Diagnostic` objects (code, severity,
optional source span and fix hint) collected into
:class:`DiagnosticReport` — the shared reporting layer also used by
:mod:`repro.flocks.lint`, :mod:`repro.datalog.safety`, and the CLI.

The heavyweight verifier modules are loaded lazily (PEP 562): the
diagnostics layer itself has no dependencies beyond
:mod:`repro.errors`, so low-level modules may import it freely without
cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    SourceSpan,
    error,
    info,
    warning,
)
from .verification import (
    plan_verification,
    plan_verification_enabled,
    set_plan_verification,
)

if TYPE_CHECKING:
    from .certify import (
        BranchCertificate,
        ContainmentWitness,
        HomomorphismWitness,
        KlugWitness,
        LegalityCertificate,
        StepCertificate,
        SubgoalSubsetWitness,
        certify_plan,
        certify_step_bound,
        find_witness,
        verify_certificate,
        verify_witness,
    )
    from .check import FlockCheck, check_flock
    from .schema import assert_physical_plan, check_physical_plan

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "SourceSpan",
    "error",
    "warning",
    "info",
    "plan_verification",
    "plan_verification_enabled",
    "set_plan_verification",
    # certify (lazy)
    "BranchCertificate",
    "ContainmentWitness",
    "HomomorphismWitness",
    "KlugWitness",
    "LegalityCertificate",
    "StepCertificate",
    "SubgoalSubsetWitness",
    "certify_plan",
    "certify_step_bound",
    "find_witness",
    "verify_certificate",
    "verify_witness",
    # schema (lazy)
    "assert_physical_plan",
    "check_physical_plan",
    # check (lazy)
    "FlockCheck",
    "check_flock",
]

_LAZY = {
    "BranchCertificate": "certify",
    "ContainmentWitness": "certify",
    "HomomorphismWitness": "certify",
    "KlugWitness": "certify",
    "LegalityCertificate": "certify",
    "StepCertificate": "certify",
    "SubgoalSubsetWitness": "certify",
    "certify_plan": "certify",
    "certify_step_bound": "certify",
    "find_witness": "certify",
    "verify_certificate": "certify",
    "verify_witness": "certify",
    "assert_physical_plan": "schema",
    "check_physical_plan": "schema",
    "FlockCheck": "check",
    "check_flock": "check",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
