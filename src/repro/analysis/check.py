"""One-pass flock checking: lint + safety + plan legality + IR typing.

:func:`check_flock` runs every static verifier the library has over one
flock and merges the results into a single
:class:`~repro.analysis.diagnostics.DiagnosticReport`:

1. the :mod:`repro.flocks.lint` checks (as diagnostics);
2. the three safety conditions per rule (:mod:`repro.datalog.safety`);
3. plan legality: a plan is built (the cost-based plan when a database
   is supplied and the filter is monotone, the single-step plan
   otherwise), certified with :func:`repro.analysis.certify_plan`, and
   the certificate is independently re-validated with
   :func:`repro.analysis.verify_certificate`;
4. with a database, the IR schema check: every FILTER step is lowered
   to its :class:`~repro.engine.ir.StepPlan` and typed with
   :func:`repro.analysis.check_physical_plan`.

``python -m repro.analysis.check --paper`` checks every paper-figure
flock (the CI gate); the ``repro check`` CLI subcommand wraps
:func:`check_flock` for flock files.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..errors import ReproError
from .diagnostics import Diagnostic, DiagnosticReport, Severity, error

if TYPE_CHECKING:
    from ..flocks.flock import QueryFlock
    from ..flocks.plans import QueryPlan
    from ..relational.catalog import Database
    from .certify import LegalityCertificate


@dataclass(frozen=True)
class FlockCheck:
    """Everything :func:`check_flock` produced for one flock."""

    flock: "QueryFlock"
    plan: Optional["QueryPlan"]
    certificate: Optional["LegalityCertificate"]
    report: DiagnosticReport

    @property
    def ok(self) -> bool:
        return self.report.ok

    def exit_code(self) -> int:
        return self.report.exit_code()

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "exit_code": self.exit_code(),
            "plan": (
                None if self.plan is None
                else self.plan.render(self.flock)
            ),
            "diagnostics": self.report.to_dict()["diagnostics"],
        }


def _build_plan(
    flock: "QueryFlock", db: Optional["Database"], out: list[Diagnostic]
) -> Optional["QueryPlan"]:
    """The plan to certify: cost-based when statistics are available and
    pre-filtering is sound, the single-step plan otherwise."""
    from ..flocks.optimizer import FlockOptimizer, optimize_union
    from ..flocks.plans import single_step_plan

    if db is not None and flock.filter.is_monotone:
        try:
            if flock.is_union:
                return optimize_union(db, flock)
            return FlockOptimizer(db, flock).best_plan().plan
        except ReproError as failure:
            out.append(
                error(
                    "check-plan-search-failed",
                    f"cost-based plan search failed: {failure}",
                    hint="the single-step plan is certified instead",
                )
            )
    try:
        return single_step_plan(flock)
    except ReproError as failure:  # pragma: no cover - parse guards first
        out.append(
            error("check-no-plan", f"no plan could be built: {failure}")
        )
        return None


def check_flock(
    flock: "QueryFlock",
    db: Optional["Database"] = None,
    order_strategy: str = "greedy",
) -> FlockCheck:
    """Run lint, safety, plan certification, and (with ``db``) the IR
    schema checker over one flock; returns the merged report."""
    from ..datalog.safety import check_safety, safety_diagnostics
    from ..flocks.executor import lower_filter_step
    from ..flocks.lint import lint_diagnostics
    from .certify import certify_plan, verify_certificate
    from .schema import check_physical_plan

    report = lint_diagnostics(flock)
    for index, rule in enumerate(flock.rules):
        label = f"rule {index + 1}" if flock.is_union else "query"
        report = report.merged(
            safety_diagnostics(check_safety(rule), location=label)
        )

    extra: list[Diagnostic] = []
    plan = _build_plan(flock, db, extra)
    certificate = None
    if plan is not None:
        certificate = certify_plan(flock, plan, witnesses=True)
        report = report.merged(verify_certificate(certificate))

    if db is not None and plan is not None:
        for step in plan.steps:
            try:
                step_plan = lower_filter_step(
                    db, flock, step, order_strategy=order_strategy
                )
            except ReproError as failure:
                extra.append(
                    error(
                        "check-lowering-failed",
                        f"step {step.result_name} could not be lowered: "
                        f"{failure}",
                        location=f"step {step.result_name}",
                    )
                )
                continue
            report = report.merged(check_physical_plan(step_plan, db=db))

    report = report.merged(DiagnosticReport(tuple(extra)))
    return FlockCheck(
        flock=flock, plan=plan, certificate=certificate, report=report
    )


def _paper_flocks():
    """Every paper-figure flock, with its figure label."""
    from ..flocks import paper

    return [
        ("fig2", paper.fig2_flock()),
        ("fig2-ordered", paper.fig2_flock(ordered=True)),
        ("fig3", paper.fig3_flock()),
        ("fig4", paper.fig4_flock()),
        ("fig6(n=2)", paper.fig6_flock(2)),
        ("fig10", paper.fig10_flock()),
    ]


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.analysis.check [--paper] [FLOCKFILE...]``.

    Checks the paper-figure flocks and/or flock files (no database —
    lint, safety, and certified legality of the single-step plan) and
    prints one line per flock plus any diagnostics.  Exit status is the
    worst :meth:`DiagnosticReport.exit_code` seen, with ``info``-only
    reports treated as clean.
    """
    import argparse
    from pathlib import Path

    from ..flocks.flock import parse_flock

    parser = argparse.ArgumentParser(prog="python -m repro.analysis.check")
    parser.add_argument("--paper", action="store_true",
                        help="check every paper-figure flock")
    parser.add_argument("flocks", nargs="*", metavar="FLOCKFILE",
                        help="flock files to check")
    args = parser.parse_args(argv)

    targets: list[tuple[str, "QueryFlock"]] = []
    if args.paper:
        targets.extend(_paper_flocks())
    for path in args.flocks:
        targets.append((path, parse_flock(Path(path).read_text())))
    if not targets:
        parser.error("nothing to check: pass --paper and/or flock files")

    worst = 0
    for label, flock in targets:
        check = check_flock(flock)
        severe = [
            d for d in check.report
            if d.severity is not Severity.INFO
        ]
        status = "clean" if not severe else (
            "ERRORS" if not check.ok else "warnings"
        )
        print(f"{label}: {status} ({len(check.report.diagnostics)} "
              "diagnostic(s))")
        for diagnostic in severe:
            print(f"  {diagnostic}")
        if severe:
            worst = max(worst, check.exit_code())
    return worst


if __name__ == "__main__":
    sys.exit(main())
