"""Pass 2 — process-pool wire safety.

Two rules, both born from shipped bugs in the parallel engine:

1. **Submitted callables and arguments must pickle.**  Anything handed
   to a ``ProcessPoolExecutor`` — the ``submit`` callable, the pool
   ``initializer``, their arguments — crosses the process boundary.
   Lambdas, locally-defined functions, generator expressions, and bound
   methods (``self.x``) do not survive pickling (or drag the whole
   ``self`` across the wire); only module-level functions and plain
   data do.  Pool variables are recognized lexically: assigned from
   ``ProcessPoolExecutor(...)``, from a call whose return annotation is
   ``ProcessPoolExecutor``, or an attribute/parameter typed as one.

2. **Every exception class must honor the ``__reduce__`` contract.**
   An exception raised in a worker is pickled back to the parent; the
   default ``BaseException`` reduction replays ``cls(*self.args)``,
   which breaks (or silently mis-builds) any class whose ``__init__``
   takes parameters that are not exactly its ``args`` — the PR 8 bug
   class (``ExecutionAborted`` and friends needed
   ``_rebuild_error``-style ``__reduce__``).  Any exception class with
   a parameterized ``__init__`` must therefore define or inherit
   ``__reduce__`` (``ReproError`` provides the contract for the whole
   hierarchy).
"""

from __future__ import annotations

import ast

from ..diagnostics import Severity
from .model import (
    FileModel,
    Finding,
    FunctionInfo,
    ProjectModel,
    annotation_type,
    dotted,
    terminal,
)

CODE_CALLABLE = "conlint-wire-callable"
CODE_ARG = "conlint-wire-arg"
CODE_REDUCE = "conlint-wire-reduce"

POOL_CLASS = "ProcessPoolExecutor"


def _finding(
    file: FileModel, code: str, message: str, node: ast.AST,
    hint: str | None = None,
) -> Finding:
    return Finding(
        code=code,
        severity=Severity.ERROR,
        message=message,
        path=file.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        position=file.offset_of(node),
        hint=hint,
    )


def _is_pool_ctor(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        name = dotted(node.func)
        return name is not None and terminal(name) == POOL_CLASS
    return False


def _pool_names(file: FileModel, func: FunctionInfo) -> set[str]:
    """Dotted receivers that hold a ``ProcessPoolExecutor`` inside
    ``func`` (locals assigned from a constructor or a typed call,
    annotated parameters, and typed self attributes)."""
    pools: set[str] = set()
    for param, ptype in func.param_types.items():
        if ptype == POOL_CLASS:
            pools.add(param)
    cls = file.classes.get(func.class_name) if func.class_name else None
    if cls is not None:
        for attr, atype in cls.attr_types.items():
            if atype == POOL_CLASS:
                pools.add(f"self.{attr}")
    for node in ast.walk(func.node):
        target: ast.AST | None = None
        value: ast.AST | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        else:
            continue
        name = dotted(target)
        if name is None:
            continue
        if _is_pool_ctor(value):
            pools.add(name)
        elif isinstance(value, ast.Call):
            callee = dotted(value.func)
            if callee is not None:
                resolved = _resolve_callable(file, func, callee)
                if resolved is not None and resolved.return_type == POOL_CLASS:
                    pools.add(name)
        if isinstance(node, ast.AnnAssign):
            if annotation_type(node.annotation) == POOL_CLASS:
                pools.add(name)
    return pools


def _resolve_callable(
    file: FileModel, func: FunctionInfo, callee: str
) -> FunctionInfo | None:
    parts = callee.split(".")
    if parts[0] == "self" and func.class_name:
        cls = file.classes.get(func.class_name)
        if cls is not None and len(parts) == 2:
            return cls.methods.get(parts[1])
        return None
    if len(parts) == 1:
        return file.module_functions.get(parts[0])
    return None


def _local_defs(func: FunctionInfo) -> set[str]:
    """Names of functions defined (or lambdas bound) inside ``func``."""
    names: set[str] = set()
    for node in ast.walk(func.node):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not func.node
        ):
            names.add(node.name)
        elif isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Lambda
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _check_wire_callable(
    file: FileModel,
    func: FunctionInfo,
    node: ast.AST,
    role: str,
    local_defs: set[str],
    findings: list[Finding],
) -> None:
    if isinstance(node, ast.Lambda):
        findings.append(
            _finding(
                file, CODE_CALLABLE,
                f"lambda passed as a process-pool {role} cannot be "
                "pickled across the process boundary", node,
                hint="hoist it to a module-level function",
            )
        )
        return
    name = dotted(node)
    if name is None:
        return
    if name.startswith("self."):
        findings.append(
            _finding(
                file, CODE_CALLABLE,
                f"bound method '{name}' passed as a process-pool {role} "
                "would pickle the whole instance (locks included) across "
                "the process boundary", node,
                hint="use a module-level function taking plain data",
            )
        )
    elif "." not in name and name in local_defs:
        findings.append(
            _finding(
                file, CODE_CALLABLE,
                f"locally-defined function '{name}' passed as a "
                f"process-pool {role} cannot be pickled (pickle resolves "
                "functions by module-level name)", node,
                hint="hoist it to a module-level function",
            )
        )


def _check_wire_args(
    file: FileModel,
    args: list[ast.expr],
    role: str,
    findings: list[Finding],
) -> None:
    for arg in args:
        if isinstance(arg, ast.Lambda):
            findings.append(
                _finding(
                    file, CODE_ARG,
                    f"lambda passed as a process-pool {role} argument "
                    "cannot be pickled", arg,
                )
            )
        elif isinstance(arg, ast.GeneratorExp):
            findings.append(
                _finding(
                    file, CODE_ARG,
                    f"generator expression passed as a process-pool {role} "
                    "argument cannot be pickled", arg,
                    hint="materialize it (list/tuple) first",
                )
            )


def _check_submits(
    project: ProjectModel, file: FileModel, findings: list[Finding]
) -> None:
    for func in file.all_functions:
        pools = _pool_names(file, func)
        local_defs = _local_defs(func)
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            name = dotted(node.func)
            if name is not None and name.endswith(".submit"):
                receiver = name[: -len(".submit")]
                if receiver in pools and node.args:
                    _check_wire_callable(
                        file, func, node.args[0], "callable",
                        local_defs, findings,
                    )
                    _check_wire_args(
                        file, list(node.args[1:]), "submit", findings
                    )
            elif _is_pool_ctor(node):
                for kw in node.keywords:
                    if kw.arg == "initializer":
                        _check_wire_callable(
                            file, func, kw.value, "initializer",
                            local_defs, findings,
                        )
                    elif kw.arg == "initargs" and isinstance(
                        kw.value, (ast.Tuple, ast.List)
                    ):
                        _check_wire_args(
                            file, list(kw.value.elts), "initargs", findings
                        )


def _check_reduce(
    project: ProjectModel, file: FileModel, findings: list[Finding]
) -> None:
    for cls in file.classes.values():
        if not project.is_exception(cls):
            continue
        init = cls.methods.get("__init__")
        if init is None:
            continue
        extra_params = [p for p in init.params if p not in ("self",)]
        if not extra_params:
            continue
        if project.inherits_reduce(cls):
            continue
        findings.append(
            _finding(
                file, CODE_REDUCE,
                f"exception class {cls.name} has a parameterized __init__ "
                "but no __reduce__: unpickling in the parent would replay "
                f"{cls.name}(*args) and mis-build or crash (the PR 8 "
                "ExecutionAborted bug class)",
                cls.node,
                hint="inherit ReproError or define __reduce__ via "
                "repro.errors._rebuild_error",
            )
        )


def check_wire(project: ProjectModel) -> list[Finding]:
    findings: list[Finding] = []
    for file in project.files:
        _check_submits(project, file, findings)
        _check_reduce(project, file, findings)
    return findings


__all__ = [
    "CODE_ARG",
    "CODE_CALLABLE",
    "CODE_REDUCE",
    "check_wire",
]
