"""Pass 3 — no synchronous blocking calls inside ``async def`` bodies.

The serve loop is a single asyncio event loop: one synchronous sqlite
query, ``time.sleep``, socket accept, or file read inside a coroutine
stalls *every* connected client.  This pass flags, inside any
``async def`` body in the analyzed files:

* calls on a **denylist** of known-blocking callables (``time.sleep``,
  ``sqlite3.connect``, ``open``, ``socket.*``, ``subprocess.*``,
  ``Path.read_text``-style file methods), resolved through the file's
  imports so ``from time import sleep`` is still caught; and
* calls to anything marked ``@blocking``
  (:func:`repro.concurrency.blocking`), resolved one lexical hop —
  bare project functions, ``self.m()``, and ``obj.m()`` where ``obj``
  is a parameter, local, or ``self`` attribute whose class is known.

Executor dispatch escapes naturally: ``await asyncio.to_thread(f, x)``
and ``loop.run_in_executor(None, f, x)`` pass ``f`` *uncalled*, so no
Call node appears and nothing is flagged — exactly the approved idiom.
"""

from __future__ import annotations

import ast

from ..diagnostics import Severity
from .model import (
    ClassInfo,
    FileModel,
    Finding,
    FunctionInfo,
    ProjectModel,
    dotted,
    terminal,
)

CODE_BLOCKING = "conlint-async-blocking"

#: Fully-resolved dotted names that always block.
DENYLIST = {
    "time.sleep",
    "sqlite3.connect",
    "socket.socket",
    "socket.create_connection",
    "socket.getaddrinfo",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "os.system",
    "urllib.request.urlopen",
}
#: Bare builtins that block.
BUILTIN_DENYLIST = {"open"}
#: Method names that mean file I/O on any receiver (Path API).
METHOD_DENYLIST = {"read_text", "write_text", "read_bytes", "write_bytes"}


def _finding(
    file: FileModel, message: str, node: ast.AST, hint: str | None = None
) -> Finding:
    return Finding(
        code=CODE_BLOCKING,
        severity=Severity.ERROR,
        message=message,
        path=file.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        position=file.offset_of(node),
        hint=hint
        or "dispatch through an executor: await asyncio.to_thread(...)",
    )


def _resolve_import(file: FileModel, name: str) -> str:
    """Rewrite the first segment through the file's import table."""
    parts = name.split(".")
    origin = file.imports.get(parts[0])
    if origin is None:
        return name
    return ".".join([origin, *parts[1:]])


class _AsyncBodyChecker:
    """Checks one ``async def`` body with a lexical local-type env."""

    def __init__(
        self,
        project: ProjectModel,
        file: FileModel,
        func: FunctionInfo,
        cls: ClassInfo | None,
        findings: list[Finding],
    ) -> None:
        self.project = project
        self.file = file
        self.func = func
        self.cls = cls
        self.findings = findings
        #: local / parameter name -> class name
        self.env: dict[str, str] = dict(func.param_types)

    def check(self) -> None:
        for stmt in self.func.node.body:
            self._walk(stmt)

    def _walk(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            return  # sync nested def: only blocking if *called* here
        if isinstance(node, ast.AsyncFunctionDef):
            return  # gets its own checker
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            self._track(node)
        if isinstance(node, ast.Call):
            self._check_call(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    def _track(self, node: ast.Assign | ast.AnnAssign) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        name = targets[0].id
        value = node.value
        if value is None:
            return
        source = dotted(value)
        if source is None:
            return
        inferred = self._type_of(source)
        if inferred is not None:
            self.env[name] = inferred

    def _type_of(self, dotted_name: str) -> str | None:
        parts = dotted_name.split(".")
        if parts[0] == "self" and self.cls is not None and len(parts) == 2:
            for current in self.project._mro(self.cls):
                if parts[1] in current.attr_types:
                    return current.attr_types[parts[1]]
            return None
        if len(parts) == 1:
            return self.env.get(parts[0])
        return None

    def _check_call(self, node: ast.Call) -> None:
        name = dotted(node.func)
        if name is None:
            return
        resolved = _resolve_import(self.file, name)
        if resolved in DENYLIST or (
            "." not in name and name in BUILTIN_DENYLIST
        ):
            self.findings.append(
                _finding(
                    self.file,
                    f"synchronous blocking call '{name}' inside async "
                    f"function {self.func.name} stalls the event loop "
                    "for every connected client",
                    node,
                )
            )
            return
        if "." in name and terminal(name) in METHOD_DENYLIST:
            self.findings.append(
                _finding(
                    self.file,
                    f"synchronous file I/O '{name}' inside async function "
                    f"{self.func.name} stalls the event loop",
                    node,
                )
            )
            return
        self._check_marked(node, name)

    def _check_marked(self, node: ast.Call, name: str) -> None:
        parts = name.split(".")
        target: FunctionInfo | None = None
        if len(parts) == 1:
            candidate = self.file.module_functions.get(parts[0])
            if candidate is not None and candidate.is_blocking:
                target = candidate
        elif len(parts) == 2:
            if parts[0] == "self" and self.cls is not None:
                target = self.project.class_method(self.cls, parts[1])
            else:
                owner_name = self.env.get(parts[0])
                owner = (
                    self.project.classes.get(owner_name)
                    if owner_name
                    else None
                )
                if owner is not None:
                    target = self.project.class_method(owner, parts[1])
        elif len(parts) == 3 and parts[0] == "self":
            owner_name = self._type_of(f"self.{parts[1]}")
            owner = (
                self.project.classes.get(owner_name) if owner_name else None
            )
            if owner is not None:
                target = self.project.class_method(owner, parts[2])
        if target is not None and target.is_blocking:
            self.findings.append(
                _finding(
                    self.file,
                    f"call to @blocking '{name}' inside async function "
                    f"{self.func.name} performs synchronous I/O on the "
                    "event loop",
                    node,
                    hint=f"await asyncio.to_thread({name}, ...) instead",
                )
            )


def check_async(project: ProjectModel) -> list[Finding]:
    findings: list[Finding] = []
    for file in project.files:
        for func in file.all_functions:
            if not func.is_async:
                continue
            cls = (
                file.classes.get(func.class_name)
                if func.class_name
                else None
            )
            _AsyncBodyChecker(project, file, func, cls, findings).check()
    return findings


__all__ = ["CODE_BLOCKING", "check_async"]
