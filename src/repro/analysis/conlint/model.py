"""Source model for the concurrency linter.

One parse pass per file extracts the *facts* every conlint pass
consumes: classes with their ``GUARDED`` maps, lock attributes and
``Condition`` aliases, decorator markers (``@locked`` / ``@requires`` /
``@blocking``), per-function call names (for the polling call graph),
inferred attribute/parameter types, suppression comments, and the
``# conlint: hot-module`` marker.  The passes themselves
(:mod:`.lockcheck`, :mod:`.wirecheck`, :mod:`.asynccheck`,
:mod:`.cancelcheck`) are pure functions over this model.

The model is deliberately *lexical*: it resolves names one obvious hop
(``self.cache`` → ``ResultCache`` because ``__init__`` assigned a
``ResultCache(...)`` or an annotated parameter), never through the full
type system.  That keeps the analyzer fast, dependency-free, and honest
about what it proves — the conventions it checks are the lexical ones
``docs/CONCURRENCY.md`` documents.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from ..diagnostics import Diagnostic, Severity, SourceSpan

#: ``# conlint: skip[code, code] -- why this is safe``
SUPPRESS_RE = re.compile(
    r"#\s*conlint:\s*skip\[([a-z0-9_,\-\s]+)\]\s*(?:--\s*(\S.*))?"
)
#: ``self._entries = {}  # guarded_by: _lock`` (attribute-tag variant)
GUARDED_BY_RE = re.compile(r"#\s*guarded_by:\s*([A-Za-z_][A-Za-z0-9_]*)")
#: Files whose loops the cancellation pass inspects opt in explicitly.
HOT_MODULE_RE = re.compile(r"#\s*conlint:\s*hot-module")

#: threading constructors that create a lock-like attribute.
LOCK_KINDS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "Semaphore": "lock",
    "BoundedSemaphore": "lock",
}


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None.

    Chains interrupted by calls or subscripts (``self.pool().submit``)
    resolve to None — the passes treat those as unknown receivers.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def terminal(name: str) -> str:
    """The last segment of a dotted name (``threading.RLock`` → RLock)."""
    return name.rsplit(".", 1)[-1]


def annotation_type(node: ast.AST | None) -> str | None:
    """The class name an annotation most plausibly denotes.

    Handles ``X``, ``mod.X``, ``X | None``, ``Optional[X]``, and string
    annotations; everything else (unions of two real types, callables)
    resolves to None.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = dotted(node)
        return terminal(name) if name else None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            found = annotation_type(side)
            if found is not None and found != "None":
                return found
        return None
    if isinstance(node, ast.Subscript):
        base = dotted(node.value)
        if base and terminal(base) == "Optional":
            return annotation_type(node.slice)
        return None
    return None


@dataclass(frozen=True)
class Suppression:
    """One ``# conlint: skip[...]`` comment."""

    line: int
    codes: tuple[str, ...]
    justification: str

    def covers(self, code: str) -> bool:
        return code in self.codes or "all" in self.codes


@dataclass
class FunctionInfo:
    """Facts about one ``def`` (module-level, method, or nested)."""

    name: str
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    class_name: str | None = None
    is_async: bool = False
    is_static: bool = False
    locked_locks: tuple[str, ...] = ()
    requires_locks: tuple[str, ...] = ()
    is_blocking: bool = False
    params: tuple[str, ...] = ()
    param_types: dict[str, str] = field(default_factory=dict)
    return_type: str | None = None
    #: Terminal segment of every Call's callee in the body (nested defs
    #: included) — the polling call graph's edges.
    call_names: tuple[str, ...] = ()
    #: Body lexically contains a ``*.checkpoint(...)`` call or a
    #: ``*.cancelled`` read — the polling call graph's seeds.
    direct_poll: bool = False

    @property
    def has_self(self) -> bool:
        return bool(self.params) and self.params[0] in ("self", "cls")


@dataclass
class ClassInfo:
    """Facts about one class: its locks, guards, and methods."""

    name: str
    node: ast.ClassDef
    path: str
    bases: tuple[str, ...] = ()
    #: attr -> lock attr, from ``GUARDED = {...}`` and ``# guarded_by:``.
    guarded: dict[str, str] = field(default_factory=dict)
    #: lock attr -> kind ("lock" | "rlock" | "condition").
    locks: dict[str, str] = field(default_factory=dict)
    #: Condition attr -> the underlying lock it wraps
    #: (``self._ready = threading.Condition(self._lock)``).
    lock_aliases: dict[str, str] = field(default_factory=dict)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: self attr -> class name, from ``__init__`` assignments of known
    #: constructors or annotated parameters.
    attr_types: dict[str, str] = field(default_factory=dict)
    has_guard_attr: bool = False
    defines_reduce: bool = False
    has_custom_init: bool = False


@dataclass
class FileModel:
    """Everything conlint knows about one source file."""

    path: str
    text: str
    tree: ast.Module
    line_offsets: list[int]
    suppressions: list[Suppression] = field(default_factory=list)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    module_functions: dict[str, FunctionInfo] = field(default_factory=dict)
    all_functions: list[FunctionInfo] = field(default_factory=list)
    #: local name -> dotted origin (``from time import sleep`` →
    #: ``{"sleep": "time.sleep"}``; ``import sqlite3`` →
    #: ``{"sqlite3": "sqlite3"}``).
    imports: dict[str, str] = field(default_factory=dict)
    is_hot: bool = False

    def offset_of(self, node: ast.AST) -> int:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return self.line_offsets[lineno - 1] + col

    def suppression_for(self, code: str, node: ast.AST) -> Suppression | None:
        """A suppression covering ``code`` on any physical line of the
        statement the finding attaches to."""
        first = getattr(node, "lineno", 0)
        last = getattr(node, "end_lineno", first) or first
        for sup in self.suppressions:
            if first <= sup.line <= last and sup.covers(code):
                return sup
        return None


@dataclass(frozen=True)
class Finding:
    """One raw pass result, pre-suppression."""

    code: str
    severity: Severity
    message: str
    path: str
    line: int
    col: int
    position: int
    hint: str | None = None

    def to_diagnostic(self, text: str) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            severity=self.severity,
            message=self.message,
            location=f"{self.path}:{self.line}:{self.col + 1}",
            span=SourceSpan(text, self.position),
            hint=self.hint,
        )


@dataclass
class ProjectModel:
    """The merged model every pass runs over."""

    files: list[FileModel] = field(default_factory=list)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: terminal function name -> every definition with that name.
    functions_by_name: dict[str, list[FunctionInfo]] = field(
        default_factory=dict
    )
    #: qualnames of functions that poll cancellation, transitively.
    polling: set[str] = field(default_factory=set)

    # -- class-hierarchy lookups (base chains resolved by bare name) ----

    def _mro(self, cls: ClassInfo) -> list[ClassInfo]:
        chain, queue, seen = [], [cls], set()
        while queue:
            current = queue.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            chain.append(current)
            for base in current.bases:
                found = self.classes.get(terminal(base))
                if found is not None:
                    queue.append(found)
        return chain

    def class_locks(self, cls: ClassInfo) -> dict[str, str]:
        """attr -> kind over the base chain (derived class wins)."""
        merged: dict[str, str] = {}
        for current in reversed(self._mro(cls)):
            merged.update(current.locks)
        return merged

    def class_aliases(self, cls: ClassInfo) -> dict[str, str]:
        merged: dict[str, str] = {}
        for current in reversed(self._mro(cls)):
            merged.update(current.lock_aliases)
        return merged

    def class_guarded(self, cls: ClassInfo) -> dict[str, str]:
        merged: dict[str, str] = {}
        for current in reversed(self._mro(cls)):
            merged.update(current.guarded)
        return merged

    def class_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        for current in self._mro(cls):
            if name in current.methods:
                return current.methods[name]
        return None

    def is_exception(self, cls: ClassInfo) -> bool:
        for current in self._mro(cls):
            for base in current.bases:
                name = terminal(base)
                if name in ("Exception", "BaseException") or name.endswith(
                    "Error"
                ) and terminal(base) not in self.classes:
                    return True
        return False

    def inherits_reduce(self, cls: ClassInfo) -> bool:
        return any(c.defines_reduce for c in self._mro(cls))

    def canonical_lock(self, cls: ClassInfo, attr: str) -> str:
        """Resolve a Condition alias to the lock it wraps."""
        return self.class_aliases(cls).get(attr, attr)


# ----------------------------------------------------------------------
# Fact extraction
# ----------------------------------------------------------------------


def _decorator_facts(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[tuple[str, ...], tuple[str, ...], bool, bool]:
    locked: list[str] = []
    requires: list[str] = []
    is_blocking = False
    is_static = False
    for dec in node.decorator_list:
        name = None
        args: list[str] = []
        if isinstance(dec, ast.Call):
            name = dotted(dec.func)
            args = [
                arg.value
                for arg in dec.args
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            ]
        else:
            name = dotted(dec)
        if name is None:
            continue
        name = terminal(name)
        if name == "locked":
            locked.extend(args)
        elif name == "requires":
            requires.extend(args)
        elif name == "blocking":
            is_blocking = True
        elif name in ("staticmethod", "classmethod"):
            is_static = True
    return tuple(locked), tuple(requires), is_blocking, is_static


def _collect_calls(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[tuple[str, ...], bool]:
    """Every callee terminal name in the body, and whether the body
    polls cancellation directly (``*.checkpoint(...)`` call or a
    ``*.cancelled`` / ``*.is_set`` read on a name containing cancel)."""
    calls: list[str] = []
    direct_poll = False
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            name = dotted(child.func)
            if name is not None:
                last = terminal(name)
                calls.append(last)
                if last in ("checkpoint", "raise_if_cancelled"):
                    direct_poll = True
        elif isinstance(child, ast.Attribute) and child.attr == "cancelled":
            direct_poll = True
    return tuple(calls), direct_poll


def _function_info(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    path: str,
    class_name: str | None,
) -> FunctionInfo:
    locked, requires, is_blocking, is_static = _decorator_facts(node)
    params: list[str] = []
    param_types: dict[str, str] = {}
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        params.append(arg.arg)
        inferred = annotation_type(arg.annotation)
        if inferred is not None:
            param_types[arg.arg] = inferred
    calls, direct_poll = _collect_calls(node)
    qual = f"{class_name}.{node.name}" if class_name else node.name
    return FunctionInfo(
        name=node.name,
        qualname=f"{path}::{qual}",
        node=node,
        path=path,
        class_name=class_name,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        is_static=is_static,
        locked_locks=locked,
        requires_locks=requires,
        is_blocking=is_blocking,
        params=tuple(params),
        param_types=param_types,
        return_type=annotation_type(node.returns),
        call_names=calls,
        direct_poll=direct_poll,
    )


def _self_target(node: ast.AST) -> str | None:
    """``X`` when ``node`` is the attribute ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _constructor_class(node: ast.AST) -> str | None:
    """The class name when ``node`` is (or branches to) ``ClassName(...)``.

    Sees through ``x if c else ClassName(...)`` and ``a or ClassName(...)``
    so the common default-argument idiom still types the attribute.
    """
    if isinstance(node, ast.Call):
        name = dotted(node.func)
        if name is not None:
            last = terminal(name)
            if last[:1].isupper():
                return last
        return None
    if isinstance(node, ast.IfExp):
        return _constructor_class(node.body) or _constructor_class(node.orelse)
    if isinstance(node, ast.BoolOp):
        for value in node.values:
            found = _constructor_class(value)
            if found is not None:
                return found
    return None


def _scan_guarded_map(value: ast.AST) -> dict[str, str]:
    out: dict[str, str] = {}
    if isinstance(value, ast.Dict):
        for key, val in zip(value.keys, value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(val, ast.Constant)
                and isinstance(val.value, str)
            ):
                out[key.value] = val.value
    return out


def _scan_class(
    node: ast.ClassDef, path: str, lines: list[str]
) -> ClassInfo:
    info = ClassInfo(
        name=node.name,
        node=node,
        path=path,
        bases=tuple(
            name for name in (dotted(b) for b in node.bases) if name
        ),
    )
    for item in node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "GUARDED":
                    info.guarded.update(_scan_guarded_map(item.value))
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = _function_info(item, path, node.name)
            info.methods[item.name] = func
            if item.name in ("__reduce__", "__reduce_ex__"):
                info.defines_reduce = True
            if item.name == "__init__":
                info.has_custom_init = True
    # Instance facts: scan every method body for ``self.X = ...``.
    for func in info.methods.values():
        param_types = func.param_types
        for stmt in ast.walk(func.node):
            target: ast.AST | None = None
            value: ast.AST | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            else:
                continue
            attr = _self_target(target)
            if attr is None:
                continue
            if attr == "guard":
                info.has_guard_attr = True
            # guarded_by tag on the assignment's first physical line
            line = lines[stmt.lineno - 1] if stmt.lineno <= len(lines) else ""
            tag = GUARDED_BY_RE.search(line)
            if tag:
                info.guarded.setdefault(attr, tag.group(1))
            # lock construction / condition aliasing
            if isinstance(value, ast.Call):
                ctor = dotted(value.func)
                if ctor is not None and terminal(ctor) in LOCK_KINDS:
                    kind = LOCK_KINDS[terminal(ctor)]
                    info.locks[attr] = kind
                    if kind == "condition" and value.args:
                        wrapped = _self_target(value.args[0])
                        if wrapped is not None:
                            info.lock_aliases[attr] = wrapped
                    continue
            # attribute typing (constructor call or annotated param)
            if isinstance(stmt, ast.AnnAssign):
                inferred = annotation_type(stmt.annotation)
                if inferred is not None:
                    info.attr_types.setdefault(attr, inferred)
            if value is not None:
                ctor_class = _constructor_class(value)
                if ctor_class is not None:
                    info.attr_types.setdefault(attr, ctor_class)
                elif isinstance(value, ast.Name) and value.id in param_types:
                    info.attr_types.setdefault(attr, param_types[value.id])
    return info


def _scan_imports(tree: ast.Module) -> dict[str, str]:
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                out[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return out


def _scan_suppressions(text: str) -> list[Suppression]:
    out: list[Suppression] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = SUPPRESS_RE.search(line)
        if match:
            codes = tuple(
                code.strip()
                for code in match.group(1).split(",")
                if code.strip()
            )
            out.append(
                Suppression(
                    line=lineno,
                    codes=codes,
                    justification=(match.group(2) or "").strip(),
                )
            )
    return out


def build_file_model(path: str, text: str) -> FileModel:
    """Parse one file into a :class:`FileModel` (raises SyntaxError)."""
    tree = ast.parse(text, filename=path)
    offsets = [0]
    for line in text.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    lines = text.splitlines()
    model = FileModel(
        path=path,
        text=text,
        tree=tree,
        line_offsets=offsets,
        suppressions=_scan_suppressions(text),
        imports=_scan_imports(tree),
        is_hot=bool(HOT_MODULE_RE.search(text)),
    )
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            info = _scan_class(node, path, lines)
            model.classes[info.name] = info
            model.all_functions.extend(info.methods.values())
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = _function_info(node, path, None)
            model.module_functions[func.name] = func
            model.all_functions.append(func)
    # Nested defs (closures, local helpers) still join the call graph.
    seen = {id(f.node) for f in model.all_functions}
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and id(node) not in seen
        ):
            model.all_functions.append(_function_info(node, path, None))
    return model


def build_project_model(files: list[FileModel]) -> ProjectModel:
    """Merge file models and run the polling fixpoint."""
    project = ProjectModel(files=files)
    for file in files:
        project.classes.update(file.classes)
        for func in file.all_functions:
            project.functions_by_name.setdefault(func.name, []).append(func)
    # Transitive polling: seed with direct checkpoints, then propagate
    # along call-by-terminal-name edges to a fixpoint.
    polling = {f.qualname for file in files for f in file.all_functions
               if f.direct_poll}
    polling_names = {
        f.name for file in files for f in file.all_functions if f.direct_poll
    }
    changed = True
    while changed:
        changed = False
        for file in files:
            for func in file.all_functions:
                if func.qualname in polling:
                    continue
                if any(name in polling_names for name in func.call_names):
                    polling.add(func.qualname)
                    polling_names.add(func.name)
                    changed = True
    project.polling = polling
    return project


__all__ = [
    "ClassInfo",
    "FileModel",
    "Finding",
    "FunctionInfo",
    "ProjectModel",
    "Suppression",
    "annotation_type",
    "build_file_model",
    "build_project_model",
    "dotted",
    "terminal",
]
