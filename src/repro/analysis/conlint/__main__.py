"""``python -m repro.analysis.conlint`` — the CI conlint gate."""

import sys

from .runner import main

sys.exit(main())
