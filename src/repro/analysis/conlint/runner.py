"""Drive the four conlint passes and report through diagnostics.

:func:`lint_paths` is the library entry point (the CLI's
``repro check --concurrency`` and ``python -m repro.analysis.conlint``
both land here): discover ``.py`` files, build the project model, run
every pass, apply ``# conlint: skip[...]`` suppressions, and return a
:class:`~repro.analysis.diagnostics.DiagnosticReport` with the standard
exit-code convention (0 clean / 3 warnings / 4 errors).

Suppression rules are strict by design:

* a suppression only silences codes it names, on the physical lines of
  the flagged statement;
* a suppression **without a justification** (``-- why``) is itself an
  error (``conlint-bad-suppression``) — the whole point is a reviewable
  record of why the analyzer's model is wrong at that site.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterable, Sequence

from ..diagnostics import Diagnostic, DiagnosticReport, Severity
from .asynccheck import check_async
from .cancelcheck import check_cancellation
from .lockcheck import check_locks
from .model import (
    FileModel,
    Finding,
    ProjectModel,
    build_file_model,
    build_project_model,
)
from .wirecheck import check_wire

CODE_BAD_SUPPRESSION = "conlint-bad-suppression"
CODE_PARSE = "conlint-parse-error"

PASSES = (check_locks, check_wire, check_async, check_cancellation)


def discover(paths: Iterable[str]) -> list[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = [
                    d for d in dirs
                    if d not in ("__pycache__", ".git")
                ]
                for name in files:
                    if name.endswith(".py"):
                        found.add(os.path.join(root, name))
        elif path.endswith(".py"):
            found.add(path)
    return sorted(found)


def load_files(
    filenames: Sequence[str],
) -> tuple[list[FileModel], list[Diagnostic]]:
    models: list[FileModel] = []
    parse_errors: list[Diagnostic] = []
    for filename in filenames:
        try:
            with open(filename, encoding="utf-8") as handle:
                text = handle.read()
            models.append(build_file_model(filename, text))
        except (OSError, SyntaxError) as exc:
            parse_errors.append(
                Diagnostic(
                    code=CODE_PARSE,
                    severity=Severity.ERROR,
                    message=f"cannot analyze {filename}: {exc}",
                    location=filename,
                )
            )
    return models, parse_errors


def _apply_suppressions(
    project: ProjectModel, findings: list[Finding]
) -> list[Diagnostic]:
    """Suppress covered findings; flag unjustified suppressions."""
    by_path = {file.path: file for file in project.files}
    out: list[Diagnostic] = []
    for finding in findings:
        file = by_path.get(finding.path)
        if file is None:
            out.append(finding.to_diagnostic(""))
            continue
        span_node = _FakeSpan(finding.line, finding.line)
        suppression = file.suppression_for(finding.code, span_node)
        if suppression is None:
            out.append(finding.to_diagnostic(file.text))
        elif not suppression.justification:
            out.append(
                Diagnostic(
                    code=CODE_BAD_SUPPRESSION,
                    severity=Severity.ERROR,
                    message=(
                        f"suppression of {finding.code} at "
                        f"{finding.path}:{suppression.line} has no "
                        "justification"
                    ),
                    location=f"{finding.path}:{suppression.line}",
                    hint="write '# conlint: skip[code] -- why it is safe'",
                )
            )
        # justified suppression: finding dropped
    # Unjustified suppressions are errors even when nothing matched —
    # they would silently swallow future findings.
    for file in project.files:
        for suppression in file.suppressions:
            if not suppression.justification:
                out.append(
                    Diagnostic(
                        code=CODE_BAD_SUPPRESSION,
                        severity=Severity.ERROR,
                        message=(
                            "suppression without justification at "
                            f"{file.path}:{suppression.line}"
                        ),
                        location=f"{file.path}:{suppression.line}",
                        hint="write '# conlint: skip[code] -- why'",
                    )
                )
    # De-duplicate (a bad suppression can be reported per finding + once
    # in the file scan).
    seen: set[tuple[str, str | None, str]] = set()
    unique: list[Diagnostic] = []
    for diag in out:
        key = (diag.code, diag.location, diag.message)
        if key not in seen:
            seen.add(key)
            unique.append(diag)
    return unique


class _FakeSpan:
    """Line-range stand-in handed to ``FileModel.suppression_for``."""

    def __init__(self, lineno: int, end_lineno: int) -> None:
        self.lineno = lineno
        self.end_lineno = end_lineno


def build_model(paths: Iterable[str]) -> ProjectModel:
    """The analyzed project model for ``paths`` (tests use this to get
    at :func:`~repro.analysis.conlint.lockcheck.lock_order_edges`)."""
    models, _ = load_files(discover(paths))
    return build_project_model(models)


def lint_paths(paths: Iterable[str]) -> DiagnosticReport:
    """Run every conlint pass over ``paths`` and report."""
    models, parse_errors = load_files(discover(paths))
    project = build_project_model(models)
    findings: list[Finding] = []
    for check in PASSES:
        findings.extend(check(project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    diagnostics = _apply_suppressions(project, findings)
    return DiagnosticReport.collect([*parse_errors, *diagnostics])


def render_text(report: DiagnosticReport, files: int) -> str:
    lines = [str(diag) for diag in report]
    summary = (
        f"conlint: {files} file(s), {len(report.errors)} error(s), "
        f"{len(report.warnings)} warning(s)"
    )
    if report.is_clean:
        summary += " — clean"
    lines.append(summary)
    return "\n".join(lines)


def to_json(report: DiagnosticReport) -> dict:
    """The ``repro check --format json`` schema, for the conlint gate."""
    out = report.to_dict()
    out["ok"] = report.ok
    out["exit_code"] = report.exit_code()
    return out


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.conlint",
        description="concurrency lint: lock discipline, wire safety, "
        "async blocking, cancellation responsiveness",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    args = parser.parse_args(argv)
    files = discover(args.paths)
    report = lint_paths(args.paths)
    if args.format == "json":
        print(json.dumps(to_json(report), indent=2, sort_keys=True))
    else:
        print(render_text(report, len(files)))
    return report.exit_code()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
