"""Pass 1 — lock discipline and static lock-order deadlock detection.

For every class that declares guarded state (a ``GUARDED`` map or
``# guarded_by:`` attribute tags), prove that each lexical read or
write of a guarded attribute happens while the declared lock is held:
inside ``with self.<lock>:`` (``Condition`` wrappers count for the lock
they wrap), under a ``@locked("<lock>")`` decorator, or inside a
``@requires("<lock>")`` helper whose call sites are themselves checked.
``__init__``/``__new__`` are exempt — construction happens-before
sharing.

While walking, every *nested* acquisition contributes an edge to the
project-wide lock-order graph: holding ``A`` and acquiring ``B`` —
lexically or by calling a method that acquires ``B`` (one
interprocedural hop, through ``self`` or a typed attribute) — declares
the order ``A → B``.  A cycle in that graph is a static deadlock:
re-acquiring a non-reentrant lock reports at the acquisition site, a
multi-lock cycle reports the full path.  The graph itself is exposed as
:func:`lock_order_edges` so runtime tests can assert the declared order
against instrumented locks.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Severity
from .model import (
    ClassInfo,
    FileModel,
    Finding,
    FunctionInfo,
    ProjectModel,
    dotted,
)

#: A node in the lock-order graph: (class name, canonical lock attr).
LockNode = tuple[str, str]
#: A directed edge plus the file/AST site that declared it.
EdgeSites = dict[tuple[LockNode, LockNode], tuple[FileModel, ast.AST]]

CODE_UNLOCKED = "conlint-guard-unlocked"
CODE_UNKNOWN_LOCK = "conlint-guard-unknown-lock"
CODE_REQUIRES = "conlint-guard-requires"
CODE_CYCLE = "conlint-lock-cycle"

_EXEMPT_METHODS = frozenset({"__init__", "__new__"})


def _finding(
    file: FileModel,
    code: str,
    message: str,
    node: ast.AST,
    hint: str | None = None,
    severity: Severity = Severity.ERROR,
) -> Finding:
    return Finding(
        code=code,
        severity=severity,
        message=message,
        path=file.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        position=file.offset_of(node),
        hint=hint,
    )


def _method_acquires(
    project: ProjectModel, cls: ClassInfo, func: FunctionInfo
) -> set[str]:
    """Canonical locks ``func`` acquires lexically anywhere in its body
    (``with self.X`` plus ``@locked`` decorations)."""
    locks = project.class_locks(cls)
    acquired = {
        project.canonical_lock(cls, name)
        for name in func.locked_locks
        if project.canonical_lock(cls, name) in locks
    }
    for node in ast.walk(func.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                attr = _self_lock(item.context_expr)
                if attr is None:
                    continue
                canonical = project.canonical_lock(cls, attr)
                if canonical in locks:
                    acquired.add(canonical)
    return acquired


def _self_lock(node: ast.AST) -> str | None:
    """``X`` when ``node`` is ``self.X`` (candidate lock acquisition)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _MethodChecker:
    """Walks one method body tracking the lexically-held lock set."""

    def __init__(
        self,
        project: ProjectModel,
        file: FileModel,
        cls: ClassInfo,
        func: FunctionInfo,
        findings: list[Finding],
        edges: EdgeSites,
    ) -> None:
        self.project = project
        self.file = file
        self.cls = cls
        self.func = func
        self.findings = findings
        self.edges = edges
        self.locks = project.class_locks(cls)
        self.guarded = project.class_guarded(cls)

    # -- helpers -------------------------------------------------------

    def _canonical(self, name: str) -> str:
        return self.project.canonical_lock(self.cls, name)

    def _kind(self, canonical: str) -> str:
        return self.locks.get(canonical, "lock")

    def _edge(
        self, held: frozenset[str], target: LockNode, node: ast.AST
    ) -> None:
        for holder in held:
            source = (self.cls.name, holder)
            if source != target:
                self.edges.setdefault((source, target), (self.file, node))

    def _acquire(
        self, held: frozenset[str], canonical: str, node: ast.AST
    ) -> frozenset[str]:
        if canonical in held:
            if self._kind(canonical) != "rlock":
                self.findings.append(
                    _finding(
                        self.file,
                        CODE_CYCLE,
                        f"{self.cls.name}.{self.func.name} re-acquires "
                        f"non-reentrant lock 'self.{canonical}' it already "
                        "holds — guaranteed self-deadlock",
                        node,
                        hint="use threading.RLock or restructure so the "
                        "lock is acquired once",
                    )
                )
            return held
        self._edge(held, (self.cls.name, canonical), node)
        return held | {canonical}

    # -- the walk ------------------------------------------------------

    def check(self) -> None:
        held = frozenset(
            self._canonical(name)
            for name in (*self.func.locked_locks, *self.func.requires_locks)
        )
        for name in (*self.func.locked_locks, *self.func.requires_locks):
            if self._canonical(name) not in self.locks:
                self.findings.append(
                    _finding(
                        self.file,
                        CODE_UNKNOWN_LOCK,
                        f"{self.cls.name}.{self.func.name} declares lock "
                        f"'{name}' which no method of {self.cls.name} "
                        "creates",
                        self.func.node,
                    )
                )
        for stmt in self.func.node.body:
            self._walk(stmt, held)

    def _walk(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def may run on another thread (callback, executor
            # task): its body starts with nothing held.
            for stmt in node.body:
                self._walk(stmt, frozenset())
            return
        if isinstance(node, ast.Lambda):
            self._walk(node.body, frozenset())
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                attr = _self_lock(item.context_expr)
                canonical = self._canonical(attr) if attr else None
                if canonical is not None and canonical in self.locks:
                    inner = self._acquire(inner, canonical, item.context_expr)
                else:
                    self._walk(item.context_expr, inner)
            for stmt in node.body:
                self._walk(stmt, inner)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_lock(node)
            if attr is not None and attr in self.guarded:
                need = self._canonical(self.guarded[attr])
                if need not in held:
                    self.findings.append(
                        _finding(
                            self.file,
                            CODE_UNLOCKED,
                            f"{self.cls.name}.{self.func.name} accesses "
                            f"guarded attribute 'self.{attr}' without "
                            f"holding 'self.{need}'",
                            node,
                            hint=f"wrap the access in 'with self.{need}:' "
                            "or mark the method "
                            f"@requires(\"{self.guarded[attr]}\")",
                        )
                    )
            self._walk(node.value, held)
            return
        if isinstance(node, ast.Call):
            self._check_call(node, held)
            for child in ast.iter_child_nodes(node):
                self._walk(child, held)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, held)

    def _check_call(self, node: ast.Call, held: frozenset[str]) -> None:
        name = dotted(node.func)
        if name is None or not name.startswith("self."):
            return
        parts = name.split(".")
        if len(parts) == 2:
            target = self.project.class_method(self.cls, parts[1])
            if target is None:
                return
            missing = [
                req
                for req in target.requires_locks
                if self._canonical(req) not in held
            ]
            if missing:
                self.findings.append(
                    _finding(
                        self.file,
                        CODE_REQUIRES,
                        f"{self.cls.name}.{self.func.name} calls "
                        f"self.{parts[1]}() which @requires "
                        f"{', '.join(repr(m) for m in missing)} — not held "
                        "at this call site",
                        node,
                    )
                )
            self._interproc_edges(self.cls, target, held, node)
        elif len(parts) == 3:
            attr_type = self._attr_type(parts[1])
            other = (
                self.project.classes.get(attr_type) if attr_type else None
            )
            if other is None:
                return
            target = self.project.class_method(other, parts[2])
            if target is not None:
                self._cross_edges(other, target, held, node)

    def _attr_type(self, attr: str) -> str | None:
        for current in self.project._mro(self.cls):
            if attr in current.attr_types:
                return current.attr_types[attr]
        return None

    def _interproc_edges(
        self,
        owner: ClassInfo,
        target: FunctionInfo,
        held: frozenset[str],
        node: ast.AST,
    ) -> None:
        for acquired in _method_acquires(self.project, owner, target):
            if acquired in held:
                if self._kind(acquired) != "rlock":
                    self.findings.append(
                        _finding(
                            self.file,
                            CODE_CYCLE,
                            f"{self.cls.name}.{self.func.name} holds "
                            f"'self.{acquired}' and calls "
                            f"self.{target.name}() which re-acquires it — "
                            "self-deadlock on a non-reentrant lock",
                            node,
                        )
                    )
            else:
                self._edge(held, (owner.name, acquired), node)

    def _cross_edges(
        self,
        other: ClassInfo,
        target: FunctionInfo,
        held: frozenset[str],
        node: ast.AST,
    ) -> None:
        other_locks = self.project.class_locks(other)
        for acquired in _method_acquires(self.project, other, target):
            if acquired in other_locks:
                self._edge(held, (other.name, acquired), node)


def _cycles(edges: EdgeSites) -> Iterator[list[LockNode]]:
    """Elementary cycles via DFS with an on-stack set (first per SCC)."""
    graph: dict[LockNode, list[LockNode]] = {}
    for source, target in edges:
        graph.setdefault(source, []).append(target)
    seen: set[LockNode] = set()
    reported: set[frozenset[LockNode]] = set()
    for start in sorted(graph):
        if start in seen:
            continue
        stack: list[tuple[LockNode, Iterator[LockNode]]] = [
            (start, iter(graph.get(start, ())))
        ]
        path = [start]
        on_path = {start}
        while stack:
            current, children = stack[-1]
            advanced = False
            for child in children:
                if child in on_path:
                    cycle = path[path.index(child):] + [child]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        yield cycle
                elif child not in seen:
                    stack.append((child, iter(graph.get(child, ()))))
                    path.append(child)
                    on_path.add(child)
                    advanced = True
                    break
            if not advanced:
                seen.add(current)
                stack.pop()
                path.pop()
                on_path.discard(current)


def lock_order_edges(
    project: ProjectModel,
) -> dict[tuple[LockNode, LockNode], tuple[FileModel, ast.AST]]:
    """The full lock-order graph (edge → declaring site), as built by
    the discipline walk.  Exposed for the runtime lock-order regression
    test, which asserts instrumented acquisitions obey this order."""
    edges: EdgeSites = {}
    _run(project, [], edges)
    return edges


def check_locks(project: ProjectModel) -> list[Finding]:
    findings: list[Finding] = []
    edges: EdgeSites = {}
    _run(project, findings, edges)
    for cycle in _cycles(edges):
        file, node = edges[(cycle[0], cycle[1])]
        pretty = " → ".join(f"{cls}.{lock}" for cls, lock in cycle)
        findings.append(
            _finding(
                file,
                CODE_CYCLE,
                f"lock-order cycle: {pretty} — threads taking these locks "
                "in different orders can deadlock",
                node,
                hint="pick one global order and acquire along it "
                "(see docs/CONCURRENCY.md)",
            )
        )
    return findings


def _run(
    project: ProjectModel, findings: list[Finding], edges: EdgeSites
) -> None:
    for file in project.files:
        for cls in file.classes.values():
            locks = project.class_locks(cls)
            for attr, lockname in project.class_guarded(cls).items():
                if project.canonical_lock(cls, lockname) not in locks:
                    findings.append(
                        _finding(
                            file,
                            CODE_UNKNOWN_LOCK,
                            f"{cls.name}.GUARDED maps '{attr}' to "
                            f"'{lockname}' but no method of {cls.name} "
                            "creates that lock",
                            cls.node,
                            hint="create the lock in __init__ "
                            "(self.%s = threading.Lock()) or fix the map"
                            % lockname,
                        )
                    )
            for name, func in cls.methods.items():
                if name in _EXEMPT_METHODS:
                    continue
                _MethodChecker(
                    project, file, cls, func, findings, edges
                ).check()


__all__ = [
    "CODE_CYCLE",
    "CODE_REQUIRES",
    "CODE_UNKNOWN_LOCK",
    "CODE_UNLOCKED",
    "check_locks",
    "lock_order_edges",
]
