"""Concurrency lint for the serving + parallel stack.

Four AST passes over ``src/repro`` prove the concurrency conventions
``docs/CONCURRENCY.md`` documents, reporting through the shared
:class:`~repro.analysis.diagnostics.Diagnostic` framework:

1. :mod:`.lockcheck` — ``GUARDED`` lock discipline and a static
   lock-order deadlock check (``conlint-guard-*``,
   ``conlint-lock-cycle``);
2. :mod:`.wirecheck` — process-pool picklability and the exception
   ``__reduce__`` contract (``conlint-wire-*``);
3. :mod:`.asynccheck` — no synchronous blocking calls on the event
   loop (``conlint-async-blocking``);
4. :mod:`.cancelcheck` — hot kernels poll cancellation
   (``conlint-loop-no-checkpoint``).

Entry points: :func:`lint_paths` (library), ``repro check
--concurrency`` and ``python -m repro.analysis.conlint`` (CLI).
"""

from .lockcheck import lock_order_edges
from .model import build_file_model, build_project_model
from .runner import build_model, lint_paths, main, to_json

__all__ = [
    "build_file_model",
    "build_model",
    "build_project_model",
    "lint_paths",
    "lock_order_edges",
    "main",
    "to_json",
]
