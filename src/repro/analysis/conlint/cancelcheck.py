"""Pass 4 — cancellation responsiveness of hot kernels.

PR 1's contract: every engine loop that can run long must poll its
:class:`~repro.guard.ExecutionGuard` (``guard.checkpoint()``), so
budgets and cancellation bite mid-kernel instead of after the join
finishes.  This pass makes the contract checkable:

* Files opt in with a ``# conlint: hot-module`` marker (the engine's
  ``memory.py`` and ``parallel.py`` carry it) — loops elsewhere are
  not kernels.
* Inside hot files, only *guard-reachable* functions are checked:
  a ``guard`` parameter, or a method of a class that assigns
  ``self.guard``.  A function with no guard in scope has nothing to
  poll.
* A loop is **hot** when it is a ``while`` loop (unbounded by
  construction) or a ``for`` loop whose body calls heavy work
  (``*join*``, ``*aggregate*``, ``*filter*``, ``run_*``, ``execute*``,
  ``*partition*``, ``*scan*``, ``evaluate*`` — the kernel vocabulary).
* A hot loop **polls** when its body lexically checkpoints
  (``*.checkpoint(...)``, ``raise_if_cancelled``) or calls a function
  that *transitively* polls — the project-wide polling set computed by
  the model's call-graph fixpoint, so delegating the poll to
  ``run_stage`` still counts.

Hot loops that never poll get ``conlint-loop-no-checkpoint`` (warning:
a responsiveness bug, not a correctness bug — but the gate treats
warnings as findings too).
"""

from __future__ import annotations

import ast
import re

from ..diagnostics import Severity
from .model import (
    FileModel,
    Finding,
    FunctionInfo,
    ProjectModel,
    dotted,
    terminal,
)

CODE_NO_CHECKPOINT = "conlint-loop-no-checkpoint"

HEAVY_RE = re.compile(
    r"(join|aggregate|filter|partition|scan|evaluate|execute|"
    r"run_|_run\b|mine)",
    re.IGNORECASE,
)
POLL_CALLS = {"checkpoint", "raise_if_cancelled"}


def _finding(file: FileModel, message: str, node: ast.AST) -> Finding:
    return Finding(
        code=CODE_NO_CHECKPOINT,
        severity=Severity.WARNING,
        message=message,
        path=file.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        position=file.offset_of(node),
        hint="call guard.checkpoint(...) inside the loop body (or via a "
        "callee that polls)",
    )


def _guard_reachable(file: FileModel, func: FunctionInfo) -> bool:
    if "guard" in func.params or "_guard" in func.params:
        return True
    if func.class_name:
        cls = file.classes.get(func.class_name)
        if cls is not None and cls.has_guard_attr and func.has_self:
            return True
    return False


def _loop_calls(loop: ast.For | ast.While) -> list[str]:
    """Callee terminal names in the loop body (nested defs excluded —
    a closure defined in the loop only polls if something calls it)."""
    calls: list[str] = []
    stack: list[ast.AST] = list(loop.body) + list(loop.orelse)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            name = dotted(node.func)
            if name is not None:
                calls.append(terminal(name))
        stack.extend(ast.iter_child_nodes(node))
    return calls


def _polls(project: ProjectModel, calls: list[str]) -> bool:
    polling_names = {
        func.name
        for funcs in project.functions_by_name.values()
        for func in funcs
        if func.qualname in project.polling
    }
    return any(
        name in POLL_CALLS or name in polling_names for name in calls
    )


def _is_hot(loop: ast.For | ast.While, calls: list[str]) -> bool:
    if isinstance(loop, ast.While):
        return True
    return any(HEAVY_RE.search(name) for name in calls)


def check_cancellation(project: ProjectModel) -> list[Finding]:
    findings: list[Finding] = []
    for file in project.files:
        if not file.is_hot:
            continue
        for func in file.all_functions:
            if not _guard_reachable(file, func):
                continue
            for node in ast.walk(func.node):
                if not isinstance(node, (ast.For, ast.While)):
                    continue
                calls = _loop_calls(node)
                if not _is_hot(node, calls):
                    continue
                if _polls(project, calls):
                    continue
                kind = "while" if isinstance(node, ast.While) else "for"
                findings.append(
                    _finding(
                        file,
                        f"hot {kind} loop in {func.name} never polls "
                        "cancellation: budget overruns and cancel "
                        "requests cannot interrupt it mid-kernel",
                        node,
                    )
                )
    return findings


__all__ = ["CODE_NO_CHECKPOINT", "check_cancellation"]
