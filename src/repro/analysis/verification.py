"""The ambient plan-verification switch.

``mine(verify_plans=True)`` — and the test suite, via an autouse
fixture — turn on IR checking for *every* plan the planner emits,
including the re-lowered suffixes the dynamic strategy builds mid-run
via ``complete_order()``.  The switch is a :class:`contextvars.ContextVar`
rather than a parameter threaded through a dozen call sites: lowering
happens deep inside strategies that predate the checker, and a context
variable keeps the hot paths signature-stable while staying
thread/async-safe (unlike a module global).
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

_PLAN_VERIFICATION: ContextVar[bool] = ContextVar(
    "repro_plan_verification", default=False
)


def plan_verification_enabled() -> bool:
    """Whether lowered plans are schema-checked before execution."""
    return _PLAN_VERIFICATION.get()


def set_plan_verification(enabled: bool) -> None:
    """Set the ambient switch (process/context-wide until changed)."""
    _PLAN_VERIFICATION.set(enabled)


@contextmanager
def plan_verification(enabled: bool = True) -> Iterator[None]:
    """Scope the switch to a ``with`` block."""
    token = _PLAN_VERIFICATION.set(enabled)
    try:
        yield
    finally:
        _PLAN_VERIFICATION.reset(token)
