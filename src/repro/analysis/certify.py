"""Legality certificates for FILTER-step plans (Sections 4.1–4.2).

The paper's legality rule makes every pre-filter step an *upper bound*
of the flock query: a safe subquery whose result, for each parameter
assignment, is a superset of the full query's.  :func:`certify_plan`
turns that argument into a machine-checkable object — for every step
and branch a :class:`BranchCertificate` holding

* the step's subquery (the step rule with prior steps' ok-atoms
  stripped),
* its :class:`~repro.datalog.safety.SafetyReport` with binding
  witnesses, and
* an explicit **containment witness**: the Chandra–Merlin homomorphism
  for pure CQ steps (:class:`HomomorphismWitness`), the Klug argument —
  mapping plus entailed comparisons — for arithmetic ones
  (:class:`KlugWitness`), and the paper's subgoal-subset criterion for
  steps with negation (:class:`SubgoalSubsetWitness`).

:func:`verify_certificate` re-checks a certificate **independently of
how it was produced**: structural legality is re-derived from the plan,
safety reports are re-validated against their witnesses, and each
containment witness is checked directly (applying the recorded mapping,
re-deriving entailment) with no search.  ``validate_plan`` and the
optimizer's plan search are thin layers over :func:`certify_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..datalog.atoms import RelationalAtom, Subgoal
from ..datalog.containment import (
    ExtendedWitness,
    find_containment_mapping,
    find_extended_witness,
    is_subquery_bound,
    verify_containment_mapping,
    verify_extended_witness,
)
from ..datalog.query import ConjunctiveQuery, as_union
from ..datalog.safety import (
    SafetyReport,
    check_safety,
    verify_safety_report,
)
from ..datalog.terms import Term
from ..errors import FilterError, PlanError
from .diagnostics import Diagnostic, DiagnosticReport, Severity, error

if TYPE_CHECKING:  # avoid a runtime cycle with repro.flocks
    from ..flocks.flock import QueryFlock
    from ..flocks.plans import FilterStep, QueryPlan


# ----------------------------------------------------------------------
# Containment witnesses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HomomorphismWitness:
    """A Chandra–Merlin containment mapping subquery → flock rule."""

    mapping: tuple[tuple[Term, Term], ...]

    kind = "homomorphism"

    def __str__(self) -> str:
        pairs = ", ".join(f"{s}→{t}" for s, t in self.mapping)
        return f"homomorphism {{{pairs or 'identity'}}}"


@dataclass(frozen=True)
class KlugWitness:
    """The [Klu82] argument: a mapping over the relational subgoals plus
    the mapped comparisons it leaves to entailment."""

    witness: ExtendedWitness

    kind = "klug"

    def __str__(self) -> str:
        if self.witness.contained_unsatisfiable:
            return "klug (contained query unsatisfiable)"
        pairs = ", ".join(f"{s}→{t}" for s, t in self.witness.mapping)
        entailed = ", ".join(str(c) for c in self.witness.entailed)
        return (
            f"klug {{{pairs or 'identity'}}}"
            + (f" entailing {entailed}" if entailed else "")
        )


@dataclass(frozen=True)
class SubgoalSubsetWitness:
    """The paper's sound criterion for the extended language: the
    subquery is the flock rule with ``deleted`` subgoals removed."""

    deleted: tuple[Subgoal, ...]

    kind = "subgoal-subset"

    def __str__(self) -> str:
        dropped = "; ".join(str(sg) for sg in self.deleted)
        return f"subgoal-subset (deleted: {dropped or 'nothing'})"


ContainmentWitness = Union[
    HomomorphismWitness, KlugWitness, SubgoalSubsetWitness
]


def _is_pure_cq(query: ConjunctiveQuery) -> bool:
    return all(
        isinstance(sg, RelationalAtom) and not sg.negated for sg in query.body
    )


def _has_negation(query: ConjunctiveQuery) -> bool:
    return any(
        isinstance(sg, RelationalAtom) and sg.negated for sg in query.body
    )


def find_witness(
    subquery: ConjunctiveQuery, flock_rule: ConjunctiveQuery
) -> Optional[ContainmentWitness]:
    """The strongest applicable containment witness for
    ``flock_rule ⊆ subquery``, or ``None`` when no test succeeds."""
    if _is_pure_cq(subquery) and _is_pure_cq(flock_rule):
        mapping = find_containment_mapping(subquery, flock_rule)
        if mapping is not None:
            return HomomorphismWitness(
                tuple(sorted(mapping.items(), key=repr))
            )
    elif not (_has_negation(subquery) or _has_negation(flock_rule)):
        extended = find_extended_witness(subquery, flock_rule)
        if extended is not None:
            return KlugWitness(extended)
    # Negation — or a failed complete test — falls back to the paper's
    # subgoal-subset criterion, sound for the whole extended language.
    if is_subquery_bound(subquery, flock_rule):
        remaining = list(flock_rule.body)
        for sg in subquery.body:
            remaining.remove(sg)
        return SubgoalSubsetWitness(tuple(remaining))
    return None


def verify_witness(
    subquery: ConjunctiveQuery,
    flock_rule: ConjunctiveQuery,
    witness: ContainmentWitness,
) -> bool:
    """Re-check one containment witness without searching."""
    if isinstance(witness, HomomorphismWitness):
        if not (_is_pure_cq(subquery) and _is_pure_cq(flock_rule)):
            return False
        return verify_containment_mapping(
            subquery, flock_rule, dict(witness.mapping)
        )
    if isinstance(witness, KlugWitness):
        if _has_negation(subquery) or _has_negation(flock_rule):
            return False
        return verify_extended_witness(subquery, flock_rule, witness.witness)
    if isinstance(witness, SubgoalSubsetWitness):
        expected = list(flock_rule.body)
        for sg in witness.deleted:
            try:
                expected.remove(sg)
            except ValueError:
                return False
        return (
            subquery.head_name == flock_rule.head_name
            and subquery.head_terms == flock_rule.head_terms
            and sorted(map(str, subquery.body)) == sorted(map(str, expected))
            and is_subquery_bound(subquery, flock_rule)
        )
    return False


# ----------------------------------------------------------------------
# Certificates
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BranchCertificate:
    """The legality argument for one branch of one FILTER step."""

    step_name: str
    rule_index: int
    subquery: ConjunctiveQuery
    flock_rule: ConjunctiveQuery
    safety: SafetyReport
    witness: Optional[ContainmentWitness]

    @property
    def location(self) -> str:
        return f"step {self.step_name} / branch {self.rule_index}"

    def verify(self) -> DiagnosticReport:
        """Re-check this branch's safety report and containment witness
        independently of how they were produced."""
        out: list[Diagnostic] = []
        if not verify_safety_report(self.safety):
            out.append(
                error(
                    "certificate-safety-invalid",
                    "the recorded safety report does not re-validate "
                    "against the subquery",
                    location=self.location,
                )
            )
        if not self.safety.is_safe:
            out.append(
                error(
                    "plan-unsafe-step",
                    f"step {self.step_name} is unsafe: "
                    + "; ".join(str(v) for v in self.safety.violations),
                    location=self.location,
                )
            )
        if self.witness is None:
            out.append(
                error(
                    "plan-not-containing",
                    f"step {self.step_name}: no containment witness — the "
                    "subquery is not known to upper-bound the flock query "
                    "(Section 4.2 rule 3)",
                    location=self.location,
                )
            )
        elif not verify_witness(self.subquery, self.flock_rule, self.witness):
            out.append(
                error(
                    "certificate-witness-invalid",
                    f"the recorded {self.witness.kind} witness does not "
                    "re-validate: it is not a containment argument for "
                    "this subquery over the flock rule",
                    location=self.location,
                )
            )
        return DiagnosticReport(tuple(out))


@dataclass(frozen=True)
class StepCertificate:
    """Per-branch certificates for one FILTER step."""

    step_name: str
    is_final: bool
    branches: tuple[BranchCertificate, ...]

    def verify(self) -> DiagnosticReport:
        report = DiagnosticReport()
        for branch in self.branches:
            report = report.merged(branch.verify())
        return report


@dataclass(frozen=True)
class LegalityCertificate:
    """The full legality argument of one plan against one flock."""

    flock: "QueryFlock"
    plan: "QueryPlan"
    steps: tuple[StepCertificate, ...]
    diagnostics: DiagnosticReport

    @property
    def ok(self) -> bool:
        return self.diagnostics.ok

    @property
    def prefilter_steps(self) -> tuple[StepCertificate, ...]:
        return tuple(s for s in self.steps if not s.is_final)

    def raise_for_errors(self) -> None:
        """Raise the first error as the exception type the legality rule
        historically used: :class:`~repro.errors.FilterError` for a
        non-monotone filter, :class:`~repro.errors.PlanError` otherwise."""
        for diagnostic in self.diagnostics.errors:
            if diagnostic.code == "plan-non-monotone-filter":
                raise FilterError(diagnostic.message)
            raise PlanError(diagnostic.message)

    def render(self) -> str:
        lines = []
        for step in self.steps:
            for branch in step.branches:
                witness = str(branch.witness) if branch.witness else "MISSING"
                lines.append(
                    f"{branch.location}: safe={branch.safety.is_safe} "
                    f"witness={witness}"
                )
        if not self.diagnostics.ok:
            lines.append(str(self.diagnostics))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Structural legality (Section 4.2) as diagnostics
# ----------------------------------------------------------------------


def _split_step_body(
    body: Sequence[Subgoal],
    prior: dict[str, "FilterStep"],
    step_name: str,
    out: list[Diagnostic],
) -> tuple[list[Subgoal], list[RelationalAtom]]:
    """Partition a step body into original-query subgoals and ok-atoms
    referencing prior steps, reporting non-literal copies (rule 3b)."""
    original: list[Subgoal] = []
    ok_atoms: list[RelationalAtom] = []
    for sg in body:
        if isinstance(sg, RelationalAtom) and sg.predicate in prior:
            step = prior[sg.predicate]
            if sg.negated:
                out.append(
                    error(
                        "plan-ok-negated",
                        f"ok-relation {sg.predicate} may not be negated",
                        location=f"step {step_name}",
                    )
                )
                continue
            if sg.terms != tuple(step.parameters):
                out.append(
                    error(
                        "plan-ok-not-literal",
                        f"subgoal {sg} must copy the left side "
                        f"{step.result_name}"
                        f"({', '.join(map(str, step.parameters))}) "
                        "literally (same relation name, same parameters)",
                        location=f"step {step_name}",
                    )
                )
                continue
            ok_atoms.append(sg)
        else:
            original.append(sg)
    return original, ok_atoms


def _certify_branch(
    step: "FilterStep",
    step_rule: ConjunctiveQuery,
    flock_rule: ConjunctiveQuery,
    rule_index: int,
    prior: dict[str, "FilterStep"],
    is_final: bool,
    witnesses: bool,
    out: list[Diagnostic],
) -> BranchCertificate:
    """Check Section 4.2 rule 3 for one branch and build its certificate."""
    name = step.result_name
    if step_rule.head_name != flock_rule.head_name or (
        step_rule.head_terms != flock_rule.head_terms
    ):
        out.append(
            error(
                "plan-head-changed",
                f"step {name}: head must stay "
                f"{flock_rule.head_name}"
                f"({', '.join(map(str, flock_rule.head_terms))})",
                location=f"step {name}",
            )
        )
    original, _ok = _split_step_body(step_rule.body, prior, name, out)
    remaining = list(flock_rule.body)
    for sg in original:
        try:
            remaining.remove(sg)
        except ValueError:
            out.append(
                error(
                    "plan-foreign-subgoal",
                    f"step {name}: subgoal {sg} is neither an original "
                    "subgoal of the flock query nor the left side of a "
                    "prior step",
                    location=f"step {name}",
                    hint="steps may only delete original subgoals and "
                    "splice in prior steps' left sides (rule 3)",
                )
            )
    if is_final and remaining:
        out.append(
            error(
                "plan-final-deletes-subgoal",
                f"final step {name} deletes original subgoal(s): "
                f"{'; '.join(str(s) for s in remaining)}",
                location=f"step {name}",
            )
        )

    subquery = ConjunctiveQuery(
        step_rule.head_name, step_rule.head_terms, tuple(original)
    )
    safety = check_safety(step_rule)
    if not safety.is_safe:
        out.append(
            error(
                "plan-unsafe-step",
                f"step {name} is unsafe: "
                + "; ".join(str(v) for v in safety.violations),
                location=f"step {name}",
                hint="rule 3c: every step must remain a safe query",
            )
        )

    witness: Optional[ContainmentWitness] = None
    if witnesses:
        witness = find_witness(subquery, flock_rule)
        if witness is None:
            out.append(
                error(
                    "plan-not-containing",
                    f"step {name}: the subquery does not contain the flock "
                    "query — its result cannot upper-bound the answer "
                    "(Section 4.2 rule 3)",
                    location=f"step {name}",
                )
            )
    return BranchCertificate(
        step_name=name,
        rule_index=rule_index,
        subquery=subquery,
        flock_rule=flock_rule,
        safety=safety,
        witness=witness,
    )


def certify_plan(
    flock: "QueryFlock", plan: "QueryPlan", witnesses: bool = True
) -> LegalityCertificate:
    """Check the Section 4.2 legality rule and produce the certificate.

    ``witnesses=False`` skips the containment-witness search (used by
    the optimizer's enumeration loop, where plans are built legal by
    construction and only the structural checks are wanted); the
    certificate then carries ``witness=None`` per branch and
    :func:`verify_certificate` would reject it — call with witnesses
    enabled before trusting a plan from an untrusted source.
    """
    out: list[Diagnostic] = []
    if len(plan.prefilter_steps) > 0 and not flock.filter.is_monotone:
        out.append(
            error(
                "plan-non-monotone-filter",
                f"filter {flock.filter} is not monotone; a-priori "
                "pre-filter steps would be unsound (Section 5)",
                hint="use the naive strategy, or a monotone filter",
            )
        )

    prior: dict[str, "FilterStep"] = {}
    base_predicates = flock.predicates()
    flock_rules = flock.rules
    step_certs: list[StepCertificate] = []

    for index, step in enumerate(plan.steps):
        name = step.result_name
        if name in prior:
            out.append(
                error(
                    "plan-duplicate-step",
                    f"step relation {name!r} defined twice (rule 2)",
                    location=f"step {name}",
                )
            )
        if name in base_predicates:
            out.append(
                error(
                    "plan-shadowed-relation",
                    f"step relation {name!r} shadows a base relation",
                    location=f"step {name}",
                )
            )
        is_final = index == len(plan.steps) - 1
        step_rules = as_union(step.query).rules
        branches: list[BranchCertificate] = []
        if len(step_rules) == 1 and not flock.is_union:
            branches.append(
                _certify_branch(
                    step, step_rules[0], flock_rules[0], 0, prior,
                    is_final, witnesses, out,
                )
            )
        elif flock.is_union:
            if len(step_rules) != len(flock_rules):
                out.append(
                    error(
                        "plan-branch-count",
                        f"step {name}: a union-flock step must have one "
                        f"branch per flock rule ({len(flock_rules)}), got "
                        f"{len(step_rules)}",
                        location=f"step {name}",
                    )
                )
            else:
                for rule_index, (step_rule, flock_rule) in enumerate(
                    zip(step_rules, flock_rules)
                ):
                    branches.append(
                        _certify_branch(
                            step, step_rule, flock_rule, rule_index, prior,
                            is_final, witnesses, out,
                        )
                    )
        else:
            out.append(
                error(
                    "plan-union-step",
                    f"step {name}: union step over a single-rule flock",
                    location=f"step {name}",
                )
            )
        prior[name] = step
        step_certs.append(
            StepCertificate(
                step_name=name, is_final=is_final, branches=tuple(branches)
            )
        )

    final = plan.final_step
    if frozenset(final.parameters) != frozenset(flock.parameters):
        out.append(
            error(
                "plan-final-parameters",
                "the final step must define all flock parameters "
                f"({', '.join(flock.parameter_columns)}), got "
                f"({', '.join(final.parameter_columns)})",
                location=f"step {final.result_name}",
            )
        )

    return LegalityCertificate(
        flock=flock,
        plan=plan,
        steps=tuple(step_certs),
        diagnostics=DiagnosticReport(tuple(out)),
    )


def verify_certificate(certificate: LegalityCertificate) -> DiagnosticReport:
    """Re-check a :class:`LegalityCertificate` independently of how it
    was produced.

    Re-derives the structural legality of ``certificate.plan`` from
    scratch, confirms each branch certificate matches the plan it claims
    to certify (same stripped subquery), and re-validates every safety
    report and containment witness directly.  A clean report means the
    certificate is a genuine proof of the Section 4.2 legality rule.
    """
    fresh = certify_plan(
        certificate.flock, certificate.plan, witnesses=False
    )
    out: list[Diagnostic] = list(fresh.diagnostics)

    fresh_by_key = {
        (b.step_name, b.rule_index): b
        for s in fresh.steps
        for b in s.branches
    }
    for step in certificate.steps:
        for branch in step.branches:
            reference = fresh_by_key.get((branch.step_name, branch.rule_index))
            if reference is None or (
                str(reference.subquery) != str(branch.subquery)
                or str(reference.flock_rule) != str(branch.flock_rule)
            ):
                out.append(
                    error(
                        "certificate-mismatch",
                        "the certificate does not describe this plan: "
                        f"branch {branch.location} disagrees with the "
                        "plan's derived subquery",
                        location=branch.location,
                    )
                )
                continue
            out.extend(branch.verify())
    missing = set(fresh_by_key) - {
        (b.step_name, b.rule_index)
        for s in certificate.steps
        for b in s.branches
    }
    for step_name, rule_index in sorted(missing):
        out.append(
            error(
                "certificate-missing-branch",
                f"the certificate has no entry for step {step_name} "
                f"branch {rule_index}",
                location=f"step {step_name} / branch {rule_index}",
            )
        )
    return DiagnosticReport(tuple(out))


def certify_step_bound(
    flock_rule: ConjunctiveQuery,
    subquery_indices: Sequence[int],
    step_name: str,
) -> BranchCertificate:
    """Certify one *in-flight* FILTER decision of the dynamic strategy.

    The dynamic evaluator filters on the safe subquery made of the body
    subgoals absorbed so far; this produces the same
    :class:`BranchCertificate` a static pre-filter step would carry, so
    dynamic decisions are as auditable as planned ones.
    """
    subquery = flock_rule.with_body_subset(sorted(subquery_indices))
    return BranchCertificate(
        step_name=step_name,
        rule_index=0,
        subquery=subquery,
        flock_rule=flock_rule,
        safety=check_safety(subquery),
        witness=find_witness(subquery, flock_rule),
    )
