"""The shared diagnostics layer every verifier reports through.

Lint warnings, safety violations, plan-legality failures and IR schema
errors used to surface as four unrelated shapes (dataclasses, exception
strings, ad-hoc prints).  A :class:`Diagnostic` unifies them: a stable
machine-readable ``code`` (kebab-case, cataloged in
``docs/DIAGNOSTICS.md``), a :class:`Severity`, a human message, an
optional ``location`` naming the object at fault (a plan step, an IR
operator, a rule index), an optional :class:`SourceSpan` rendered with
the same caret machinery as :class:`~repro.errors.ParseError`, and an
optional fix ``hint``.

A :class:`DiagnosticReport` is an ordered collection with the exit-code
convention the CLI documents: clean → 0, warnings only → 3, any error →
4 (:meth:`DiagnosticReport.exit_code`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator

from ..errors import render_caret


class Severity(Enum):
    """How bad a diagnostic is, ordered: INFO < WARNING < ERROR."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank


@dataclass(frozen=True)
class SourceSpan:
    """A position inside a source text (flock file, query string).

    ``text`` is the full source and ``position`` a character offset into
    it; rendering reuses :func:`repro.errors.render_caret`, so a span
    prints exactly like a :class:`~repro.errors.ParseError`.
    """

    text: str
    position: int

    def render(self) -> str:
        return render_caret(self.text, self.position)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a verifier.

    Attributes:
        code: stable kebab-case identifier (``"plan-unsafe-step"``,
            ``"ir-dangling-join-key"``, ...; see docs/DIAGNOSTICS.md).
        severity: :class:`Severity`.
        message: the human-readable finding.
        location: what the finding is about — a step name, an operator
            path like ``"branch 0 / stage 2 / HashJoin"``, a rule label.
        span: optional :class:`SourceSpan` into the source text.
        hint: optional suggestion for fixing the problem.
    """

    code: str
    severity: Severity
    message: str
    location: str | None = None
    span: SourceSpan | None = None
    hint: str | None = None

    def __str__(self) -> str:
        where = f" at {self.location}" if self.location else ""
        out = f"{self.severity.value}[{self.code}]{where}: {self.message}"
        if self.span is not None:
            caret = self.span.render()
            if caret:
                out += f"\n{caret}"
        if self.hint:
            out += f"\n  hint: {self.hint}"
        return out

    def to_dict(self) -> dict:
        """JSON-friendly form (used by ``repro check --format json``)."""
        out: dict = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.location is not None:
            out["location"] = self.location
        if self.span is not None:
            out["position"] = self.span.position
        if self.hint is not None:
            out["hint"] = self.hint
        return out


def error(code: str, message: str, **kwargs) -> Diagnostic:
    return Diagnostic(code, Severity.ERROR, message, **kwargs)


def warning(code: str, message: str, **kwargs) -> Diagnostic:
    return Diagnostic(code, Severity.WARNING, message, **kwargs)


def info(code: str, message: str, **kwargs) -> Diagnostic:
    return Diagnostic(code, Severity.INFO, message, **kwargs)


@dataclass(frozen=True)
class DiagnosticReport:
    """An ordered, immutable collection of diagnostics.

    ``is_clean`` means *no errors and no warnings* (info notes do not
    dirty a report); ``ok`` means no errors.
    """

    diagnostics: tuple[Diagnostic, ...] = field(default_factory=tuple)

    @classmethod
    def collect(cls, items: Iterable[Diagnostic]) -> "DiagnosticReport":
        return cls(tuple(items))

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return self.ok

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.WARNING
        )

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.INFO)

    @property
    def ok(self) -> bool:
        """No errors (warnings and infos allowed)."""
        return not self.errors

    @property
    def is_clean(self) -> bool:
        """No errors and no warnings."""
        return not self.errors and not self.warnings

    def exit_code(self) -> int:
        """The documented CLI convention: 0 clean, 3 warnings, 4 errors."""
        if self.errors:
            return 4
        if self.warnings:
            return 3
        return 0

    def merged(self, *others: "DiagnosticReport") -> "DiagnosticReport":
        combined = list(self.diagnostics)
        for other in others:
            combined.extend(other.diagnostics)
        return DiagnosticReport(tuple(combined))

    def __str__(self) -> str:
        if not self.diagnostics:
            return "clean: no diagnostics"
        return "\n".join(str(d) for d in self.diagnostics)

    def to_dict(self) -> dict:
        return {
            "clean": self.is_clean,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
