"""Schema checking for the physical IR (:mod:`repro.engine.ir`).

:func:`check_physical_plan` types every operator of a lowered
:class:`~repro.engine.ir.PhysicalPlan` or
:class:`~repro.engine.ir.StepPlan` by flowing column sets through the
operator DAG — Scan (± ScanFilter) → HashJoin → AntiJoin/CompareFilter →
GroupAggregate → ThresholdFilter → Union → Materialize — exactly the
way the engines consume them:

* a scan's columns must be the binding-relation columns of its subgoal;
* a runtime scan filter (sideways information passing) may only
  restrict a column its scan binds, must name a catalogued source
  relation and column, and must be *justified*: the plan's query has to
  join that source on the same column, so the semi-join can only drop
  rows the join would discard anyway;
* every hash-join key must exist on **both** sides (a dangling key would
  silently turn the join into a cartesian product in SQL, or a KeyError
  in the columnar engine);
* a filter may only test terms already bound at its attachment point;
* union branches must agree on the answer schema positionally;
* aggregates may only consume answer columns, and threshold conditions
  only aggregate columns the group stage actually produces;
* the columnar engine's duplicate-free invariant is tracked per
  operator: the final Materialize must keep every group key, because
  ``project_unique`` skips the dedup pass on the strength of that
  invariant;
* a :class:`~repro.engine.ir.PartitionedStepPlan` additionally requires
  its Partition column to be a group key bound by every branch (so
  per-partition groups are disjoint and complete) and its Merge schema
  to match the step's materialization.

A malformed plan is reported as :class:`~repro.analysis.diagnostics.Diagnostic`
errors *before* execution rather than failing mid-join;
:func:`assert_physical_plan` raises :class:`~repro.errors.PlanError`.
"""

from __future__ import annotations

from typing import Optional

from ..datalog.terms import is_bindable
from ..engine.ir import (
    AntiJoin,
    CompareFilter,
    PartitionedStepPlan,
    PhysicalPlan,
    StepPlan,
)
from ..engine.planner import scan_columns
from ..errors import PlanError
from ..relational.binding import term_column
from ..relational.catalog import Database
from .diagnostics import Diagnostic, DiagnosticReport, error


def _check_atom_catalog(
    atom, db: Optional[Database], location: str, out: list[Diagnostic]
) -> None:
    """Catalog checks for one relational atom (when a db is supplied)."""
    if db is None:
        return
    if atom.predicate not in db:
        out.append(
            error(
                "ir-unknown-relation",
                f"relation {atom.predicate!r} is not in the catalog",
                location=location,
            )
        )
        return
    width = len(db.get(atom.predicate).columns)
    if atom.arity != width:
        out.append(
            error(
                "ir-arity-mismatch",
                f"{atom.predicate} has {width} column(s) but the plan "
                f"scans it with arity {atom.arity}",
                location=location,
            )
        )


def _check_filters(
    filters,
    bound: set[str],
    stage_columns: tuple[str, ...],
    db: Optional[Database],
    location: str,
    out: list[Diagnostic],
) -> None:
    for op in filters:
        if isinstance(op, CompareFilter):
            label = f"{location} / filter {op.comparison}"
            terms = op.comparison.bindable_terms()
        elif isinstance(op, AntiJoin):
            label = f"{location} / anti-join {op.atom}"
            terms = op.atom.bindable_terms()
            _check_atom_catalog(op.atom, db, label, out)
        else:  # pragma: no cover - IR has exactly two filter operators
            out.append(
                error(
                    "ir-unknown-operator",
                    f"unknown filter operator {type(op).__name__}",
                    location=location,
                )
            )
            continue
        for term in terms:
            if term_column(term) not in bound:
                out.append(
                    error(
                        "ir-unbound-filter-term",
                        f"term {term} is not bound at this point in the "
                        "plan (filters attach only once their terms are "
                        "joined in)",
                        location=label,
                    )
                )
        if tuple(op.columns) != tuple(stage_columns):
            out.append(
                error(
                    "ir-filter-columns",
                    f"filter carries columns {list(op.columns)} but the "
                    f"running result has {list(stage_columns)}",
                    location=label,
                )
            )


def _check_scan_filters(
    stage,
    plan: PhysicalPlan,
    db: Optional[Database],
    location: str,
    out: list[Diagnostic],
) -> None:
    """Type and *justify* a stage's runtime semi-join filters.

    A :class:`~repro.engine.ir.ScanFilter` restricts scan rows by
    membership of one scan column in a source relation's column.  It is
    sound only when the plan's own query joins that source atom on the
    same column (the filter then merely front-loads a join the plan
    performs anyway) — ``ir-scanfilter-unjustified`` is the legality
    certificate for sideways information passing, checked like every
    other operator invariant.
    """
    scan_cols = set(stage.scan.columns)
    for sf in stage.scan_filters:
        label = f"{location} / scan filter {sf.column} IN {sf.source}"
        if sf.column not in scan_cols:
            out.append(
                error(
                    "ir-scanfilter-column",
                    f"scan filter restricts column {sf.column!r} but the "
                    f"scan of {stage.scan.atom} only binds "
                    f"{list(stage.scan.columns)}",
                    location=label,
                )
            )
        justified = any(
            atom.predicate == sf.source and sf.column in scan_columns(atom)
            for atom in plan.query.positive_atoms()
        )
        if not justified:
            out.append(
                error(
                    "ir-scanfilter-unjustified",
                    f"scan filter from {sf.source!r} on {sf.column!r} has "
                    "no justifying positive subgoal: the query must join "
                    "that source on the same column for the semi-join to "
                    "be sound",
                    location=label,
                    hint="runtime filters may only come from ok-atoms "
                    "already present in the rule body",
                )
            )
        if db is None:
            continue
        if sf.source not in db:
            out.append(
                error(
                    "ir-scanfilter-source",
                    f"scan-filter source relation {sf.source!r} is not in "
                    "the catalog",
                    location=label,
                )
            )
            continue
        if sf.source_column not in db.get(sf.source).columns:
            out.append(
                error(
                    "ir-scanfilter-source-column",
                    f"scan-filter source {sf.source!r} has no column "
                    f"{sf.source_column!r}; columns are "
                    f"{list(db.get(sf.source).columns)}",
                    location=label,
                )
            )


def _check_rule_plan(
    plan: PhysicalPlan,
    db: Optional[Database],
    prefix: str,
    out: list[Diagnostic],
) -> set[str]:
    """Flow column sets through one rule plan; returns the bound set."""
    bound: set[str] = set()
    prev_columns: tuple[str, ...] = ()
    for index, stage in enumerate(plan.stages):
        location = f"{prefix}stage {index} ({stage.node})"
        atom = stage.scan.atom
        _check_atom_catalog(atom, db, location, out)
        expected_scan = scan_columns(atom)
        if tuple(stage.scan.columns) != expected_scan:
            out.append(
                error(
                    "ir-scan-columns",
                    f"scan of {atom} declares columns "
                    f"{list(stage.scan.columns)} but its binding relation "
                    f"has {list(expected_scan)}",
                    location=location,
                )
            )
        if index == 0:
            if stage.join is not None:
                out.append(
                    error(
                        "ir-unexpected-join",
                        "the first stage joins against nothing; its join "
                        "must be None",
                        location=location,
                    )
                )
            stage_columns = tuple(stage.scan.columns)
        else:
            if stage.join is None:
                out.append(
                    error(
                        "ir-missing-join",
                        "a non-initial stage must join the running result "
                        "with its scan",
                        location=location,
                    )
                )
                stage_columns = prev_columns + tuple(
                    c for c in stage.scan.columns if c not in set(prev_columns)
                )
            else:
                scan_cols = set(stage.scan.columns)
                for key in stage.join.on:
                    if key not in bound or key not in scan_cols:
                        side = (
                            "the running result"
                            if key not in bound
                            else f"the scan of {atom}"
                        )
                        out.append(
                            error(
                                "ir-dangling-join-key",
                                f"join key {key!r} does not exist on "
                                f"{side}",
                                location=f"{location} / HashJoin",
                                hint="join keys must be columns shared by "
                                "both join inputs",
                            )
                        )
                expected = prev_columns + tuple(
                    c for c in stage.scan.columns if c not in set(prev_columns)
                )
                if tuple(stage.join.columns) != expected:
                    out.append(
                        error(
                            "ir-join-columns",
                            f"join declares output columns "
                            f"{list(stage.join.columns)} but a natural join "
                            f"of the inputs produces {list(expected)}",
                            location=f"{location} / HashJoin",
                        )
                    )
                stage_columns = tuple(stage.join.columns)
        bound |= set(stage.scan.columns)
        _check_scan_filters(stage, plan, db, location, out)
        _check_filters(stage.filters, bound, stage_columns, db, location, out)
        prev_columns = stage_columns

    _check_filters(
        plan.unit_filters, bound, prev_columns, db,
        f"{prefix}unit filters", out,
    )

    root = plan.root
    location = f"{prefix}Materialize {root.name}"
    if len(root.output_terms) != len(root.columns):
        out.append(
            error(
                "ir-materialize-width",
                f"materialize projects {len(root.output_terms)} term(s) "
                f"under {len(root.columns)} label(s)",
                location=location,
            )
        )
    for term in root.output_terms:
        if is_bindable(term) and term_column(term) not in bound:
            out.append(
                error(
                    "ir-unbound-output",
                    f"output term {term} is never bound by a positive "
                    "subgoal of the plan",
                    location=location,
                )
            )
    return bound


def _check_step_plan(
    step: StepPlan, db: Optional[Database], out: list[Diagnostic]
) -> None:
    if not step.branches:
        out.append(
            error("ir-empty-step", "a step plan needs at least one branch")
        )
        return
    answer = tuple(step.answer_columns)
    for index, branch in enumerate(step.branches):
        prefix = f"branch {index} / "
        _check_rule_plan(branch, db, prefix, out)
        if tuple(branch.root.columns) != answer:
            out.append(
                error(
                    "ir-union-schema",
                    f"branch materializes columns "
                    f"{list(branch.root.columns)} but the union's answer "
                    f"schema is {list(answer)}",
                    location=f"branch {index} / Materialize",
                    hint="union branches are aligned positionally; every "
                    "branch must project onto the answer columns",
                )
            )
    if tuple(step.union.columns) != answer:
        out.append(
            error(
                "ir-union-schema",
                f"the union operator carries columns "
                f"{list(step.union.columns)} but the answer schema is "
                f"{list(answer)}",
                location="UnionOp",
            )
        )

    answer_set = set(answer)
    group = step.group
    for column in group.group_by:
        if column not in answer_set:
            out.append(
                error(
                    "ir-group-key",
                    f"group-by column {column!r} is not an answer column "
                    f"(answer schema: {list(answer)})",
                    location="GroupAggregate",
                )
            )
    spec_columns: list[str] = []
    for spec in group.aggregates:
        label = f"GroupAggregate / {spec.column}"
        for target in spec.target:
            if target not in answer_set:
                out.append(
                    error(
                        "ir-aggregate-target",
                        f"aggregate {spec.fn.name} consumes column "
                        f"{target!r}, which is not an answer column",
                        location=label,
                        hint="aggregates may only reference columns the "
                        "union produces",
                    )
                )
        if spec.column in answer_set or spec.column in spec_columns:
            out.append(
                error(
                    "ir-aggregate-column",
                    f"aggregate output column {spec.column!r} collides "
                    "with an existing column",
                    location=label,
                )
            )
        spec_columns.append(spec.column)
    expected_group_columns = tuple(group.group_by) + tuple(spec_columns)
    if tuple(group.columns) != expected_group_columns:
        out.append(
            error(
                "ir-group-columns",
                f"group stage declares columns {list(group.columns)} but "
                f"produces {list(expected_group_columns)} "
                "(group keys then one column per aggregate)",
                location="GroupAggregate",
            )
        )

    threshold = step.threshold
    if tuple(threshold.columns) != tuple(group.columns):
        out.append(
            error(
                "ir-threshold-columns",
                f"threshold filter carries columns "
                f"{list(threshold.columns)} but its input has "
                f"{list(group.columns)}",
                location="ThresholdFilter",
            )
        )
    produced = set(spec_columns)
    for _condition, column in threshold.conditions:
        if column not in produced:
            out.append(
                error(
                    "ir-threshold-column",
                    f"threshold condition tests column {column!r}, which "
                    "no aggregate produces",
                    location="ThresholdFilter",
                    hint="every threshold conjunct must test one of the "
                    "group stage's aggregate columns",
                )
            )

    root = step.root
    group_columns = set(group.columns)
    for column in root.columns:
        if column not in group_columns:
            out.append(
                error(
                    "ir-unbound-output",
                    f"step materializes column {column!r}, which the group "
                    "stage does not produce",
                    location=f"Materialize {root.name}",
                )
            )
    # Duplicate-free invariant: the survivor relation is projected
    # without a dedup pass (MemoryEngine.project_unique), which is sound
    # only when every group key survives the projection.
    missing_keys = [c for c in group.group_by if c not in set(root.columns)]
    if missing_keys:
        out.append(
            error(
                "ir-distinctness",
                f"materialize drops group key(s) {missing_keys}; the "
                "result would no longer be duplicate-free and the "
                "engines skip deduplication here",
                location=f"Materialize {root.name}",
            )
        )


def _check_partitioned_plan(
    plan: PartitionedStepPlan, db: Optional[Database], out: list[Diagnostic]
) -> None:
    """Partition/Merge typing over the wrapped step plan.

    The partition column must be a group key bound by a positive subgoal
    in *every* branch — that is what makes per-partition groups disjoint
    and complete, so the merge of partition survivors equals the serial
    survivors.  The merge schema must match the step's materialization.
    """
    _check_step_plan(plan.step, db, out)
    partition = plan.partition
    if partition.parts < 1:
        out.append(
            error(
                "ir-partition-parts",
                f"a partitioned plan needs at least 1 part, got "
                f"{partition.parts}",
                location="Partition",
            )
        )
    group_by = set(plan.step.group.group_by)
    if partition.column not in group_by:
        out.append(
            error(
                "ir-partition-column",
                f"partition column {partition.column!r} is not a group key "
                f"(group keys: {list(plan.step.group.group_by)})",
                location="Partition",
                hint="partitioning on a non-key column would split groups "
                "across partitions and break threshold counting",
            )
        )
    else:
        for index, branch in enumerate(plan.step.branches):
            if not any(
                partition.column in stage.scan.columns
                for stage in branch.stages
            ):
                out.append(
                    error(
                        "ir-partition-column",
                        f"partition column {partition.column!r} is not bound "
                        f"by any positive subgoal of branch {index}; its "
                        "scans cannot be restricted to one partition",
                        location=f"Partition / branch {index}",
                    )
                )
    if tuple(plan.merge.columns) != tuple(plan.step.root.columns):
        out.append(
            error(
                "ir-merge-columns",
                f"merge carries columns {list(plan.merge.columns)} but the "
                f"step materializes {list(plan.step.root.columns)}",
                location="Merge",
            )
        )


def check_physical_plan(
    plan: PhysicalPlan | StepPlan | PartitionedStepPlan,
    db: Optional[Database] = None,
) -> DiagnosticReport:
    """Type-check one lowered plan; returns a report of every violation.

    ``db`` adds catalog checks (relation existence and arity).  A clean
    report means every operator's column flow is consistent and the plan
    is executable by both engines.
    """
    out: list[Diagnostic] = []
    if isinstance(plan, PartitionedStepPlan):
        _check_partitioned_plan(plan, db, out)
    elif isinstance(plan, StepPlan):
        _check_step_plan(plan, db, out)
    elif isinstance(plan, PhysicalPlan):
        _check_rule_plan(plan, db, "", out)
    else:
        out.append(
            error(
                "ir-unknown-plan",
                f"not a physical plan: {type(plan).__name__}",
            )
        )
    return DiagnosticReport(tuple(out))


def assert_physical_plan(
    plan: PhysicalPlan | StepPlan | PartitionedStepPlan,
    db: Optional[Database] = None,
) -> None:
    """Raise :class:`~repro.errors.PlanError` when the plan is malformed."""
    report = check_physical_plan(plan, db=db)
    if not report.ok:
        details = "; ".join(str(d) for d in report.errors)
        raise PlanError(f"malformed physical plan: {details}")
