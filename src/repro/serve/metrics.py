"""A tiny thread-safe metrics registry with Prometheus text rendering.

The serve layer's observability substrate: counters, gauges, and
histograms, registered by name in one :class:`MetricsRegistry` and
rendered at ``GET /metrics`` in the Prometheus exposition format
(text/plain version 0.0.4), so any off-the-shelf scraper can watch a
``repro serve`` daemon without new dependencies.

Everything is stdlib and lock-based: metrics are bumped from the asyncio
event loop *and* from dispatcher worker threads, so each metric guards
its cells with one lock.  Histograms keep cumulative buckets (the
Prometheus convention) plus an exact reservoir of recent observations so
the server can report p50/p99 directly in ``/healthz`` and the load
benchmark without a scrape-side quantile estimator.

Usage::

    registry = MetricsRegistry()
    requests = registry.counter(
        "repro_requests_total", "HTTP requests served", labels=("endpoint", "status")
    )
    requests.inc(endpoint="/v1/mine", status="200")
    latency = registry.histogram("repro_mine_seconds", "mine() wall clock")
    latency.observe(0.042)
    text = registry.render()          # the /metrics payload
"""

from __future__ import annotations

import threading
from bisect import bisect_left, insort
from typing import Iterable, Mapping, Optional, Sequence


#: Default latency buckets (seconds) — tuned for mining calls that span
#: sub-millisecond cache hits to multi-second cold evaluations.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: How many recent observations a histogram keeps for exact quantiles.
RESERVOIR_SIZE = 2048


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects: integers
    without a trailing ``.0``, floats as-is."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class Metric:
    """Base: a named family of samples keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labels = tuple(labels)
        self._lock = threading.Lock()

    def _key(self, label_values: Mapping[str, str]) -> tuple[str, ...]:
        if set(label_values) != set(self.labels):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labels}, "
                f"got {tuple(sorted(label_values))}"
            )
        return tuple(str(label_values[label]) for label in self.labels)

    def render(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing sum, optionally per label vector."""

    kind = "counter"
    #: Bumped from worker threads and future done-callbacks, read from
    #: the scrape path — every cell access holds the metric's lock
    #: (proven by ``repro.analysis.conlint``).
    GUARDED = {"_values": "_lock"}

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1, **label_values: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(label_values)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **label_values: str) -> float:
        key = self._key(label_values)
        with self._lock:
            return self._values.get(key, 0)

    def total(self) -> float:
        """Sum across every label vector."""
        with self._lock:
            return sum(self._values.values())

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            samples = sorted(self._values.items())
        if not samples and not self.labels:
            samples = [((), 0.0)]
        for key, value in samples:
            labels = _render_labels(dict(zip(self.labels, key)))
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return "\n".join(lines)


class Gauge(Metric):
    """A value that can go up and down (queue depth, active workers)."""

    kind = "gauge"
    GUARDED = {"_values": "_lock"}

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **label_values: str) -> None:
        key = self._key(label_values)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1, **label_values: str) -> None:
        key = self._key(label_values)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **label_values: str) -> None:
        self.inc(-amount, **label_values)

    def value(self, **label_values: str) -> float:
        key = self._key(label_values)
        with self._lock:
            return self._values.get(key, 0)

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            samples = sorted(self._values.items())
        if not samples and not self.labels:
            samples = [((), 0.0)]
        for key, value in samples:
            labels = _render_labels(dict(zip(self.labels, key)))
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return "\n".join(lines)


class Histogram(Metric):
    """Cumulative-bucket histogram with an exact quantile reservoir.

    Label vectors are not supported (the serve layer labels by metric
    name instead — e.g. one histogram per endpoint family); this keeps
    the quantile reservoir simple and the render path obvious.
    """

    kind = "histogram"
    #: The cumulative buckets and the quantile reservoir mutate together
    #: in ``observe`` (done-callback path) while ``render``/``quantile``
    #: read them (scrape path) — one lock covers the lot.
    GUARDED = {
        "_counts": "_lock",
        "_sum": "_lock",
        "_count": "_lock",
        "_recent": "_lock",
        "_recent_fifo": "_lock",
    }

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels=())
        self.buckets = tuple(sorted(set(float(b) for b in buckets)))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.buckets) + 1)  # +Inf tail
        self._sum = 0.0
        self._count = 0
        # Sorted sliding reservoir of the most recent observations for
        # exact p50/p99 without a scrape round-trip.
        self._recent: list[float] = []
        self._recent_fifo: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = bisect_left(self.buckets, value)
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            insort(self._recent, value)
            self._recent_fifo.append(value)
            if len(self._recent_fifo) > RESERVOIR_SIZE:
                oldest = self._recent_fifo.pop(0)
                at = bisect_left(self._recent, oldest)
                self._recent.pop(at)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (0..1) of the recent-observation reservoir,
        or None when nothing was observed."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if not self._recent:
                return None
            index = min(
                len(self._recent) - 1, int(q * (len(self._recent) - 1) + 0.5)
            )
            return self._recent[index]

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            cumulative = 0
            for bound, count in zip(self.buckets, self._counts):
                cumulative += count
                lines.append(
                    f'{self.name}_bucket{{le="{_format_value(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(f'{self.name}_bucket{{le="+Inf"}} {self._count}')
            lines.append(f"{self.name}_sum {_format_value(self._sum)}")
            lines.append(f"{self.name}_count {self._count}")
        return "\n".join(lines)


class MetricsRegistry:
    """A named collection of metrics rendered as one /metrics payload."""

    #: Registration races with scrapes; the registry lock is dropped
    #: before any per-metric ``render`` runs (no nested metric locks).
    GUARDED = {"_metrics": "_lock"}

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _register(self, metric: Metric) -> Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name!r} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> Counter:
        metric = self._register(Counter(name, help, labels))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> Gauge:
        metric = self._register(Gauge(name, help, labels))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._register(Histogram(name, help, buckets))
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The full Prometheus text exposition (trailing newline
        included, as the format requires)."""
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        return "\n".join(m.render() for m in metrics) + "\n"


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
]
