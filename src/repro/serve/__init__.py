"""Mining-as-a-service: the HTTP/JSON serving layer.

The paper pitches query flocks as something a DBMS *offers* its users —
this package is that offering as a long-running daemon: one shared
:class:`~repro.session.MiningSession` (and its containment-aware result
cache) multiplexed across many concurrent clients with per-tenant
admission control, client-disconnect cancellation, and Prometheus
metrics.  Start one with ``repro serve`` and talk to it with
:class:`MiningClient` or ``repro query --server URL``.
"""

from .app import (
    DEFAULT_TENANT,
    HttpError,
    MiningServer,
    MiningService,
    ServerConfig,
    serve_blocking,
    server_in_thread,
)
from .client import MiningClient, ServeError
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tenants import AdmissionError, FairDispatcher, TenantPolicy

__all__ = [
    "AdmissionError",
    "Counter",
    "DEFAULT_TENANT",
    "FairDispatcher",
    "Gauge",
    "Histogram",
    "HttpError",
    "MetricsRegistry",
    "MiningClient",
    "MiningServer",
    "MiningService",
    "ServeError",
    "ServerConfig",
    "TenantPolicy",
    "serve_blocking",
    "server_in_thread",
]
