"""A thin blocking HTTP client for the mining service.

Stdlib-only (``http.client``), shared by the CLI (``repro query
--server URL``), the test suite, and the load-generator benchmark.
Each call opens one connection — the server speaks ``Connection:
close`` — so a client object is cheap, stateless between calls, and
safe to share across threads.

Usage::

    client = MiningClient("http://127.0.0.1:8321")
    client.load_relation("basket", ["BID", "item"], rows)
    result = client.mine(FLOCK_TEXT, threshold=3)
    print(result["row_count"], result["report"]["strategy_used"])
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Optional, Sequence
from urllib.parse import urlsplit

from ..errors import ReproError
from ..flocks.mining import MiningReport


class ServeError(ReproError):
    """The server answered with an error status (or unparseable JSON)."""

    def __init__(self, status: int, message: str, body: Optional[dict] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body if body is not None else {}


class MiningClient:
    """Blocking JSON client for one ``repro serve`` base URL.

    Args:
        base_url: e.g. ``http://127.0.0.1:8321``.
        tenant: tenant name sent with every mining request (the server
            applies that tenant's admission policy and budget cap).
        timeout: socket timeout in seconds for each request.
    """

    def __init__(
        self,
        base_url: str,
        tenant: Optional[str] = None,
        timeout: float = 300.0,
    ) -> None:
        parts = urlsplit(base_url if "//" in base_url else f"//{base_url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// is supported, got {base_url!r}")
        if not parts.hostname:
            raise ValueError(f"no host in server URL {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port if parts.port is not None else 80
        self.tenant = tenant
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        raw: bool = False,
    ) -> Any:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {"Connection": "close"}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            if self.tenant is not None:
                headers["X-Repro-Tenant"] = self.tenant
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
        finally:
            connection.close()
        if raw:
            if response.status != 200:
                raise ServeError(
                    response.status, data.decode("utf-8", "replace")[:500]
                )
            return data.decode("utf-8")
        try:
            decoded = json.loads(data) if data else {}
        except json.JSONDecodeError:
            raise ServeError(
                response.status,
                f"unparseable response body: {data[:200]!r}",
            ) from None
        if response.status != 200:
            message = (
                decoded.get("error", "request failed")
                if isinstance(decoded, dict)
                else "request failed"
            )
            raise ServeError(response.status, message, body=decoded)
        return decoded

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def mine(
        self,
        flock: str,
        *,
        threshold: Optional[float] = None,
        strategy: Optional[str] = None,
        backend: Optional[str] = None,
        timeout: Optional[float] = None,
        max_rows: Optional[int] = None,
        limit: Optional[int] = None,
        checkpoint: bool = False,
        resume: Optional[str] = None,
        parallelism: Optional[int] = None,
        join_order: Optional[str] = None,
        runtime_filters: Optional[bool] = None,
    ) -> dict:
        """``POST /v1/mine``: evaluate one flock; returns the response
        dict (``columns``/``rows``/``row_count``/``report``/...)."""
        payload: dict[str, Any] = {"flock": flock}
        if threshold is not None:
            payload["threshold"] = threshold
        if strategy is not None:
            payload["strategy"] = strategy
        if backend is not None:
            payload["backend"] = backend
        if timeout is not None:
            payload["timeout"] = timeout
        if max_rows is not None:
            payload["max_rows"] = max_rows
        if limit is not None:
            payload["limit"] = limit
        if checkpoint:
            payload["checkpoint"] = True
        if resume is not None:
            payload["resume"] = resume
        if parallelism is not None:
            payload["parallelism"] = parallelism
        if join_order is not None:
            payload["join_order"] = join_order
        if runtime_filters is not None:
            payload["runtime_filters"] = runtime_filters
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        return self._request("POST", "/v1/mine", payload)

    def mine_report(self, flock: str, **options: Any) -> MiningReport:
        """Like :meth:`mine`, but returns the parsed
        :class:`~repro.flocks.mining.MiningReport` alone."""
        return MiningReport.from_dict(self.mine(flock, **options)["report"])

    def load_relation(
        self,
        name: str,
        columns: Sequence[str],
        rows: Sequence[Sequence[Any]],
        mode: str = "replace",
    ) -> dict:
        """``POST /v1/data``: load (or append to) one relation."""
        return self._request(
            "POST",
            "/v1/data",
            {
                "name": name,
                "columns": list(columns),
                "rows": [list(row) for row in rows],
                "mode": mode,
            },
        )

    def run_status(self, run_id: str) -> dict:
        """``GET /v1/runs/{run_id}``."""
        return self._request("GET", f"/v1/runs/{run_id}")

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """``GET /metrics``: the raw Prometheus text payload."""
        return self._request("GET", "/metrics", raw=True)

    def metric_value(self, name: str, **labels: str) -> Optional[float]:
        """Scrape ``/metrics`` and read one sample (None when absent).

        Convenience for tests and the benchmark — a real deployment
        points Prometheus at ``/metrics`` instead.
        """
        rendered = _render_sample_name(name, labels)
        for line in self.metrics().splitlines():
            if line.startswith("#"):
                continue
            sample, _, value = line.rpartition(" ")
            if sample == rendered:
                return float(value)
        return None


def _render_sample_name(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    body = ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )
    return f"{name}{{{body}}}"


__all__ = ["MiningClient", "ServeError"]
