"""Mining-as-a-service: the asyncio HTTP/JSON front door.

The paper frames query flocks as a facility a DBMS should *offer* — "a
la carte" mining living inside a long-running service, not a batch
script.  This module is that daemon: one process-wide
:class:`~repro.session.MiningSession` (hence one shared
containment-aware result cache) multiplexed across many concurrent
clients, with per-tenant admission control
(:mod:`repro.serve.tenants`), Prometheus metrics
(:mod:`repro.serve.metrics`), and cancellation wired from client
disconnect into the guard machinery.

Endpoints (all JSON unless noted):

=============================  ========================================
``POST /v1/mine``              flock text (+ threshold/strategy/budget
                               options) → rows + MiningReport JSON
``GET /v1/runs/{run_id}``      status of one mining run (in-memory
                               registry, merged with the checkpoint
                               store's manifest when one exists)
``POST /v1/data``              load/append a relation; bumps catalog
                               versions so cache invalidation is exact
``GET /healthz``               liveness + session/queue statistics
``GET /metrics``               Prometheus text exposition
=============================  ========================================

Two layers, deliberately separable:

* :class:`MiningService` — transport-independent request handlers over
  the session/dispatcher/metrics; unit tests drive it directly;
* :class:`MiningServer` — a minimal HTTP/1.1 server on
  ``asyncio.start_server`` (stdlib only).  Mining runs on the
  dispatcher's worker threads; the event loop only parses requests and
  streams responses, and watches each connection for early EOF so an
  abandoned request cancels its evaluation instead of finishing for
  nobody.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from ..concurrency import blocking
from ..errors import (
    BudgetExceededError,
    ExecutionAborted,
    ExecutionCancelled,
    ReproError,
)
from ..flocks.flock import QueryFlock, parse_flock
from ..flocks.mining import BACKENDS, JOIN_ORDERS, STRATEGIES, MiningReport
from ..guard import CancellationToken, ResourceBudget
from ..recovery import CheckpointStore, new_run_id
from ..relational.catalog import Database
from ..relational.relation import Relation
from ..session import MiningSession, with_support_threshold
from .metrics import MetricsRegistry
from .tenants import AdmissionError, FairDispatcher, TenantPolicy

#: Tenant assumed when a request names none.
DEFAULT_TENANT = "default"

#: Registry keeps the most recent runs' records (bounded memory).
RUN_HISTORY_LIMIT = 1024

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    499: "Client Closed Request",
    500: "Internal Server Error",
}


@dataclass(frozen=True)
class ServerConfig:
    """Everything one ``repro serve`` process is configured with.

    Attributes:
        host / port: bind address (``port=0`` picks a free port).
        workers: dispatcher worker threads — the number of mining calls
            in flight at once (each call may itself use the parallel
            engine's process pool via ``parallelism``).
        tenant_budget: per-request resource cap applied to every tenant
            (requests clamp to it; they can tighten, never loosen).
        max_queued_per_tenant: bounded queue per tenant; beyond it,
            admission fails with HTTP 429.
        cache_entries / cache_rows: shared result-cache LRU bounds.
        backend / strategy / parallelism / join_order / runtime_filters:
            per-call defaults forwarded to
            :func:`repro.flocks.mining.mine` (``runtime_filters=None``
            means on exactly when the effective join order is
            ``"ues"``).
        checkpoint_path: arm ``POST /v1/mine`` ``{"checkpoint": true}``
            durability — each such run writes its step checkpoints and
            manifest to this SQLite file, and ``GET /v1/runs/{id}``
            reports manifest progress for it.
        max_response_rows: hard cap on rows returned per response
            (clients page with ``limit``).
    """

    host: str = "127.0.0.1"
    port: int = 8321
    workers: int = 2
    tenant_budget: Optional[ResourceBudget] = None
    max_queued_per_tenant: int = 16
    cache_entries: Optional[int] = 256
    cache_rows: Optional[int] = 500_000
    backend: str = "memory"
    strategy: str = "auto"
    parallelism: Optional[int] = None
    join_order: str = "greedy"
    runtime_filters: Optional[bool] = None
    checkpoint_path: Optional[str] = None
    max_response_rows: int = 10_000

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.join_order not in JOIN_ORDERS:
            raise ValueError(f"unknown join order {self.join_order!r}")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")


class HttpError(ReproError):
    """An error with a definite HTTP status (raised by handlers)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class RunRecord:
    """One mining request's lifecycle in the in-memory registry."""

    run_id: str
    tenant: str
    status: str  # queued | running | complete | aborted | failed | rejected
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    checkpointed: bool = False
    summary: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        data: dict[str, Any] = {
            "run_id": self.run_id,
            "tenant": self.tenant,
            "status": self.status,
            "submitted_unix": self.submitted_at,
        }
        if self.started_at is not None:
            data["started_unix"] = self.started_at
        if self.finished_at is not None:
            data["finished_unix"] = self.finished_at
            data["seconds"] = self.finished_at - (
                self.started_at or self.submitted_at
            )
        if self.error is not None:
            data["error"] = self.error
        if self.checkpointed:
            data["checkpointed"] = True
        if self.summary:
            data["summary"] = self.summary
        return data


class RunRegistry:
    """Thread-safe, bounded map of run_id → :class:`RunRecord`."""

    #: Lock discipline, proven by ``repro.analysis.conlint``.  Records
    #: are mutated in place by worker threads and done-callbacks, so
    #: *reads that render a record* must also happen under the lock —
    #: use :meth:`snapshot`, not ``get().to_dict()``.
    GUARDED = {"_runs": "_lock", "_order": "_lock"}

    def __init__(self, limit: int = RUN_HISTORY_LIMIT) -> None:
        self._lock = threading.Lock()
        self._runs: dict[str, RunRecord] = {}
        self._order: list[str] = []
        self._limit = limit

    def create(
        self, run_id: str, tenant: str, checkpointed: bool = False
    ) -> RunRecord:
        record = RunRecord(
            run_id=run_id,
            tenant=tenant,
            status="queued",
            submitted_at=time.time(),
            checkpointed=checkpointed,
        )
        with self._lock:
            if run_id not in self._runs:
                self._order.append(run_id)
            self._runs[run_id] = record
            while len(self._order) > self._limit:
                evicted = self._order.pop(0)
                self._runs.pop(evicted, None)
        return record

    def mark_running(self, run_id: str) -> None:
        with self._lock:
            record = self._runs.get(run_id)
            if record is not None:
                record.status = "running"
                record.started_at = time.time()

    def finish(
        self,
        run_id: str,
        status: str,
        error: Optional[str] = None,
        summary: Optional[dict] = None,
    ) -> None:
        with self._lock:
            record = self._runs.get(run_id)
            if record is None:
                return
            record.status = status
            record.finished_at = time.time()
            record.error = error
            if summary:
                record.summary = summary

    def get(self, run_id: str) -> RunRecord | None:
        with self._lock:
            return self._runs.get(run_id)

    def snapshot(self, run_id: str) -> dict | None:
        """The record rendered to a dict *under the lock* — the status
        and its timestamps are mutated together by the done-callback, so
        rendering outside the lock can see a torn record (a "complete"
        status without its ``finished_unix``)."""
        with self._lock:
            record = self._runs.get(run_id)
            return record.to_dict() if record is not None else None

    def counts(self) -> dict[str, int]:
        with self._lock:
            counts: dict[str, int] = {}
            for record in self._runs.values():
                counts[record.status] = counts.get(record.status, 0) + 1
            return counts

    def records(self) -> list[RunRecord]:
        """All retained records, oldest first."""
        with self._lock:
            return [self._runs[run_id] for run_id in self._order]


@dataclass
class _MineRequest:
    """A validated ``POST /v1/mine`` payload, ready to execute."""

    flock: QueryFlock
    strategy: str
    backend: str
    budget: Optional[ResourceBudget]
    limit: int
    checkpoint: bool
    resume: Optional[str]
    run_id: str
    parallelism: Optional[int]
    join_order: str
    runtime_filters: Optional[bool]


class MiningService:
    """Transport-independent handlers over one shared mining session.

    One instance per server process: it owns the
    :class:`~repro.session.MiningSession` (and therefore the shared
    result cache), the :class:`~repro.serve.tenants.FairDispatcher`,
    the :class:`~repro.serve.metrics.MetricsRegistry`, and the run
    registry.  The HTTP layer (or a test) calls the ``handle_*`` /
    ``submit_mine`` methods.
    """

    #: ``_db_lock`` serializes *composite* catalog operations at the
    #: service layer (replace-vs-append read-modify-write in
    #: ``handle_data``, the multi-relation read in ``health``).  Mining
    #: calls read the catalog without it — version counters make those
    #: reads safe (stale entries are invalidated exactly).
    GUARDED = {"db": "_db_lock"}

    def __init__(self, db: Database, config: ServerConfig | None = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.db = db
        self.session = MiningSession(
            db,
            max_cache_entries=self.config.cache_entries,
            max_cache_rows=self.config.cache_rows,
            backend=self.config.backend,
            parallelism=self.config.parallelism,
        )
        self.dispatcher = FairDispatcher(
            workers=self.config.workers,
            default_policy=TenantPolicy(
                budget=self.config.tenant_budget,
                max_queued=self.config.max_queued_per_tenant,
            ),
        )
        self.runs = RunRegistry()
        self.started_at = time.time()
        self._db_lock = threading.Lock()

        m = self.metrics = MetricsRegistry()
        self.m_requests = m.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint and status code",
            labels=("endpoint", "status"),
        )
        self.m_mine = m.counter(
            "repro_mine_requests_total",
            "Mining requests, by tenant and outcome",
            labels=("tenant", "outcome"),
        )
        self.m_cache_hits = m.counter(
            "repro_cache_hits_total",
            "Mine calls answered entirely from the shared result cache",
        )
        self.m_cache_misses = m.counter(
            "repro_cache_misses_total",
            "Mine calls that had to evaluate (cache miss)",
        )
        self.m_step_hits = m.counter(
            "repro_cache_step_hits_total",
            "Pre-filter plan steps served from the shared cache",
        )
        self.m_rows_saved = m.counter(
            "repro_cache_rows_saved_total",
            "Answer tuples cache hits did not have to recompute",
        )
        self.m_downgrades = m.counter(
            "repro_downgrades_total",
            "Recovery-ladder rungs descended, by kind",
            labels=("kind",),
        )
        self.m_rf_pruned = m.counter(
            "repro_runtime_filter_rows_pruned",
            "Scan rows pruned by injected runtime semi-join filters",
        )
        self.m_latency = m.histogram(
            "repro_mine_seconds",
            "Wall-clock seconds per completed mine request",
        )
        self.m_queue_depth = m.gauge(
            "repro_queue_depth", "Requests waiting for a worker"
        )
        self.m_active = m.gauge(
            "repro_active_requests", "Requests executing right now"
        )
        self.m_cache_entries = m.gauge(
            "repro_cache_entries", "Entries in the shared result cache"
        )
        self.m_cache_rows = m.gauge(
            "repro_cache_rows", "Tuples held by the shared result cache"
        )
        self.m_cache_bytes = m.gauge(
            "repro_cache_bytes",
            "Encoded flat-column bytes held by the shared result cache",
        )
        self.m_data_loads = m.counter(
            "repro_data_loads_total",
            "POST /v1/data relation loads (each bumps catalog versions)",
        )

    # ------------------------------------------------------------------
    # POST /v1/mine
    # ------------------------------------------------------------------

    def _parse_mine(self, payload: dict) -> _MineRequest:
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        text = payload.get("flock")
        if not isinstance(text, str) or not text.strip():
            raise HttpError(400, "missing required field 'flock' (text)")
        flock = parse_flock(text)
        threshold = payload.get("threshold")
        if threshold is not None:
            if not isinstance(threshold, (int, float)):
                raise HttpError(400, "'threshold' must be a number")
            flock = with_support_threshold(flock, threshold)
        strategy = payload.get("strategy", self.config.strategy)
        if strategy not in STRATEGIES:
            raise HttpError(
                400, f"unknown strategy {strategy!r}; choose {STRATEGIES}"
            )
        backend = payload.get("backend", self.config.backend)
        if backend not in BACKENDS:
            raise HttpError(
                400, f"unknown backend {backend!r}; choose {BACKENDS}"
            )
        budget = None
        timeout = payload.get("timeout")
        max_rows = payload.get("max_rows")
        max_answer = payload.get("max_answer_rows")
        if timeout is not None or max_rows is not None or max_answer is not None:
            try:
                budget = ResourceBudget(
                    seconds=None if timeout is None else float(timeout),
                    max_intermediate_rows=(
                        None if max_rows is None else int(max_rows)
                    ),
                    max_answer_rows=(
                        None if max_answer is None else int(max_answer)
                    ),
                )
            except (TypeError, ValueError) as error:
                raise HttpError(400, f"bad budget: {error}") from None
        limit = payload.get("limit", self.config.max_response_rows)
        if not isinstance(limit, int) or limit < 0:
            raise HttpError(400, "'limit' must be a non-negative integer")
        limit = min(limit, self.config.max_response_rows)
        checkpoint = bool(payload.get("checkpoint", False))
        resume = payload.get("resume")
        if resume is not None and not isinstance(resume, str):
            raise HttpError(400, "'resume' must be a run id string")
        if (checkpoint or resume) and self.config.checkpoint_path is None:
            raise HttpError(
                400,
                "this server has no checkpoint store configured "
                "(start it with --checkpoint PATH)",
            )
        if resume is not None:
            checkpoint = True
        if checkpoint:
            if backend == "sqlite":
                raise HttpError(
                    400, "checkpointed runs require the memory backend"
                )
            if strategy not in ("auto", "optimized", "stats"):
                raise HttpError(
                    400,
                    "checkpointed runs need a plan-based strategy "
                    "(auto, optimized, or stats)",
                )
        parallelism = payload.get("parallelism")
        if parallelism is not None and (
            not isinstance(parallelism, int) or parallelism < 1
        ):
            raise HttpError(400, "'parallelism' must be a positive integer")
        join_order = payload.get("join_order", self.config.join_order)
        if join_order not in JOIN_ORDERS:
            raise HttpError(
                400,
                f"unknown join_order {join_order!r}; choose {JOIN_ORDERS}",
            )
        runtime_filters = payload.get(
            "runtime_filters", self.config.runtime_filters
        )
        if runtime_filters is not None and not isinstance(
            runtime_filters, bool
        ):
            raise HttpError(400, "'runtime_filters' must be a boolean")
        run_id = resume if resume is not None else new_run_id()
        return _MineRequest(
            flock=flock,
            strategy=strategy,
            backend=backend,
            budget=budget,
            limit=limit,
            checkpoint=checkpoint,
            resume=resume,
            run_id=run_id,
            parallelism=parallelism,
            join_order=join_order,
            runtime_filters=runtime_filters,
        )

    def submit_mine(
        self,
        payload: dict,
        tenant: str = DEFAULT_TENANT,
        cancel: Optional[CancellationToken] = None,
    ) -> tuple[str, "asyncio.Future[dict] | Any"]:
        """Validate, admit, and enqueue one mining request.

        Returns ``(run_id, future)``; the future resolves to the JSON
        response dict.  Raises :class:`HttpError` on a bad payload and
        :class:`~repro.serve.tenants.AdmissionError` when the tenant's
        queue is full.  All outcome accounting (registry + metrics)
        happens exactly once, in the future's done-callback — whether
        the job ran, failed, or was dropped while queued.
        """
        try:
            request = self._parse_mine(payload)
        except ReproError as error:
            self.m_mine.inc(tenant=tenant, outcome="invalid")
            if isinstance(error, HttpError):
                raise
            raise HttpError(400, str(error)) from error
        self.runs.create(run_id=request.run_id, tenant=tenant,
                         checkpointed=request.checkpoint)

        def job() -> dict:
            self.runs.mark_running(request.run_id)
            self.m_active.inc()
            try:
                return self._execute_mine(request, tenant, cancel)
            finally:
                self.m_active.dec()

        try:
            future = self.dispatcher.submit(tenant, job, cancel=cancel)
        except AdmissionError:
            self.runs.finish(
                request.run_id, "rejected", error="tenant queue full"
            )
            self.m_mine.inc(tenant=tenant, outcome="rejected")
            raise
        future.add_done_callback(
            lambda f: self._finalize(request.run_id, tenant, f)
        )
        return request.run_id, future

    def _execute_mine(
        self,
        request: _MineRequest,
        tenant: str,
        cancel: Optional[CancellationToken],
    ) -> dict:
        """Runs on a dispatcher worker thread."""
        policy = self.dispatcher.policy(tenant)
        budget = policy.effective_budget(request.budget)
        started = time.perf_counter()
        relation, report = self.session.mine(
            request.flock,
            strategy=request.strategy,
            budget=budget,
            cancel=cancel,
            backend=request.backend,
            parallelism=request.parallelism,
            join_order=request.join_order,
            runtime_filters=request.runtime_filters,
            checkpoint=(
                self.config.checkpoint_path if request.checkpoint else None
            ),
            run_id=request.run_id if request.checkpoint else None,
            resume=request.resume,
        )
        seconds = time.perf_counter() - started
        rows = sorted(relation.tuples, key=repr)
        truncated = len(rows) > request.limit
        return {
            "run_id": request.run_id,
            "status": "complete",
            "columns": list(relation.columns),
            "rows": [list(row) for row in rows[: request.limit]],
            "row_count": len(relation),
            "truncated": truncated,
            "seconds": seconds,
            "report": report.to_dict(),
        }

    def _finalize(self, run_id: str, tenant: str, future: Any) -> None:
        """Done-callback: single point of truth for outcome accounting."""
        error = future.exception()
        if error is None:
            result = future.result()
            report = result.get("report", {})
            self.runs.finish(
                run_id,
                "complete",
                summary={
                    "strategy_used": report.get("strategy_used"),
                    "row_count": result.get("row_count"),
                    "seconds": result.get("seconds"),
                    "cache_hits": report.get("cache_hits"),
                    "cache_step_hits": report.get("cache_step_hits"),
                },
            )
            self.m_mine.inc(tenant=tenant, outcome="complete")
            self.m_latency.observe(result.get("seconds", 0.0))
            self.m_cache_hits.inc(report.get("cache_hits", 0))
            self.m_cache_misses.inc(report.get("cache_misses", 0))
            self.m_step_hits.inc(report.get("cache_step_hits", 0))
            self.m_rows_saved.inc(report.get("rows_saved", 0))
            self.m_rf_pruned.inc(
                report.get("runtime_filter_rows_pruned", 0)
            )
            for downgrade in report.get("downgrades", ()):
                self.m_downgrades.inc(kind=downgrade.get("kind", "unknown"))
        elif isinstance(error, ExecutionAborted):
            self.runs.finish(run_id, "aborted", error=_one_line(error))
            self.m_mine.inc(tenant=tenant, outcome="aborted")
        else:
            self.runs.finish(run_id, "failed", error=_one_line(error))
            self.m_mine.inc(tenant=tenant, outcome="failed")

    # ------------------------------------------------------------------
    # POST /v1/data
    # ------------------------------------------------------------------

    def handle_data(self, payload: dict) -> dict:
        """Load or append one relation; bumps its catalog version so
        every cache entry derived from it is invalidated exactly."""
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        name = payload.get("name")
        if not isinstance(name, str) or not name.isidentifier():
            raise HttpError(400, "'name' must be an identifier string")
        columns = payload.get("columns")
        rows = payload.get("rows")
        if not isinstance(columns, list) or not all(
            isinstance(c, str) for c in columns
        ):
            raise HttpError(400, "'columns' must be a list of strings")
        if not isinstance(rows, list):
            raise HttpError(400, "'rows' must be a list of rows")
        mode = payload.get("mode", "replace")
        if mode not in ("replace", "append"):
            raise HttpError(400, "'mode' must be 'replace' or 'append'")
        try:
            tuples = [tuple(row) for row in rows]
        except TypeError:
            raise HttpError(400, "'rows' must be a list of rows") from None
        with self._db_lock:
            if mode == "append" and name in self.db:
                existing = self.db.get(name)
                if tuple(existing.columns) != tuple(columns):
                    raise HttpError(
                        400,
                        f"append columns {tuple(columns)} do not match "
                        f"existing {existing.columns}",
                    )
                merged = set(existing.tuples) | set(tuples)
                relation = Relation(name, columns, merged)
            else:
                try:
                    relation = Relation(name, columns, tuples)
                except ReproError as error:
                    raise HttpError(400, str(error)) from error
            self.db.add(relation)
            version = self.db.version(name)
        invalidated = self.session.invalidate_stale()
        self.m_data_loads.inc()
        return {
            "name": name,
            "rows": len(relation),
            "version": version,
            "mode": mode,
            "cache_entries_invalidated": invalidated,
        }

    # ------------------------------------------------------------------
    # GET /v1/runs/{run_id}
    # ------------------------------------------------------------------

    @blocking
    def run_status(self, run_id: str) -> dict:
        """In-memory run record merged with the checkpoint manifest.

        ``@blocking``: opens the checkpoint store (synchronous SQLite),
        so the HTTP layer dispatches this through ``asyncio.to_thread``.
        """
        data = self.runs.snapshot(run_id)
        manifest_status = None
        if self.config.checkpoint_path is not None:
            # A fresh store per probe: SQLite connections are
            # thread-bound, and status probes are rare and cheap.
            try:
                with CheckpointStore(self.config.checkpoint_path) as store:
                    manifest_status = store.run_status(run_id)
            except ReproError:
                manifest_status = None
        if data is None and manifest_status is None:
            raise HttpError(404, f"unknown run {run_id!r}")
        if data is None:
            data = {"run_id": run_id, "status": manifest_status["status"]}
        if manifest_status is not None:
            data["checkpoint"] = manifest_status
        return data

    # ------------------------------------------------------------------
    # GET /healthz and /metrics
    # ------------------------------------------------------------------

    def health(self) -> dict:
        stats = self.session.stats()
        p50 = self.m_latency.quantile(0.50)
        p99 = self.m_latency.quantile(0.99)
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
            "workers": len(self.dispatcher._threads),
            "queue_depth": self.dispatcher.queue_depth(),
            "active": self.dispatcher.active(),
            "runs": self.runs.counts(),
            "session": {
                "queries": stats.queries,
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
                "bound_hits": stats.bound_hits,
                "entries": stats.entries,
                "cached_rows": stats.cached_rows,
                "invalidated": stats.invalidated,
                "evicted": stats.evicted,
            },
            "latency": {
                "p50_ms": None if p50 is None else p50 * 1e3,
                "p99_ms": None if p99 is None else p99 * 1e3,
            },
            "tenants": self.dispatcher.tenant_stats(),
            "relations": self._relation_sizes(),
        }

    def _relation_sizes(self) -> dict[str, int]:
        # Under _db_lock so a concurrent handle_data replace cannot make
        # names() and get() disagree mid-comprehension.
        with self._db_lock:
            return {
                name: len(self.db.get(name)) for name in self.db.names()
            }

    def metrics_text(self) -> str:
        # Refresh the sampled gauges at scrape time.
        self.m_queue_depth.set(self.dispatcher.queue_depth())
        self.m_cache_entries.set(len(self.session.cache))
        self.m_cache_rows.set(self.session.cache.total_rows())
        self.m_cache_bytes.set(self.session.cache.total_bytes())
        return self.metrics.render()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        self.dispatcher.close()
        self.session.close()

    def __enter__(self) -> "MiningService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _one_line(error: BaseException) -> str:
    return f"{type(error).__name__}: {error}".split("\n")[0]


# ======================================================================
# The asyncio HTTP layer
# ======================================================================


@dataclass
class _Request:
    method: str
    path: str
    headers: dict[str, str]
    body: bytes

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            data = json.loads(self.body)
        except json.JSONDecodeError as error:
            raise HttpError(400, f"invalid JSON body: {error}") from None
        if not isinstance(data, dict):
            raise HttpError(400, "JSON body must be an object")
        return data


class MiningServer:
    """HTTP/1.1 on ``asyncio.start_server``, one request per connection.

    ``Connection: close`` semantics keep disconnect detection simple:
    after the request is read, any further read on the socket resolves
    only at EOF — i.e. the client hung up — which is exactly the signal
    that cancels an in-flight mining call.
    """

    def __init__(
        self,
        service: MiningService,
        host: str | None = None,
        port: int | None = None,
    ) -> None:
        self.service = service
        self.host = host if host is not None else service.config.host
        self.port = port if port is not None else service.config.port
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request plumbing ----------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> _Request | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        except asyncio.LimitOverrunError:
            raise HttpError(413, "request head too large") from None
        if len(head) > _MAX_HEADER_BYTES:
            raise HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise HttpError(413, f"body of {length} bytes is too large")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return _Request(method=method, path=path, headers=headers, body=body)

    @staticmethod
    def _encode_response(
        status: int, body: bytes, content_type: str
    ) -> bytes:
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + body

    @staticmethod
    def _json_response(status: int, payload: dict) -> tuple[int, bytes, str]:
        body = json.dumps(payload).encode("utf-8")
        return status, body, "application/json"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        endpoint = "unknown"
        try:
            try:
                request = await self._read_request(reader)
            except HttpError as error:
                await self._write(
                    writer,
                    *self._json_response(
                        error.status, {"error": str(error)}
                    ),
                )
                return
            if request is None:  # client vanished before sending anything
                return
            endpoint = self._endpoint_label(request)
            try:
                response = await self._route(request, reader)
            except HttpError as error:
                response = self._json_response(
                    error.status, {"error": str(error)}
                )
            except AdmissionError as error:
                response = self._json_response(
                    429,
                    {
                        "error": str(error),
                        "tenant": error.tenant,
                        "limit": error.limit,
                    },
                )
            except ReproError as error:
                response = self._json_response(400, {"error": str(error)})
            except Exception as error:  # noqa: BLE001 - last-resort boundary
                response = self._json_response(
                    500, {"error": _one_line(error)}
                )
            if response is None:
                # Client disconnected mid-mine; nothing left to write.
                self.service.m_requests.inc(
                    endpoint=endpoint, status="499"
                )
                return
            status, body, content_type = response
            self.service.m_requests.inc(
                endpoint=endpoint, status=str(status)
            )
            await self._write(writer, status, body, content_type)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
    ) -> None:
        try:
            writer.write(self._encode_response(status, body, content_type))
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    @staticmethod
    def _endpoint_label(request: _Request) -> str:
        if request.path.startswith("/v1/runs/"):
            return "/v1/runs/{run_id}"
        return request.path

    # -- routing --------------------------------------------------------

    async def _route(
        self, request: _Request, reader: asyncio.StreamReader
    ) -> tuple[int, bytes, str] | None:
        service = self.service
        if request.path == "/healthz":
            if request.method != "GET":
                raise HttpError(405, "use GET")
            return self._json_response(200, service.health())
        if request.path == "/metrics":
            if request.method != "GET":
                raise HttpError(405, "use GET")
            body = service.metrics_text().encode("utf-8")
            return 200, body, "text/plain; version=0.0.4; charset=utf-8"
        if request.path == "/v1/mine":
            if request.method != "POST":
                raise HttpError(405, "use POST")
            return await self._route_mine(request, reader)
        if request.path == "/v1/data":
            if request.method != "POST":
                raise HttpError(405, "use POST")
            return self._json_response(
                200, service.handle_data(request.json())
            )
        if request.path.startswith("/v1/runs/"):
            if request.method != "GET":
                raise HttpError(405, "use GET")
            run_id = request.path[len("/v1/runs/"):]
            # run_status is @blocking (synchronous SQLite manifest
            # probe): it must not run on the event loop.
            status = await asyncio.to_thread(service.run_status, run_id)
            return self._json_response(200, status)
        raise HttpError(404, f"no route for {request.method} {request.path}")

    async def _route_mine(
        self, request: _Request, reader: asyncio.StreamReader
    ) -> tuple[int, bytes, str] | None:
        payload = request.json()
        tenant = payload.get("tenant") or request.headers.get(
            "x-repro-tenant", DEFAULT_TENANT
        )
        if not isinstance(tenant, str) or not tenant:
            raise HttpError(400, "'tenant' must be a non-empty string")
        cancel = CancellationToken()
        run_id, future = self.service.submit_mine(
            payload, tenant=tenant, cancel=cancel
        )
        job = asyncio.ensure_future(asyncio.wrap_future(future))
        watchdog = asyncio.ensure_future(reader.read(1))
        try:
            while True:
                done, _pending = await asyncio.wait(
                    {job, watchdog}, return_when=asyncio.FIRST_COMPLETED
                )
                if job in done:
                    break
                # The connection watcher fired first.  EOF means the
                # client hung up: cancel the evaluation and wait for the
                # clean abort.  Stray pipelined bytes just re-arm it.
                data = watchdog.result()
                if data == b"":
                    cancel.cancel()
                    try:
                        await job
                    except BaseException:  # noqa: BLE001 - recorded by _finalize
                        pass
                    return None
                watchdog = asyncio.ensure_future(reader.read(1))
        finally:
            if not watchdog.done():
                watchdog.cancel()
        try:
            result = job.result()
        except BudgetExceededError as error:
            return self._json_response(
                408,
                {"error": str(error).split("\n")[0], "run_id": run_id,
                 "status": "aborted"},
            )
        except ExecutionCancelled as error:
            return self._json_response(
                499,
                {"error": str(error).split("\n")[0], "run_id": run_id,
                 "status": "aborted"},
            )
        except ReproError as error:
            return self._json_response(
                400,
                {"error": str(error).split("\n")[0], "run_id": run_id,
                 "status": "failed"},
            )
        return self._json_response(200, result)


# ======================================================================
# Entry points
# ======================================================================


def serve_blocking(service: MiningService, *, ready: Callable[[str], None] | None = None) -> None:
    """Run the server on the current thread until interrupted (the
    ``repro serve`` CLI path)."""

    async def main() -> None:
        server = MiningServer(service)
        await server.start()
        if ready is not None:
            ready(server.address)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()


@contextmanager
def server_in_thread(
    service: MiningService,
    host: str | None = None,
    port: int | None = 0,
) -> Iterator[MiningServer]:
    """Run a :class:`MiningServer` on a background thread (tests, the
    load benchmark, and notebook use).  Yields the started server —
    ``server.address`` is the base URL — and tears everything down on
    exit (the service included)."""
    loop = asyncio.new_event_loop()
    server = MiningServer(service, host=host, port=port)
    started = threading.Event()
    failure: list[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # noqa: BLE001 - surfaced to caller
            failure.append(error)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            loop.close()

    thread = threading.Thread(
        target=run, name="repro-serve-loop", daemon=True
    )
    thread.start()
    started.wait(timeout=30)
    if failure:
        raise failure[0]
    try:
        yield server
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        service.close()


__all__ = [
    "DEFAULT_TENANT",
    "HttpError",
    "MiningServer",
    "MiningService",
    "RunRecord",
    "RunRegistry",
    "ServerConfig",
    "serve_blocking",
    "server_in_thread",
]
