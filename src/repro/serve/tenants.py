"""Multi-tenant admission control and fair dispatch.

One ``repro serve`` process multiplexes many clients over one shared
session/cache, so a single greedy tenant must not be able to starve the
rest or exhaust the process.  This layer provides the three mechanisms:

* **admission control** — each tenant has a :class:`TenantPolicy`: a
  per-request :class:`~repro.guard.ResourceBudget` cap (request budgets
  are clamped to it limit-by-limit via
  :meth:`~repro.guard.ResourceBudget.clamp`, so a client can tighten but
  never loosen the server-side cap) and a bounded request queue —
  a full queue rejects immediately with :class:`AdmissionError`
  (HTTP 429 at the app layer) instead of buffering without bound;
* **fair dispatch** — queued requests drain onto a shared pool of
  worker threads in round-robin order *per tenant*: each scheduling
  decision walks the tenant ring from just past the previously served
  tenant, so K tenants with deep queues each get ~1/K of the workers no
  matter who bursts first;
* **cancellation** — every request carries a
  :class:`~repro.guard.CancellationToken`.  The app layer cancels it
  when the client disconnects; a queued job whose token is already
  cancelled is dropped at dispatch time (releasing its queue slot
  without burning a worker), and a running job aborts at its next guard
  checkpoint.

The dispatcher is transport-agnostic: it runs submitted zero-argument
callables and resolves :class:`concurrent.futures.Future` objects, so
the asyncio app layer awaits them via ``asyncio.wrap_future`` and tests
drive it directly with plain threads.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..concurrency import requires
from ..errors import ExecutionCancelled, ReproError
from ..guard import CancellationToken, ResourceBudget


class AdmissionError(ReproError):
    """A request was refused at the door: the tenant's queue is full.

    Carries the tenant name and its queue bound so the app layer can
    render a useful 429 body.
    """

    def __init__(self, message: str, *, tenant: str = "", limit: int = 0) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.limit = limit


@dataclass(frozen=True)
class TenantPolicy:
    """Server-side caps for one tenant.

    Attributes:
        budget: per-request resource cap; a request's own budget is
            clamped to this (limit-wise minimum), so the effective
            budget honours both.  ``None`` leaves requests unbounded.
        max_queued: bound on requests waiting or running for this
            tenant; admission beyond it raises :class:`AdmissionError`.
    """

    budget: Optional[ResourceBudget] = None
    max_queued: int = 16

    def __post_init__(self) -> None:
        if self.max_queued < 1:
            raise ValueError("max_queued must be at least 1")

    def effective_budget(
        self, requested: Optional[ResourceBudget]
    ) -> Optional[ResourceBudget]:
        """The budget a request actually runs under: the tenant cap
        tightened by whatever the request asked for."""
        if self.budget is None:
            return requested
        return self.budget.clamp(requested)


@dataclass
class _Job:
    """One queued unit of work."""

    job_id: int
    tenant: str
    fn: Callable[[], object]
    cancel: Optional[CancellationToken]
    future: "Future[object]" = field(default_factory=Future)


@dataclass
class _TenantState:
    policy: TenantPolicy
    queue: "deque[_Job]" = field(default_factory=deque)
    #: Queued + running jobs — the unit admission control bounds.
    occupancy: int = 0
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    cancelled: int = 0


class FairDispatcher:
    """A bounded, tenant-fair queue over a shared worker-thread pool.

    Args:
        workers: worker threads executing jobs (the mining calls
            themselves may additionally use the process-pool parallel
            engine; these threads are the *concurrency* of the server,
            the parallel engine is the *parallelism* of one call).
        default_policy: policy applied to tenants not explicitly
            registered via :meth:`set_policy`.
    """

    #: Lock discipline, proven by ``repro.analysis.conlint``: every
    #: scheduling structure moves under ``_lock`` (``_work_ready`` is a
    #: Condition *on that same lock*, so waiting workers and submitters
    #: serialize on one mutex).
    GUARDED = {
        "_tenants": "_lock",
        "_ring_position": "_lock",
        "_active": "_lock",
        "_closed": "_lock",
    }

    def __init__(
        self,
        workers: int = 2,
        default_policy: TenantPolicy | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.default_policy = (
            default_policy if default_policy is not None else TenantPolicy()
        )
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        # Tenant ring in first-seen order; _next_index round-robins it.
        self._tenants: "OrderedDict[str, _TenantState]" = OrderedDict()
        self._ring_position = 0
        self._job_ids = itertools.count(1)
        self._closed = False
        self._active = 0
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission (event-loop side)
    # ------------------------------------------------------------------

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                self._tenants[tenant] = _TenantState(policy=policy)
            else:
                state.policy = policy

    def policy(self, tenant: str) -> TenantPolicy:
        with self._lock:
            return self._state(tenant).policy

    @requires("_lock")
    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(policy=self.default_policy)
            self._tenants[tenant] = state
        return state

    def submit(
        self,
        tenant: str,
        fn: Callable[[], object],
        cancel: Optional[CancellationToken] = None,
    ) -> "Future[object]":
        """Enqueue ``fn`` for ``tenant``; returns the future its result
        (or exception) resolves.  Raises :class:`AdmissionError` when
        the tenant's queue is at capacity, and ``RuntimeError`` after
        :meth:`close`."""
        with self._lock:
            if self._closed:
                raise RuntimeError("dispatcher is closed")
            state = self._state(tenant)
            if state.occupancy >= state.policy.max_queued:
                state.rejected += 1
                raise AdmissionError(
                    f"tenant {tenant!r} has {state.occupancy} request(s) "
                    f"queued or running, at its limit of "
                    f"{state.policy.max_queued}",
                    tenant=tenant,
                    limit=state.policy.max_queued,
                )
            job = _Job(
                job_id=next(self._job_ids),
                tenant=tenant,
                fn=fn,
                cancel=cancel,
            )
            state.queue.append(job)
            state.occupancy += 1
            state.submitted += 1
            self._work_ready.notify()
            return job.future

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    @requires("_lock")
    def _next_job(self) -> _Job | None:
        """Pop the next job in per-tenant round-robin order (caller
        holds the lock).  Returns None when every queue is empty."""
        names = list(self._tenants)
        if not names:
            return None
        count = len(names)
        for offset in range(count):
            index = (self._ring_position + offset) % count
            state = self._tenants[names[index]]
            if state.queue:
                # Advance the ring past the tenant we just served so the
                # next decision starts with its successor.
                self._ring_position = (index + 1) % count
                return state.queue.popleft()
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._work_ready:
                job = self._next_job()
                while job is None and not self._closed:
                    self._work_ready.wait()
                    job = self._next_job()
                if job is None:  # closed and drained
                    return
                self._active += 1
            try:
                self._run_job(job)
            finally:
                with self._lock:
                    self._active -= 1
                    state = self._tenants[job.tenant]
                    state.occupancy -= 1
                    state.completed += 1

    def _run_job(self, job: _Job) -> None:
        if job.cancel is not None and job.cancel.cancelled:
            # The client went away while the job sat in the queue: drop
            # it without burning a worker on a doomed evaluation.
            with self._lock:
                self._tenants[job.tenant].cancelled += 1
            job.future.set_exception(
                ExecutionCancelled(
                    "request cancelled while queued (client disconnected)"
                )
            )
            return
        if not job.future.set_running_or_notify_cancel():
            return  # future was cancelled through the Future API
        try:
            result = job.fn()
        except BaseException as error:
            if isinstance(error, ExecutionCancelled):
                with self._lock:
                    self._tenants[job.tenant].cancelled += 1
            job.future.set_exception(error)
        else:
            job.future.set_result(result)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def queue_depth(self, tenant: str | None = None) -> int:
        """Jobs waiting (not yet running) — one tenant's or everyone's."""
        with self._lock:
            if tenant is not None:
                state = self._tenants.get(tenant)
                return len(state.queue) if state is not None else 0
            return sum(len(s.queue) for s in self._tenants.values())

    def active(self) -> int:
        """Jobs currently executing on a worker."""
        with self._lock:
            return self._active

    def tenant_stats(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {
                name: {
                    "queued": len(state.queue),
                    "occupancy": state.occupancy,
                    "submitted": state.submitted,
                    "completed": state.completed,
                    "rejected": state.rejected,
                    "cancelled": state.cancelled,
                    "max_queued": state.policy.max_queued,
                }
                for name, state in self._tenants.items()
            }

    def close(self, wait: bool = True) -> None:
        """Stop accepting work; drain queues, then stop the workers."""
        with self._work_ready:
            if self._closed:
                return
            self._closed = True
            self._work_ready.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=30)

    def __enter__(self) -> "FairDispatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "AdmissionError",
    "FairDispatcher",
    "TenantPolicy",
]
