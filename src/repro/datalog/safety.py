"""Safety analysis for extended conjunctive queries (paper Sections 3.2–3.3).

A plain conjunctive query is *safe* when every head variable also appears
in the body.  With negation and arithmetic, the paper (following
[UW97]) states three conditions, all of which must hold:

1. every variable that appears in the **head** must appear in a
   nonnegated, nonarithmetic subgoal of the body;
2. every variable that appears in a **negated** subgoal must appear in a
   nonnegated, nonarithmetic subgoal of the body;
3. every variable that appears in an **arithmetic** subgoal must appear
   in a nonnegated, nonarithmetic subgoal of the body.

"Parameters are variables, not constants, as far as the above safety
conditions are concerned" — they cannot occur in the head (so rule 1
never fires for them), but rules 2 and 3 apply to parameters exactly as
to explicit variables.

Only safe subqueries may serve as FILTER steps (Section 4.2 rule 3c):
an unsafe subquery would define an infinite head relation and cannot
upper-bound anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import SafetyError
from .atoms import Comparison, RelationalAtom
from .query import ConjunctiveQuery, FlockQuery, UnionQuery
from .terms import BindableTerm, Variable


class SafetyRule(Enum):
    """Which of the three safety conditions a violation falls under."""

    HEAD_VARIABLE = 1
    NEGATED_SUBGOAL = 2
    ARITHMETIC_SUBGOAL = 3


@dataclass(frozen=True, slots=True)
class SafetyViolation:
    """One unsatisfied safety condition: ``term`` lacks a positive,
    relational binding required by ``rule``."""

    rule: SafetyRule
    term: BindableTerm
    context: str

    def __str__(self) -> str:
        return (
            f"rule {self.rule.value}: {self.term} in {self.context} does not "
            "appear in any nonnegated, nonarithmetic subgoal"
        )


@dataclass(frozen=True)
class SafetyReport:
    """The outcome of a safety check: safe iff no violations.

    ``witnesses`` pairs every positively bound term with the first
    nonnegated, nonarithmetic subgoal that binds it — the constructive
    half of the check.  A certificate carrying this report can be
    re-validated without re-deriving the bound set
    (:func:`verify_safety_report`).
    """

    query: ConjunctiveQuery
    violations: tuple[SafetyViolation, ...] = field(default_factory=tuple)
    witnesses: tuple[tuple[BindableTerm, RelationalAtom], ...] = ()

    @property
    def is_safe(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.is_safe


def positive_bound_terms(query: ConjunctiveQuery) -> frozenset[BindableTerm]:
    """Variables and parameters bound by some positive relational subgoal.

    These are the "range restricted" terms: anything outside this set
    ranges over an infinite domain.
    """
    return frozenset(binding_witnesses(query))


def binding_witnesses(
    query: ConjunctiveQuery,
) -> dict[BindableTerm, RelationalAtom]:
    """For every positively bound term, the first positive relational
    subgoal that binds it — the explicit witness the safety conditions
    ask for ("appears in a nonnegated, nonarithmetic subgoal")."""
    bound: dict[BindableTerm, RelationalAtom] = {}
    for sg in query.body:
        if isinstance(sg, RelationalAtom) and not sg.negated:
            for term in sg.bindable_terms():
                bound.setdefault(term, sg)
    return bound


def check_safety(query: ConjunctiveQuery) -> SafetyReport:
    """Evaluate all three safety conditions and report every violation."""
    witnesses = binding_witnesses(query)
    bound = frozenset(witnesses)
    violations: list[SafetyViolation] = []

    for term in query.head_terms:
        if isinstance(term, Variable) and term not in bound:
            violations.append(
                SafetyViolation(
                    SafetyRule.HEAD_VARIABLE, term, f"head {query.head_name}"
                )
            )

    for sg in query.body:
        if isinstance(sg, RelationalAtom) and sg.negated:
            for term in sg.bindable_terms():
                if term not in bound:
                    violations.append(
                        SafetyViolation(
                            SafetyRule.NEGATED_SUBGOAL, term, str(sg)
                        )
                    )
        elif isinstance(sg, Comparison):
            for term in sg.bindable_terms():
                if term not in bound:
                    violations.append(
                        SafetyViolation(
                            SafetyRule.ARITHMETIC_SUBGOAL, term, str(sg)
                        )
                    )

    # De-duplicate while preserving first-seen order (a term may violate
    # the same rule in several subgoals; one report per (rule, term,
    # context) is already distinct, so nothing further needed).
    return SafetyReport(
        query,
        tuple(violations),
        tuple(sorted(witnesses.items(), key=lambda kv: str(kv[0]))),
    )


def verify_safety_report(report: SafetyReport) -> bool:
    """Re-check a :class:`SafetyReport` independently of how it was made.

    Confirms (a) every recorded witness really is a nonnegated,
    nonarithmetic subgoal of the query binding the recorded term, and
    (b) a fresh evaluation of the three conditions over the witnessed
    bound set reproduces exactly the recorded violations.
    """
    query = report.query
    positives = {
        sg for sg in query.body
        if isinstance(sg, RelationalAtom) and not sg.negated
    }
    for term, sg in report.witnesses:
        if sg not in positives or term not in sg.bindable_terms():
            return False
    fresh = check_safety(query)
    return (
        frozenset(fresh.violations) == frozenset(report.violations)
        and frozenset(t for t, _ in fresh.witnesses)
        == frozenset(t for t, _ in report.witnesses)
    )


def safety_diagnostics(report: SafetyReport, location: str | None = None):
    """The report's violations as structured diagnostics.

    One ``safety-rule-{1,2,3}`` error per violation (matching the
    paper's three safety conditions), tagged with ``location`` (a rule
    label or plan-step name).
    """
    from ..analysis.diagnostics import Diagnostic, DiagnosticReport, Severity

    codes = {
        SafetyRule.HEAD_VARIABLE: "safety-rule-1",
        SafetyRule.NEGATED_SUBGOAL: "safety-rule-2",
        SafetyRule.ARITHMETIC_SUBGOAL: "safety-rule-3",
    }
    return DiagnosticReport(
        tuple(
            Diagnostic(
                codes[v.rule],
                Severity.ERROR,
                str(v),
                location=location,
                hint=f"bind {v.term} in a positive relational subgoal",
            )
            for v in report.violations
        )
    )


def is_safe(query: FlockQuery) -> bool:
    """``True`` iff the query (every rule, for a union) is safe."""
    if isinstance(query, UnionQuery):
        return all(check_safety(rule).is_safe for rule in query.rules)
    return check_safety(query).is_safe


def assert_safe(query: FlockQuery) -> None:
    """Raise :class:`SafetyError` describing all violations if unsafe."""
    if isinstance(query, UnionQuery):
        for rule in query.rules:
            assert_safe(rule)
        return
    report = check_safety(query)
    if not report.is_safe:
        details = "; ".join(str(v) for v in report.violations)
        raise SafetyError(f"unsafe query {query}: {details}")
