"""Subgoals (atoms) of the extended conjunctive queries of Section 2.3.

The paper extends plain conjunctive queries with exactly two features:

1. **negated subgoals** — ``NOT causes(D, $s)``;
2. **arithmetic subgoals** — comparisons such as ``$1 < $2`` between two
   terms.

A body is a list of subgoals; a :class:`RelationalAtom` may be positive
or negated, and a :class:`Comparison` carries one of the six standard
comparison operators.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterable, Union

from .terms import (
    BindableTerm,
    Constant,
    Parameter,
    Term,
    Variable,
    is_bindable,
    make_term,
)


@dataclass(frozen=True, slots=True)
class RelationalAtom:
    """A relational subgoal ``p(t1, ..., tk)``, optionally negated.

    ``negated=True`` renders as ``NOT p(...)`` and is evaluated as an
    anti-join (set difference on the bound columns) by the relational
    engine.
    """

    predicate: str
    terms: tuple[Term, ...]
    negated: bool = False

    def __post_init__(self) -> None:
        if not self.predicate:
            raise ValueError("predicate name must be non-empty")

    @property
    def arity(self) -> int:
        return len(self.terms)

    def bindable_terms(self) -> tuple[BindableTerm, ...]:
        """Variables and parameters among the arguments, in order, with
        duplicates preserved."""
        return tuple(t for t in self.terms if is_bindable(t))

    def variables(self) -> frozenset[Variable]:
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def parameters(self) -> frozenset[Parameter]:
        return frozenset(t for t in self.terms if isinstance(t, Parameter))

    def negate(self) -> "RelationalAtom":
        """A copy of this atom with the opposite polarity."""
        return RelationalAtom(self.predicate, self.terms, not self.negated)

    def with_positive_polarity(self) -> "RelationalAtom":
        if not self.negated:
            return self
        return RelationalAtom(self.predicate, self.terms, False)

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        body = f"{self.predicate}({args})"
        return f"NOT {body}" if self.negated else body


class ComparisonOp(Enum):
    """The comparison operators admitted in arithmetic subgoals."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "="
    NE = "!="

    @property
    def fn(self) -> Callable[[object, object], bool]:
        return _OP_FUNCTIONS[self]

    def flipped(self) -> "ComparisonOp":
        """The operator with its operands swapped: ``a < b`` iff ``b > a``."""
        return _OP_FLIPPED[self]

    @classmethod
    def from_symbol(cls, symbol: str) -> "ComparisonOp":
        normalized = {"==": "=", "<>": "!="}.get(symbol, symbol)
        for op in cls:
            if op.value == normalized:
                return op
        raise ValueError(f"unknown comparison operator {symbol!r}")


_OP_FUNCTIONS: dict[ComparisonOp, Callable[[object, object], bool]] = {
    ComparisonOp.LT: operator.lt,
    ComparisonOp.LE: operator.le,
    ComparisonOp.GT: operator.gt,
    ComparisonOp.GE: operator.ge,
    ComparisonOp.EQ: operator.eq,
    ComparisonOp.NE: operator.ne,
}

_OP_FLIPPED: dict[ComparisonOp, ComparisonOp] = {
    ComparisonOp.LT: ComparisonOp.GT,
    ComparisonOp.LE: ComparisonOp.GE,
    ComparisonOp.GT: ComparisonOp.LT,
    ComparisonOp.GE: ComparisonOp.LE,
    ComparisonOp.EQ: ComparisonOp.EQ,
    ComparisonOp.NE: ComparisonOp.NE,
}


@dataclass(frozen=True, slots=True)
class Comparison:
    """An arithmetic subgoal ``left op right``, e.g. ``$1 < $2``."""

    left: Term
    op: ComparisonOp
    right: Term

    def bindable_terms(self) -> tuple[BindableTerm, ...]:
        return tuple(t for t in (self.left, self.right) if is_bindable(t))

    def variables(self) -> frozenset[Variable]:
        return frozenset(
            t for t in (self.left, self.right) if isinstance(t, Variable)
        )

    def parameters(self) -> frozenset[Parameter]:
        return frozenset(
            t for t in (self.left, self.right) if isinstance(t, Parameter)
        )

    def evaluate(self, binding: dict[BindableTerm, object]) -> bool:
        """Apply the comparison under a binding of its bindable terms.

        Raises ``KeyError`` if a variable/parameter is unbound — callers
        (the evaluator) guarantee safety before evaluation, so an unbound
        term here is a programming error, not a user error.
        """
        left = self._resolve(self.left, binding)
        right = self._resolve(self.right, binding)
        return self.op.fn(left, right)

    @staticmethod
    def _resolve(term: Term, binding: dict[BindableTerm, object]) -> object:
        if isinstance(term, Constant):
            return term.value
        return binding[term]

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


#: A subgoal of an extended conjunctive query.
Subgoal = Union[RelationalAtom, Comparison]


def atom(predicate: str, *raw_terms: Union[str, int, float, Term]) -> RelationalAtom:
    """Convenience constructor: ``atom("baskets", "B", "$1")``.

    Term strings are coerced per :func:`repro.datalog.terms.make_term`.
    """
    return RelationalAtom(predicate, tuple(make_term(t) for t in raw_terms))


def negated(predicate: str, *raw_terms: Union[str, int, float, Term]) -> RelationalAtom:
    """Convenience constructor for a negated subgoal:
    ``negated("causes", "D", "$s")`` is ``NOT causes(D, $s)``."""
    return RelationalAtom(
        predicate, tuple(make_term(t) for t in raw_terms), negated=True
    )


def comparison(
    left: Union[str, int, float, Term],
    op: Union[str, ComparisonOp],
    right: Union[str, int, float, Term],
) -> Comparison:
    """Convenience constructor: ``comparison("$1", "<", "$2")``."""
    if isinstance(op, str):
        op = ComparisonOp.from_symbol(op)
    return Comparison(make_term(left), op, make_term(right))


def subgoal_terms(subgoals: Iterable[Subgoal]) -> frozenset[BindableTerm]:
    """All variables and parameters appearing anywhere in ``subgoals``."""
    found: set[BindableTerm] = set()
    for sg in subgoals:
        found.update(sg.bindable_terms())
    return frozenset(found)
