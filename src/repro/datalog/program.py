"""Intermediate predicates: nonrecursive Datalog programs (views).

Example 2.2's caveat: "To include patients with several diseases
simultaneously, we would have to extend our query-flocks language to
allow intermediate predicates ... That extension is feasible but we
shall concentrate on the simpler cases."  This module implements that
feasible extension for the nonrecursive case:

* a :class:`Program` is a set of rules defining *intermediate* (IDB)
  predicates from base (EDB) relations and other intermediates;
* rules may not be recursive (the dependency graph must be acyclic) —
  flocks need materializable views, not fixpoints;
* :meth:`Program.materialize` evaluates the program bottom-up in
  topological order against a database, producing a scratch database in
  which the intermediate predicates are ordinary relations — so any
  flock (and any flock plan) can use them unchanged.

The canonical use is the multi-disease side-effect flock::

    explained(P, S) :- diagnoses(P, D) AND causes(D, S)

    QUERY:
    answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND
                 NOT explained(P,$s)
    FILTER:
    COUNT(answer.P) >= 20

which is correct even when a patient has several diagnoses: a symptom
counts as explained if *any* disease of the patient causes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from graphlib import CycleError, TopologicalSorter

from ..errors import EvaluationError, SafetyError
from ..relational.catalog import Database
from ..relational.evaluate import evaluate_conjunctive
from ..relational.operators import union_all
from ..relational.relation import Relation
from .atoms import RelationalAtom
from .query import ConjunctiveQuery
from .safety import assert_safe
from .terms import Variable


@dataclass(frozen=True)
class Program:
    """A nonrecursive set of view definitions.

    Multiple rules with the same head predicate union their results
    (standard Datalog semantics).  Head terms must be variables or
    constants — parameters make no sense in a view shared by all
    parameter assignments — and every rule must be safe.
    """

    rules: tuple[ConjunctiveQuery, ...]

    def __post_init__(self) -> None:
        arities: dict[str, int] = {}
        for rule in self.rules:
            assert_safe(rule)
            if rule.parameters():
                raise SafetyError(
                    f"view rule '{rule}' uses flock parameters; intermediate "
                    "predicates are parameter-free"
                )
            previous = arities.setdefault(rule.head_name, len(rule.head_terms))
            if previous != len(rule.head_terms):
                raise EvaluationError(
                    f"predicate {rule.head_name!r} defined with arities "
                    f"{previous} and {len(rule.head_terms)}"
                )
        self._check_acyclic()

    # ------------------------------------------------------------------

    def intermediate_predicates(self) -> frozenset[str]:
        return frozenset(rule.head_name for rule in self.rules)

    def _dependencies(self) -> dict[str, set[str]]:
        """head -> set of intermediate predicates its bodies read."""
        heads = self.intermediate_predicates()
        graph: dict[str, set[str]] = {h: set() for h in heads}
        for rule in self.rules:
            for sg in rule.body:
                if isinstance(sg, RelationalAtom) and sg.predicate in heads:
                    graph[rule.head_name].add(sg.predicate)
        return graph

    def _check_acyclic(self) -> None:
        try:
            list(TopologicalSorter(self._dependencies()).static_order())
        except CycleError as error:
            raise EvaluationError(
                f"recursive view definitions are not supported: {error.args[1]}"
            ) from None

    def evaluation_order(self) -> list[str]:
        """Intermediate predicates in bottom-up (dependency) order."""
        return list(TopologicalSorter(self._dependencies()).static_order())

    # ------------------------------------------------------------------

    def materialize(self, db: Database) -> Database:
        """Evaluate every view; return a scratch database containing the
        base relations plus the materialized intermediates.

        View columns are named after the head variables (constants get
        positional ``_const<i>`` names), so flock subgoals over the view
        join exactly as over a base relation.
        """
        scratch = db.scratch()
        by_head: dict[str, list[ConjunctiveQuery]] = {}
        for rule in self.rules:
            by_head.setdefault(rule.head_name, []).append(rule)

        for predicate in self.evaluation_order():
            branch_results: list[Relation] = []
            columns: tuple[str, ...] | None = None
            for rule in by_head[predicate]:
                result = evaluate_conjunctive(scratch, rule)
                if columns is None:
                    columns = tuple(
                        str(t) if isinstance(t, Variable) else f"_const{i}"
                        for i, t in enumerate(rule.head_terms)
                    )
                # Align positionally: later rules may use different
                # variable names.
                branch_results.append(Relation(predicate, columns, result.tuples))
            assert columns is not None
            merged = union_all(branch_results, name=predicate)
            scratch.add(merged)
        return scratch


def materialize_views(
    db: Database, rules: tuple[ConjunctiveQuery, ...] | list[ConjunctiveQuery]
) -> Database:
    """One-call convenience: build a :class:`Program` and materialize."""
    return Program(tuple(rules)).materialize(db)
