"""Terms of the query-flock Datalog dialect.

The paper's language (Section 2) has three kinds of terms:

* **constants** — ordinary data values (strings, numbers);
* **variables** — capitalized identifiers such as ``B``, ``P``, ``D`` that
  range over data values during query evaluation;
* **parameters** — identifiers beginning with ``$`` such as ``$1``,
  ``$s``, ``$m``.  A query flock is a query *about its parameters*: the
  flock's result is the set of parameter assignments whose instantiated
  query passes the filter.

For the purposes of the safety conditions of Section 3.3, parameters
behave like variables ("parameters are variables, not constants, as far
as the above safety conditions are concerned"), which is why
:class:`Parameter` and :class:`Variable` share a common base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Variable:
    """A Datalog variable, e.g. ``B`` in ``baskets(B, $1)``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")
        if self.name.startswith("$"):
            raise ValueError(
                f"variable name {self.name!r} must not start with '$'; "
                "use Parameter for flock parameters"
            )

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True)
class Parameter:
    """A flock parameter, written ``$name`` in the paper's notation.

    The stored :attr:`name` excludes the ``$`` sigil: ``Parameter("s")``
    renders as ``$s``.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("parameter name must be non-empty")
        if self.name.startswith("$"):
            raise ValueError(
                f"parameter name should not include the '$' sigil: {self.name!r}"
            )

    def __str__(self) -> str:
        return f"${self.name}"

    def __repr__(self) -> str:
        return f"Parameter({self.name!r})"


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant term: a concrete data value appearing in a query."""

    value: Union[str, int, float, bool]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


#: Any term that may appear as an argument of a subgoal.
Term = Union[Variable, Parameter, Constant]

#: Terms that bind to data during evaluation (variables and parameters).
#: The safety rules of Section 3.3 treat both uniformly.
BindableTerm = Union[Variable, Parameter]


def is_bindable(term: Term) -> bool:
    """Return ``True`` for variables and parameters (anything that must be
    bound by a positive subgoal for the query to be safe)."""
    return isinstance(term, (Variable, Parameter))


def make_term(raw: Union[str, int, float, bool, Term]) -> Term:
    """Coerce a convenient Python value into a :data:`Term`.

    Strings follow the paper's lexical conventions:

    * ``"$x"`` becomes ``Parameter("x")``;
    * a capitalized identifier or ``_``-prefixed name becomes a
      :class:`Variable`;
    * a quoted string (``"'beer'"``) becomes a string constant;
    * anything else that parses as a number becomes a numeric constant;
    * remaining lowercase strings become string constants.

    Terms pass through unchanged.  This helper backs the friendly
    constructor API (``atom("baskets", "B", "$1")``).
    """
    if isinstance(raw, (Variable, Parameter, Constant)):
        return raw
    if isinstance(raw, bool):
        return Constant(raw)
    if isinstance(raw, (int, float)):
        return Constant(raw)
    if isinstance(raw, str):
        if not raw:
            raise ValueError("empty string cannot be coerced to a term")
        if raw.startswith("$"):
            return Parameter(raw[1:])
        if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in ("'", '"'):
            return Constant(raw[1:-1])
        if raw[0].isupper() or raw[0] == "_":
            return Variable(raw)
        try:
            return Constant(int(raw))
        except ValueError:
            pass
        try:
            return Constant(float(raw))
        except ValueError:
            pass
        return Constant(raw)
    raise TypeError(f"cannot coerce {raw!r} to a term")
