"""Datalog substrate: the query-flock language layer.

Implements the paper's query language — extended conjunctive queries
(negation + arithmetic) and unions thereof — together with the three
pieces of theory the optimizer needs: safety (Sections 3.2–3.3),
containment (Section 3.1), and safe-subquery enumeration.
"""

from .atoms import (
    Comparison,
    ComparisonOp,
    RelationalAtom,
    Subgoal,
    atom,
    comparison,
    negated,
)
from .arithmetic import ComparisonSystem, entails, is_satisfiable
from .containment import (
    ExtendedWitness,
    contains,
    contains_extended,
    equivalent,
    find_containment_mapping,
    find_extended_witness,
    is_subquery_bound,
    minimize,
    verify_containment_mapping,
    verify_extended_witness,
)
from .parser import parse_query, parse_rule
from .program import Program, materialize_views
from .query import (
    ConjunctiveQuery,
    FlockQuery,
    UnionQuery,
    as_union,
    rule,
)
from .safety import (
    SafetyReport,
    SafetyRule,
    SafetyViolation,
    assert_safe,
    binding_witnesses,
    check_safety,
    is_safe,
    safety_diagnostics,
    verify_safety_report,
)
from .subqueries import (
    SubqueryCandidate,
    UnionSubqueryCandidate,
    minimal_safe_subqueries_with_parameters,
    parameter_subsets,
    safe_subqueries,
    safe_subqueries_with_parameters,
    subgoal_subsets,
    union_subqueries_with_parameters,
    unsafe_subqueries,
)
from .terms import Constant, Parameter, Term, Variable, make_term

__all__ = [
    "Comparison",
    "ComparisonOp",
    "ComparisonSystem",
    "ConjunctiveQuery",
    "Constant",
    "ExtendedWitness",
    "FlockQuery",
    "Parameter",
    "Program",
    "RelationalAtom",
    "SafetyReport",
    "SafetyRule",
    "SafetyViolation",
    "Subgoal",
    "SubqueryCandidate",
    "Term",
    "UnionQuery",
    "UnionSubqueryCandidate",
    "Variable",
    "as_union",
    "assert_safe",
    "atom",
    "binding_witnesses",
    "check_safety",
    "comparison",
    "contains",
    "contains_extended",
    "entails",
    "equivalent",
    "find_containment_mapping",
    "find_extended_witness",
    "is_safe",
    "is_satisfiable",
    "is_subquery_bound",
    "make_term",
    "materialize_views",
    "minimal_safe_subqueries_with_parameters",
    "minimize",
    "negated",
    "parameter_subsets",
    "parse_query",
    "parse_rule",
    "rule",
    "safe_subqueries",
    "safe_subqueries_with_parameters",
    "safety_diagnostics",
    "subgoal_subsets",
    "union_subqueries_with_parameters",
    "unsafe_subqueries",
    "verify_containment_mapping",
    "verify_extended_witness",
    "verify_safety_report",
]
