"""Enumeration of safe subqueries — the candidate a-priori filters.

Section 3.1's Optimization Principle for Conjunctive Queries: *consider
evaluating only those safe subqueries formed by deleting one or more
subgoals from Q*.  This module enumerates exactly that space:

* :func:`safe_subqueries` — every nonempty proper subgoal subset of a
  rule that passes the three safety conditions (Example 3.2: of the 14
  nontrivial subsets of the medical flock, exactly 8 are safe);
* :func:`safe_subqueries_with_parameters` — the subsets whose parameter
  set is exactly a chosen set S (the Section 4.3 heuristic 1 building
  block: a restriction relation R_S for the parameters S);
* :func:`union_subqueries_with_parameters` — the Section 3.4 extension:
  for a union flock, an upper bound is a union of per-rule safe
  subqueries, one for each rule (Example 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Iterable, Iterator

from .query import ConjunctiveQuery, UnionQuery
from .safety import check_safety
from .terms import Parameter


@dataclass(frozen=True)
class SubqueryCandidate:
    """A safe subquery together with which body indices it keeps."""

    indices: tuple[int, ...]
    query: ConjunctiveQuery

    @property
    def parameters(self) -> frozenset[Parameter]:
        return self.query.parameters()

    @property
    def subgoal_count(self) -> int:
        return len(self.indices)

    def __str__(self) -> str:
        return str(self.query)


def subgoal_subsets(
    query: ConjunctiveQuery,
    include_full: bool = False,
    include_empty: bool = False,
) -> Iterator[tuple[int, ...]]:
    """Yield subgoal index subsets, smallest first.

    By default yields only *nontrivial* subsets (nonempty and proper),
    matching the paper's "nonempty, proper subset of the subgoals".
    """
    n = len(query.body)
    low = 0 if include_empty else 1
    high = n if include_full else n - 1
    for size in range(low, high + 1):
        for indices in combinations(range(n), size):
            yield indices


def safe_subqueries(
    query: ConjunctiveQuery,
    include_full: bool = False,
) -> list[SubqueryCandidate]:
    """All safe subqueries formed from nontrivial subgoal subsets.

    ``include_full=True`` additionally admits the full query itself
    (which is trivially safe whenever the flock query is), useful when a
    caller wants the bound lattice including its bottom.
    """
    candidates: list[SubqueryCandidate] = []
    for indices in subgoal_subsets(query, include_full=include_full):
        sub = query.with_body_subset(indices)
        if check_safety(sub).is_safe:
            candidates.append(SubqueryCandidate(indices, sub))
    return candidates


def unsafe_subqueries(query: ConjunctiveQuery) -> list[SubqueryCandidate]:
    """The complement of :func:`safe_subqueries` over nontrivial subsets —
    exposed so tests and benchmarks can reproduce the Example 3.2 count
    (14 nontrivial subsets, 8 safe, 6 unsafe)."""
    rejected: list[SubqueryCandidate] = []
    for indices in subgoal_subsets(query):
        sub = query.with_body_subset(indices)
        if not check_safety(sub).is_safe:
            rejected.append(SubqueryCandidate(indices, sub))
    return rejected


def safe_subqueries_with_parameters(
    query: ConjunctiveQuery,
    parameters: Iterable[Parameter],
    include_full: bool = False,
) -> list[SubqueryCandidate]:
    """Safe subqueries whose parameter set is exactly ``parameters``.

    These are the candidates for a FILTER step that restricts precisely
    that set of parameters (heuristic 1 of Section 4.3).
    """
    wanted = frozenset(parameters)
    return [
        cand
        for cand in safe_subqueries(query, include_full=include_full)
        if cand.parameters == wanted
    ]


def minimal_safe_subqueries_with_parameters(
    query: ConjunctiveQuery,
    parameters: Iterable[Parameter],
) -> list[SubqueryCandidate]:
    """The subset-minimal candidates among
    :func:`safe_subqueries_with_parameters`.

    A candidate is kept when no other candidate for the same parameter
    set uses a strict subset of its subgoals.  Minimal candidates are the
    cheapest bounds (fewest joins); the optimizer starts from these.
    """
    candidates = safe_subqueries_with_parameters(query, parameters)
    index_sets = [set(c.indices) for c in candidates]
    minimal: list[SubqueryCandidate] = []
    for i, cand in enumerate(candidates):
        if any(
            index_sets[j] < index_sets[i] for j in range(len(candidates)) if j != i
        ):
            continue
        minimal.append(cand)
    return minimal


@dataclass(frozen=True)
class UnionSubqueryCandidate:
    """A union upper bound: one safe subquery per rule of a union flock."""

    branches: tuple[SubqueryCandidate, ...]

    @property
    def query(self) -> UnionQuery:
        return UnionQuery(tuple(b.query for b in self.branches))

    @property
    def parameters(self) -> frozenset[Parameter]:
        found: set[Parameter] = set()
        for branch in self.branches:
            found.update(branch.parameters)
        return frozenset(found)

    def __str__(self) -> str:
        return "\n".join(str(b.query) for b in self.branches)


def union_subqueries_with_parameters(
    union: UnionQuery,
    parameters: Iterable[Parameter],
    max_candidates: int | None = None,
) -> list[UnionSubqueryCandidate]:
    """Enumerate union upper bounds restricted to exactly ``parameters``.

    Per Section 3.4, each branch must contribute a safe subquery of the
    corresponding rule; the union of the branch results then bounds the
    union result.  For pruning a parameter set S every branch must
    mention exactly S (a branch missing a parameter of S could not
    constrain it, and a branch with extra parameters would bound a
    different projection).  Branch choices combine as a cross product;
    ``max_candidates`` caps the explosion for wide unions.
    """
    wanted = frozenset(parameters)
    per_rule: list[list[SubqueryCandidate]] = []
    for rule in union.rules:
        # Rules that never mention a wanted parameter cannot be bounded
        # for it; Section 3.4 requires a subquery for *each* rule in the
        # union, so such a union-bound does not exist.
        choices = [
            cand
            for cand in safe_subqueries(rule, include_full=True)
            if cand.parameters & union.parameters() == wanted
        ]
        if not choices:
            return []
        # Prefer minimal subgoal counts: cheapest bounds first.
        choices.sort(key=lambda c: c.subgoal_count)
        per_rule.append(choices)

    results: list[UnionSubqueryCandidate] = []
    for combo in product(*per_rule):
        results.append(UnionSubqueryCandidate(tuple(combo)))
        if max_candidates is not None and len(results) >= max_candidates:
            break
    return results


def parameter_subsets(
    query: ConjunctiveQuery | UnionQuery,
    min_size: int = 1,
    max_size: int | None = None,
) -> Iterator[frozenset[Parameter]]:
    """All subsets of the flock's parameters, by ascending size —
    the S sets of heuristic 1 (Section 4.3)."""
    params = sorted(query.parameters(), key=lambda p: p.name)
    top = len(params) if max_size is None else min(max_size, len(params))
    for size in range(min_size, top + 1):
        for combo in combinations(params, size):
            yield frozenset(combo)
