"""Extended conjunctive queries and unions thereof (paper Sections 2.1–2.3).

A :class:`ConjunctiveQuery` is a single Datalog rule::

    answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND
                 diagnoses(P,D) AND NOT causes(D,$s)

with a head (predicate name + terms) and a body of subgoals that may be
positive relational atoms, negated relational atoms, or arithmetic
comparisons.  A :class:`UnionQuery` is a set of such rules sharing a head
predicate, per Section 3.4 ("Extension to Unions of Datalog Queries").

Queries are immutable.  Structural operations used by the optimizer —
deleting subgoals (Section 3.1's subgoal-subset subqueries), adding
subgoals (Section 4.2's rule 3b, which splices in ``ok`` relations from
prior FILTER steps), and instantiating parameters with constants (the
"in principle, trying all such assignments" semantics of Section 2) —
all return new query objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence, Union

from .atoms import Comparison, RelationalAtom, Subgoal, subgoal_terms
from .terms import Constant, Parameter, Term, Variable, make_term


@dataclass(frozen=True)
class ConjunctiveQuery:
    """One rule of the flock language: extended CQ with negation/arithmetic.

    Attributes:
        head_name: name of the head predicate (``answer`` in the paper).
        head_terms: terms of the head.  The paper's flocks put only
            ordinary variables in the head (parameters "cannot appear in
            the head" — Section 3.3), but constants are tolerated for
            generality.
        body: the subgoals, in source order.
    """

    head_name: str
    head_terms: tuple[Term, ...]
    body: tuple[Subgoal, ...]

    def __post_init__(self) -> None:
        if not self.head_name:
            raise ValueError("head predicate name must be non-empty")
        for term in self.head_terms:
            if isinstance(term, Parameter):
                raise ValueError(
                    f"parameter {term} may not appear in the head of a flock "
                    "query (the flock result is about parameters; the query "
                    "result is about its head variables)"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def head_variables(self) -> frozenset[Variable]:
        return frozenset(t for t in self.head_terms if isinstance(t, Variable))

    def variables(self) -> frozenset[Variable]:
        """All variables in head and body."""
        found: set[Variable] = set(self.head_variables())
        for sg in self.body:
            found.update(sg.variables())
        return frozenset(found)

    def parameters(self) -> frozenset[Parameter]:
        """All parameters appearing in the body."""
        found: set[Parameter] = set()
        for sg in self.body:
            found.update(sg.parameters())
        return frozenset(found)

    def positive_atoms(self) -> tuple[RelationalAtom, ...]:
        return tuple(
            sg
            for sg in self.body
            if isinstance(sg, RelationalAtom) and not sg.negated
        )

    def negated_atoms(self) -> tuple[RelationalAtom, ...]:
        return tuple(
            sg for sg in self.body if isinstance(sg, RelationalAtom) and sg.negated
        )

    def comparisons(self) -> tuple[Comparison, ...]:
        return tuple(sg for sg in self.body if isinstance(sg, Comparison))

    def predicates(self) -> frozenset[str]:
        """Names of all relations referenced by the body."""
        return frozenset(
            sg.predicate for sg in self.body if isinstance(sg, RelationalAtom)
        )

    # ------------------------------------------------------------------
    # Structural transforms used by the optimizer
    # ------------------------------------------------------------------

    def with_body_subset(self, indices: Iterable[int]) -> "ConjunctiveQuery":
        """The subquery keeping only the body subgoals at ``indices``.

        This realizes Section 3.1's restriction: candidate containing
        queries are formed by *taking a subset of the subgoals* (no
        variable splitting).  Order of the surviving subgoals is
        preserved; indices may be given in any order.
        """
        index_set = sorted(set(indices))
        for i in index_set:
            if not 0 <= i < len(self.body):
                raise IndexError(f"subgoal index {i} out of range")
        return ConjunctiveQuery(
            self.head_name,
            self.head_terms,
            tuple(self.body[i] for i in index_set),
        )

    def without_subgoals(self, indices: Iterable[int]) -> "ConjunctiveQuery":
        """The subquery formed by *deleting* the subgoals at ``indices``."""
        drop = set(indices)
        keep = [i for i in range(len(self.body)) if i not in drop]
        return self.with_body_subset(keep)

    def with_extra_subgoals(
        self, extra: Sequence[Subgoal], prepend: bool = False
    ) -> "ConjunctiveQuery":
        """A copy with additional subgoals (Section 4.2 rule 3b: splice in
        the left sides of earlier FILTER steps)."""
        extra_t = tuple(extra)
        body = extra_t + self.body if prepend else self.body + extra_t
        return ConjunctiveQuery(self.head_name, self.head_terms, body)

    def instantiate(
        self, assignment: Mapping[Parameter, object]
    ) -> "ConjunctiveQuery":
        """Replace parameters with constants per ``assignment``.

        Implements the reference semantics of Section 2: a flock means
        "for every assignment of values to the parameters, instantiate
        the query, evaluate it, and test the filter".  Parameters missing
        from the assignment are left in place.
        """
        const = {p: Constant(v) if not isinstance(v, Constant) else v
                 for p, v in assignment.items()}

        def sub(term: Term) -> Term:
            if isinstance(term, Parameter) and term in const:
                return const[term]
            return term

        new_body: list[Subgoal] = []
        for sg in self.body:
            if isinstance(sg, RelationalAtom):
                new_body.append(
                    RelationalAtom(
                        sg.predicate, tuple(sub(t) for t in sg.terms), sg.negated
                    )
                )
            else:
                new_body.append(Comparison(sub(sg.left), sg.op, sub(sg.right)))
        return ConjunctiveQuery(self.head_name, self.head_terms, tuple(new_body))

    def rename_head(self, name: str) -> "ConjunctiveQuery":
        return ConjunctiveQuery(name, self.head_terms, self.body)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.head_terms)
        head = f"{self.head_name}({args})"
        if not self.body:
            return f"{head} :- TRUE"
        body = " AND ".join(str(sg) for sg in self.body)
        return f"{head} :- {body}"


@dataclass(frozen=True)
class UnionQuery:
    """A union of extended conjunctive queries (Section 3.4).

    All rules must share the same head predicate name; head arities may
    differ only in the degenerate sense the paper allows for Example 2.3
    (counting answers that are anchor IDs in one branch and document IDs
    in another — "we assume that there are no values in common between
    these two types of ID's").  We require equal arity for soundness of
    the union count.
    """

    rules: tuple[ConjunctiveQuery, ...]

    def __post_init__(self) -> None:
        if not self.rules:
            raise ValueError("a union query needs at least one rule")
        names = {r.head_name for r in self.rules}
        if len(names) > 1:
            raise ValueError(
                f"union rules must share a head predicate, got {sorted(names)}"
            )
        arities = {len(r.head_terms) for r in self.rules}
        if len(arities) > 1:
            raise ValueError(
                f"union rules must share a head arity, got {sorted(arities)}"
            )

    @property
    def head_name(self) -> str:
        return self.rules[0].head_name

    @property
    def head_arity(self) -> int:
        return len(self.rules[0].head_terms)

    def parameters(self) -> frozenset[Parameter]:
        found: set[Parameter] = set()
        for rule in self.rules:
            found.update(rule.parameters())
        return frozenset(found)

    def predicates(self) -> frozenset[str]:
        found: set[str] = set()
        for rule in self.rules:
            found.update(rule.predicates())
        return frozenset(found)

    def instantiate(self, assignment: Mapping[Parameter, object]) -> "UnionQuery":
        return UnionQuery(tuple(r.instantiate(assignment) for r in self.rules))

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)


#: The flock query language: a single extended CQ or a union of them.
FlockQuery = Union[ConjunctiveQuery, UnionQuery]


def as_union(query: FlockQuery) -> UnionQuery:
    """View any flock query uniformly as a union (of one or more rules)."""
    if isinstance(query, UnionQuery):
        return query
    return UnionQuery((query,))


def rule(
    head_name: str,
    head_terms: Sequence[Union[str, int, float, Term]],
    body: Sequence[Subgoal],
) -> ConjunctiveQuery:
    """Convenience constructor mirroring the paper's rule syntax.

    Example::

        rule("answer", ["B"], [atom("baskets", "B", "$1"),
                               atom("baskets", "B", "$2"),
                               comparison("$1", "<", "$2")])
    """
    return ConjunctiveQuery(
        head_name,
        tuple(make_term(t) for t in head_terms),
        tuple(body),
    )


def query_free_terms(query: ConjunctiveQuery) -> frozenset:
    """All bindable terms (variables + parameters) in the body of ``query``."""
    return subgoal_terms(query.body)
