"""Entailment of arithmetic subgoal sets — the [Klu82]/[ZO93] machinery.

Section 3.3 notes that for Datalog with arithmetic, containment needs
reasoning about the comparisons ("There are decision procedures —
[Klu82] or [ZO93] for Datalog with arithmetic").  This module implements
the standard constraint-closure test over a densely ordered domain:

* :class:`ComparisonSystem` — a conjunction of comparisons between
  terms/constants, with consistency checking and entailment;
* :func:`entails` — does one set of comparisons imply another?

The closure computes, for every ordered pair of terms, the strongest
derivable relation among ``<``, ``<=``, ``=`` (plus ``!=`` side
constraints), propagating through transitivity and constant ordering.
Over a dense total order (strings, rationals) this is sound and
complete for conjunctions of ``< <= = !=`` constraints without
arithmetic expressions, which is exactly the paper's subgoal language.

Used by :func:`repro.datalog.containment.contains_extended` to decide
containment of conjunctive queries *with* arithmetic, and available to
the optimizer for pruning trivially unsatisfiable subqueries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .atoms import Comparison, ComparisonOp
from .terms import Constant, Term


# Strength lattice for derived relations between two terms (a R b):
# "<" is strictly stronger than "<=".  Equality is tracked by union-find;
# disequality as a side set.
_LT = "<"
_LE = "<="


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[object, object] = {}

    def find(self, x: object) -> object:
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def _const_key(value: object) -> tuple:
    """Order constants within comparable families; mixing families
    (numbers vs strings) is treated as incomparable and the system
    refuses to decide (conservative)."""
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return ("num", value)
    return ("str", value)


@dataclass
class ComparisonSystem:
    """A conjunction of comparisons, closed under logical consequence.

    Build with :meth:`from_comparisons`; query with :meth:`is_consistent`
    and :meth:`entails_comparison`.
    """

    comparisons: tuple[Comparison, ...]
    _uf: _UnionFind = field(default_factory=_UnionFind, repr=False)
    # strict[(a, b)] True means a < b derivable; False means a <= b.
    _edges: dict[tuple[object, object], bool] = field(
        default_factory=dict, repr=False
    )
    _disequal: set[frozenset] = field(default_factory=set, repr=False)
    _consistent: bool = True
    _known_constants: tuple = ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_comparisons(
        cls,
        comparisons: Iterable[Comparison],
        known_constants: Iterable[object] = (),
    ) -> "ComparisonSystem":
        """Build and close a system.

        ``known_constants`` registers additional constant values (e.g.
        those appearing only in the comparisons to be *tested*) so the
        built-in constant ordering covers them — without it,
        ``X < 5 ⊨ X < 10`` would fail for lack of a ``5 < 10`` edge.
        """
        system = cls(tuple(comparisons))
        system._known_constants = tuple(known_constants)
        system._build()
        return system

    @staticmethod
    def _node(term: Term) -> object:
        if isinstance(term, Constant):
            return ("const", _const_key(term.value))
        return term

    def _build(self) -> None:
        # Equalities first (union-find), then order edges.
        pending: list[tuple[object, object, bool]] = []
        for comp in self.comparisons:
            a, b = self._node(comp.left), self._node(comp.right)
            if comp.op is ComparisonOp.EQ:
                self._uf.union(a, b)
            elif comp.op is ComparisonOp.NE:
                self._disequal.add(frozenset((a, b)))
            elif comp.op is ComparisonOp.LT:
                pending.append((a, b, True))
            elif comp.op is ComparisonOp.LE:
                pending.append((a, b, False))
            elif comp.op is ComparisonOp.GT:
                pending.append((b, a, True))
            elif comp.op is ComparisonOp.GE:
                pending.append((b, a, False))

        # Known constant order: add edges between every pair of
        # same-family constants mentioned anywhere (including constants
        # registered via ``known_constants``).
        const_nodes = {
            node
            for comp in self.comparisons
            for node in (self._node(comp.left), self._node(comp.right))
            if isinstance(node, tuple) and node[0] == "const"
        }
        for value in self._known_constants:
            const_nodes.add(("const", _const_key(value)))
        constants = sorted(const_nodes, key=lambda n: n[1])
        for i, a in enumerate(constants):
            for b in constants[i + 1:]:
                if a[1][0] != b[1][0]:
                    continue  # incomparable families
                if a[1] < b[1]:
                    pending.append((a, b, True))
                elif a[1] > b[1]:
                    pending.append((b, a, True))
                else:
                    self._uf.union(a, b)

        for a, b, strict in pending:
            self._add_edge(a, b, strict)
        self._close()

    def _add_edge(self, a: object, b: object, strict: bool) -> None:
        a, b = self._uf.find(a), self._uf.find(b)
        key = (a, b)
        if key in self._edges:
            self._edges[key] = self._edges[key] or strict
        else:
            self._edges[key] = strict

    def _close(self) -> None:
        """Floyd–Warshall-style closure, then consistency checks, then
        <=-cycle collapse into equalities."""
        changed = True
        while changed:
            changed = False
            # Renormalize endpoints through union-find.
            normalized: dict[tuple[object, object], bool] = {}
            for (a, b), strict in self._edges.items():
                ra, rb = self._uf.find(a), self._uf.find(b)
                if ra == rb:
                    if strict:
                        self._consistent = False
                        return
                    continue
                key = (ra, rb)
                normalized[key] = normalized.get(key, False) or strict
            self._edges = normalized

            # Transitivity: a R1 b, b R2 c  =>  a R c with R strict iff
            # either premise is.  A derived self-loop a < a is a
            # contradiction; a <= a is vacuous.
            items = list(self._edges.items())
            for (a, b), s1 in items:
                for (b2, c), s2 in items:
                    if b != b2:
                        continue
                    strict = s1 or s2
                    if a == c:
                        if strict:
                            self._consistent = False
                            return
                        continue
                    key = (a, c)
                    previous = self._edges.get(key)
                    if previous is None or (strict and not previous):
                        self._edges[key] = strict
                        changed = True

            # a <= b and b <= a (both non-strict) => a = b.
            for (a, b), strict in list(self._edges.items()):
                back = self._edges.get((b, a))
                if back is None:
                    continue
                if strict or back:
                    self._consistent = False
                    return
                self._uf.union(a, b)
                changed = True

        # Disequality vs equality.
        for pair in self._disequal:
            members = list(pair)
            if len(members) == 1:
                self._consistent = False
                return
            if self._uf.find(members[0]) == self._uf.find(members[1]):
                self._consistent = False
                return

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_consistent(self) -> bool:
        return self._consistent

    def _relation(self, a: object, b: object) -> Optional[str]:
        """The strongest derivable relation from a to b: '<', '<=',
        '=' or None."""
        ra, rb = self._uf.find(a), self._uf.find(b)
        if ra == rb:
            return "="
        edge = self._edges.get((ra, rb))
        if edge is None:
            return None
        return _LT if edge else _LE

    def entails_comparison(self, comp: Comparison) -> bool:
        """Does this (consistent) system imply ``comp`` over every
        assignment of its terms in a dense order?"""
        if not self._consistent:
            return True  # ex falso
        a, b = self._node(comp.left), self._node(comp.right)
        op = comp.op
        if op is ComparisonOp.GT:
            a, b, op = b, a, ComparisonOp.LT
        elif op is ComparisonOp.GE:
            a, b, op = b, a, ComparisonOp.LE

        relation = self._relation(a, b)
        if op is ComparisonOp.EQ:
            return relation == "="
        if op is ComparisonOp.LT:
            return relation == _LT
        if op is ComparisonOp.LE:
            return relation in (_LT, _LE, "=")
        if op is ComparisonOp.NE:
            if relation == _LT or self._relation(b, a) == _LT:
                return True
            ra, rb = self._uf.find(a), self._uf.find(b)
            for pair in self._disequal:
                members = list(pair)
                if len(members) != 2:
                    continue
                roots = {self._uf.find(members[0]), self._uf.find(members[1])}
                if roots == {ra, rb}:
                    return True
            return False
        raise AssertionError(f"unhandled operator {op}")


def _constants_of(comparisons: Iterable[Comparison]) -> list[object]:
    values = []
    for comp in comparisons:
        for term in (comp.left, comp.right):
            if isinstance(term, Constant):
                values.append(term.value)
    return values


def entails(
    premises: Iterable[Comparison], conclusions: Iterable[Comparison]
) -> bool:
    """``premises ⊨ conclusions``: every dense-order assignment
    satisfying all premises satisfies every conclusion."""
    conclusions = list(conclusions)
    system = ComparisonSystem.from_comparisons(
        premises, known_constants=_constants_of(conclusions)
    )
    return all(system.entails_comparison(c) for c in conclusions)


def is_satisfiable(comparisons: Iterable[Comparison]) -> bool:
    """Whether a conjunction of comparisons has any dense-order model —
    lets the optimizer discard subqueries like ``$1 < $2 AND $2 < $1``
    without touching the data."""
    return ComparisonSystem.from_comparisons(comparisons).is_consistent()
