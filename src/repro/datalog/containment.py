"""Conjunctive-query containment via containment mappings (Section 3.1).

The a-priori generalization rests on upper bounds: a cheaper query Q1
bounds Q2 whenever Q2 ⊆ Q1 holds *for all databases*.  For pure
conjunctive queries this containment is decidable by the
Chandra–Merlin containment-mapping theorem [CM77]: Q2 ⊆ Q1 iff there is
a homomorphism from Q1 to Q2 that

* maps each constant to itself,
* maps the head of Q1 onto the head of Q2, and
* maps every subgoal of Q1 onto some subgoal of Q2.

Flock **parameters** are free terms shared between a query and its
subqueries — an upper bound for a particular parameter assignment must
hold for that same assignment — so a containment mapping must map each
parameter to itself (they behave like distinguished variables).

For the extended language (negation, arithmetic) the paper notes that
full containment is harder ([Klu82], [ZO93], [LS93]) and that the
containing query can occasionally fail to be a subgoal subset; it then
*chooses* to restrict the plan space to subgoal subsets anyway.  We
follow suit: :func:`contains` decides containment exactly for pure CQs,
and for extended CQs implements the sound (but not complete)
subgoal-subset criterion via :func:`is_subquery_bound`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from .atoms import Comparison, RelationalAtom
from .query import ConjunctiveQuery
from .terms import Constant, Parameter, Term


def _is_pure(query: ConjunctiveQuery) -> bool:
    """True when the query is a plain CQ: positive relational atoms only."""
    return all(
        isinstance(sg, RelationalAtom) and not sg.negated for sg in query.body
    )


def _extend_mapping(
    mapping: dict[Term, Term], source: Term, target: Term
) -> Optional[dict[Term, Term]]:
    """Try to extend a homomorphism with ``source -> target``.

    Constants and parameters must map to themselves; variables map
    freely but consistently.  Returns the extended mapping, or ``None``
    on conflict.
    """
    if isinstance(source, Constant):
        return mapping if source == target else None
    if isinstance(source, Parameter):
        return mapping if source == target else None
    existing = mapping.get(source)
    if existing is not None:
        return mapping if existing == target else None
    extended = dict(mapping)
    extended[source] = target
    return extended


def find_containment_mapping(
    container: ConjunctiveQuery, contained: ConjunctiveQuery
) -> Optional[Mapping[Term, Term]]:
    """Search for a containment mapping from ``container`` to ``contained``.

    A non-``None`` result witnesses ``contained ⊆ container`` (for pure
    CQs).  Both queries must be pure; callers should use
    :func:`is_subquery_bound` for extended queries.
    """
    if not _is_pure(container) or not _is_pure(contained):
        raise ValueError(
            "containment mappings are defined for pure conjunctive queries; "
            "use is_subquery_bound for extended queries"
        )
    if len(container.head_terms) != len(contained.head_terms):
        return None

    # Seed the mapping with the head correspondence.
    mapping: Optional[dict[Term, Term]] = {}
    for src, dst in zip(container.head_terms, contained.head_terms):
        mapping = _extend_mapping(mapping, src, dst)
        if mapping is None:
            return None

    container_atoms = [sg for sg in container.body if isinstance(sg, RelationalAtom)]
    contained_atoms = [sg for sg in contained.body if isinstance(sg, RelationalAtom)]

    def search(index: int, current: dict[Term, Term]) -> Optional[dict[Term, Term]]:
        if index == len(container_atoms):
            return current
        atom = container_atoms[index]
        for candidate in contained_atoms:
            if candidate.predicate != atom.predicate:
                continue
            if candidate.arity != atom.arity:
                continue
            extended: Optional[dict[Term, Term]] = current
            for src, dst in zip(atom.terms, candidate.terms):
                extended = _extend_mapping(extended, src, dst)
                if extended is None:
                    break
            if extended is None:
                continue
            result = search(index + 1, extended)
            if result is not None:
                return result
        return None

    return search(0, mapping)


def contains(container: ConjunctiveQuery, contained: ConjunctiveQuery) -> bool:
    """Decide ``contained ⊆ container`` for pure conjunctive queries."""
    return find_containment_mapping(container, contained) is not None


def equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Decide query equivalence: mutual containment."""
    return contains(q1, q2) and contains(q2, q1)


def is_subquery_bound(
    container: ConjunctiveQuery, contained: ConjunctiveQuery
) -> bool:
    """Sound upper-bound test for the extended language.

    Returns ``True`` when ``container``'s body is a sub-multiset of
    ``contained``'s body with identical subgoals (same predicate, terms,
    polarity — or the identical comparison) and the heads agree.  This is
    exactly the paper's restriction: containing queries are formed by
    *deleting* subgoals, no variable splitting, no rewriting.  Deleting a
    positive subgoal can only grow the result; deleting a negated or
    arithmetic subgoal drops a filter and can also only grow the result —
    hence soundness under set semantics.
    """
    if container.head_name != contained.head_name:
        return False
    if container.head_terms != contained.head_terms:
        return False
    remaining = list(contained.body)
    for sg in container.body:
        try:
            remaining.remove(sg)
        except ValueError:
            return False
    return True


@dataclass(frozen=True)
class ExtendedWitness:
    """The [Klu82] containment argument, as a checkable object.

    ``mapping`` is the homomorphism over the relational subgoals (pairs,
    so the witness hashes); ``entailed`` are the container's arithmetic
    subgoals *after* applying the mapping — each is entailed by the
    contained query's comparison system, which
    :func:`verify_extended_witness` re-checks from scratch.  When the
    contained query's comparisons are inconsistent the containment is
    vacuous (``∅ ⊆ anything``) and ``contained_unsatisfiable`` is set
    with an empty mapping.
    """

    mapping: tuple[tuple[Term, Term], ...]
    entailed: tuple[Comparison, ...]
    contained_unsatisfiable: bool = False

    def as_mapping(self) -> dict[Term, Term]:
        return dict(self.mapping)


def _apply_to_comparison(
    mapping: Mapping[Term, Term], comp: Comparison
) -> Comparison:
    def sub(term: Term) -> Term:
        if isinstance(term, Constant):
            return term
        return mapping.get(term, term)  # type: ignore[arg-type]

    return Comparison(sub(comp.left), comp.op, sub(comp.right))


def _contained_system(
    container: ConjunctiveQuery, contained: ConjunctiveQuery
):
    """The contained query's comparison system, seeded with the
    constants the container's comparisons mention."""
    from .arithmetic import ComparisonSystem

    container_comparisons = [
        sg for sg in container.body if isinstance(sg, Comparison)
    ]
    known_constants = [
        term.value
        for comp in container_comparisons
        for term in (comp.left, comp.right)
        if isinstance(term, Constant)
    ]
    contained_comparisons = [
        sg for sg in contained.body if isinstance(sg, Comparison)
    ]
    return ComparisonSystem.from_comparisons(
        contained_comparisons, known_constants=known_constants
    )


def find_extended_witness(
    container: ConjunctiveQuery, contained: ConjunctiveQuery
) -> Optional[ExtendedWitness]:
    """Search for a Klug-style containment witness (arithmetic, no
    negation); ``None`` when the test cannot establish containment.

    A non-``None`` result witnesses ``contained ⊆ container`` and can be
    re-checked without search by :func:`verify_extended_witness`.
    """
    if any(
        isinstance(sg, RelationalAtom) and sg.negated
        for q in (container, contained)
        for sg in q.body
    ):
        raise ValueError(
            "contains_extended handles arithmetic but not negation; "
            "use is_subquery_bound for negated queries"
        )
    if len(container.head_terms) != len(contained.head_terms):
        return None

    container_atoms = [
        sg for sg in container.body if isinstance(sg, RelationalAtom)
    ]
    contained_atoms = [
        sg for sg in contained.body if isinstance(sg, RelationalAtom)
    ]
    container_comparisons = [
        sg for sg in container.body if isinstance(sg, Comparison)
    ]
    system = _contained_system(container, contained)
    if not system.is_consistent():
        # The contained query is unsatisfiable: contained ⊆ anything.
        return ExtendedWitness((), (), contained_unsatisfiable=True)

    seed: Optional[dict[Term, Term]] = {}
    for src, dst in zip(container.head_terms, contained.head_terms):
        seed = _extend_mapping(seed, src, dst)
        if seed is None:
            return None

    def search(
        index: int, current: dict[Term, Term]
    ) -> Optional[dict[Term, Term]]:
        if index == len(container_atoms):
            mapped = [
                _apply_to_comparison(current, c) for c in container_comparisons
            ]
            if all(system.entails_comparison(c) for c in mapped):
                return current
            return None
        atom = container_atoms[index]
        for candidate in contained_atoms:
            if (
                candidate.predicate != atom.predicate
                or candidate.arity != atom.arity
            ):
                continue
            extended: Optional[dict[Term, Term]] = current
            for src, dst in zip(atom.terms, candidate.terms):
                extended = _extend_mapping(extended, src, dst)
                if extended is None:
                    break
            if extended is None:
                continue
            result = search(index + 1, extended)
            if result is not None:
                return result
        return None

    found = search(0, seed)
    if found is None:
        return None
    entailed = tuple(
        _apply_to_comparison(found, c) for c in container_comparisons
    )
    return ExtendedWitness(tuple(sorted(found.items(), key=repr)), entailed)


def contains_extended(
    container: ConjunctiveQuery, contained: ConjunctiveQuery
) -> bool:
    """Sound containment test for CQs **with arithmetic** (no negation).

    Following [Klu82]'s homomorphism criterion: ``contained ⊆ container``
    if some containment mapping ``h`` over the relational subgoals also
    makes every arithmetic subgoal of ``container`` a logical consequence
    of ``contained``'s arithmetic subgoals (entailment over a dense
    order, via :mod:`repro.datalog.arithmetic`).

    This is sound always, and complete when ``contained``'s comparisons
    induce a total order on the terms involved (Klug's completeness
    condition); in the incomplete cases it may return ``False`` for a
    true containment — never the reverse.  Negated subgoals are not
    handled; callers should fall back to :func:`is_subquery_bound`.
    """
    return find_extended_witness(container, contained) is not None


def verify_containment_mapping(
    container: ConjunctiveQuery,
    contained: ConjunctiveQuery,
    mapping: Mapping[Term, Term],
) -> bool:
    """Re-check a Chandra–Merlin witness **without searching**.

    Verifies the three homomorphism conditions directly: constants and
    parameters are fixed, the mapped head of ``container`` is the head
    of ``contained``, and every relational subgoal of ``container`` maps
    onto some subgoal of ``contained`` (same polarity).  Linear in the
    witness — this is the point of carrying one.
    """
    for source, target in mapping.items():
        if isinstance(source, (Constant, Parameter)) and source != target:
            return False

    def image(term: Term) -> Term:
        if isinstance(term, Constant):
            return term
        return mapping.get(term, term)  # type: ignore[arg-type]

    if len(container.head_terms) != len(contained.head_terms):
        return False
    for src, dst in zip(container.head_terms, contained.head_terms):
        if image(src) != dst:
            return False

    contained_atoms = {
        (sg.predicate, sg.negated, sg.terms)
        for sg in contained.body
        if isinstance(sg, RelationalAtom)
    }
    for sg in container.body:
        if not isinstance(sg, RelationalAtom):
            continue
        mapped = tuple(image(t) for t in sg.terms)
        if (sg.predicate, sg.negated, mapped) not in contained_atoms:
            return False
    return True


def verify_extended_witness(
    container: ConjunctiveQuery,
    contained: ConjunctiveQuery,
    witness: ExtendedWitness,
) -> bool:
    """Re-check a Klug witness independently of how it was found.

    Rebuilds the contained query's comparison system from scratch, then
    (a) for a vacuous witness, confirms the system really is
    inconsistent; (b) otherwise confirms the mapping is a homomorphism
    over the relational subgoals and that every mapped container
    comparison is entailed.  No search happens here.
    """
    system = _contained_system(container, contained)
    if witness.contained_unsatisfiable:
        return not system.is_consistent()
    if not system.is_consistent():
        return False
    mapping = witness.as_mapping()
    if not verify_containment_mapping(container, contained, mapping):
        return False
    container_comparisons = [
        sg for sg in container.body if isinstance(sg, Comparison)
    ]
    mapped = tuple(
        _apply_to_comparison(mapping, c) for c in container_comparisons
    )
    if mapped != witness.entailed:
        return False
    return all(system.entails_comparison(c) for c in mapped)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Chandra–Merlin minimization of a pure CQ.

    Repeatedly drop a subgoal whenever the reduced query still contains
    the original (i.e. the two are equivalent).  The result is a core of
    the query: a minimal equivalent subquery.  Useful for normalizing
    flock queries before subquery enumeration so that redundant subgoals
    don't inflate the plan space.
    """
    if not _is_pure(query):
        raise ValueError("minimization implemented for pure conjunctive queries")
    current = query
    changed = True
    while changed:
        changed = False
        for i in range(len(current.body)):
            candidate = current.without_subgoals([i])
            # candidate has fewer subgoals, so current ⊆ candidate always;
            # equivalence needs candidate ⊆ current.
            if candidate.body and contains(current, candidate):
                current = candidate
                changed = True
                break
    return current
