"""Parser for the paper's concrete Datalog syntax.

Accepts rule text exactly as the paper writes it, e.g.::

    answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2

    answer(P) :-
        exhibits(P,$s) AND
        treatments(P,$m) AND
        diagnoses(P,D) AND
        NOT causes(D,$s)

Multiple rules in one text form a :class:`~repro.datalog.query.UnionQuery`
(the Fig. 4 strongly-connected-words flock is three rules).  ``AND`` and
``,`` are both accepted as subgoal separators; identifiers beginning with
``$`` are parameters; capitalized identifiers are variables; everything
else is a constant.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from ..errors import ParseError
from .atoms import Comparison, ComparisonOp, RelationalAtom, Subgoal
from .query import ConjunctiveQuery, FlockQuery, UnionQuery
from .terms import Constant, Parameter, Term, Variable


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # IDENT PARAM NUMBER STRING PUNCT OP EOF
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*|//[^\n]*)
  | (?P<IMPLIES>:-)
  | (?P<OP><=|>=|!=|<>|==|<|>|=)
  | (?P<PARAM>\$[A-Za-z0-9_]+)
  | (?P<NUMBER>-?\d+\.\d+|-?\d+)
  | (?P<STRING>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<PUNCT>[(),.])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[_Token]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {text[pos]!r}", text=text, position=pos
            )
        kind = match.lastgroup or ""
        if kind not in ("WS", "COMMENT"):
            token_kind = "PUNCT" if kind == "IMPLIES" else kind
            yield _Token(token_kind, match.group(), match.start())
        pos = match.end()
    yield _Token("EOF", "", len(text))


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = list(_tokenize(text))
        self.index = 0

    # -- token utilities ------------------------------------------------

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.current
        if token.kind != "EOF":
            self.index += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r} but found {token.text or 'end of input'!r}",
                text=self.text,
                position=token.pos,
            )
        return self.advance()

    def at_keyword(self, word: str) -> bool:
        return (
            self.current.kind == "IDENT"
            and self.current.text.upper() == word.upper()
        )

    # -- grammar ---------------------------------------------------------

    def parse_program(self) -> FlockQuery:
        rules = [self.parse_rule()]
        while self.current.kind != "EOF":
            rules.append(self.parse_rule())
        if len(rules) == 1:
            return rules[0]
        return UnionQuery(tuple(rules))

    def parse_rule(self) -> ConjunctiveQuery:
        head_name, head_terms = self.parse_atom_shape()
        self.expect("PUNCT", ":-")
        body: list[Subgoal] = [self.parse_subgoal()]
        while True:
            if self.at_keyword("AND"):
                self.advance()
                body.append(self.parse_subgoal())
            elif self.current.kind == "PUNCT" and self.current.text == ",":
                self.advance()
                body.append(self.parse_subgoal())
            else:
                break
        if self.current.kind == "PUNCT" and self.current.text == ".":
            self.advance()
        return ConjunctiveQuery(head_name, head_terms, tuple(body))

    def parse_subgoal(self) -> Subgoal:
        if self.at_keyword("NOT"):
            self.advance()
            name, terms = self.parse_atom_shape()
            return RelationalAtom(name, terms, negated=True)
        # Could be a relational atom or an arithmetic comparison.  Decide
        # by lookahead: IDENT followed by "(" is an atom.
        if (
            self.current.kind == "IDENT"
            and self.index + 1 < len(self.tokens)
            and self.tokens[self.index + 1].kind == "PUNCT"
            and self.tokens[self.index + 1].text == "("
        ):
            name, terms = self.parse_atom_shape()
            return RelationalAtom(name, terms)
        left = self.parse_term()
        op_token = self.expect("OP")
        right = self.parse_term()
        return Comparison(left, ComparisonOp.from_symbol(op_token.text), right)

    def parse_atom_shape(self) -> tuple[str, tuple[Term, ...]]:
        name_token = self.expect("IDENT")
        self.expect("PUNCT", "(")
        terms: list[Term] = []
        if not (self.current.kind == "PUNCT" and self.current.text == ")"):
            terms.append(self.parse_term())
            while self.current.kind == "PUNCT" and self.current.text == ",":
                self.advance()
                terms.append(self.parse_term())
        self.expect("PUNCT", ")")
        return name_token.text, tuple(terms)

    def parse_term(self) -> Term:
        token = self.current
        if token.kind == "PARAM":
            self.advance()
            return Parameter(token.text[1:])
        if token.kind == "NUMBER":
            self.advance()
            if "." in token.text:
                return Constant(float(token.text))
            return Constant(int(token.text))
        if token.kind == "STRING":
            self.advance()
            raw = token.text[1:-1]
            unescaped = raw.replace("\\'", "'").replace('\\"', '"').replace(
                "\\\\", "\\"
            )
            return Constant(unescaped)
        if token.kind == "IDENT":
            self.advance()
            if token.text[0].isupper() or token.text[0] == "_":
                return Variable(token.text)
            return Constant(token.text)
        raise ParseError(
            f"expected a term but found {token.text or 'end of input'!r}",
            text=self.text,
            position=token.pos,
        )


def parse_query(text: str) -> FlockQuery:
    """Parse one or more Datalog rules.

    Returns a :class:`ConjunctiveQuery` for a single rule and a
    :class:`UnionQuery` when the text contains several rules (as in the
    paper's Fig. 4).
    """
    parser = _Parser(text)
    return parser.parse_program()


def parse_rule(text: str) -> ConjunctiveQuery:
    """Parse exactly one rule; raise :class:`ParseError` on extra input."""
    parser = _Parser(text)
    parsed = parser.parse_rule()
    if parser.current.kind != "EOF":
        raise ParseError(
            f"trailing input after rule: {parser.current.text!r}",
            text=text,
            position=parser.current.pos,
        )
    return parsed
