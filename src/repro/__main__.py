"""``python -m repro`` — the query-flocks command line (see repro.cli)."""

import sys

from .cli import main

sys.exit(main())
