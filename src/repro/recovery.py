"""Fault-tolerant mining: retry policies and step checkpoint–resume.

A query flock is a long-running query: the paper's own deployment model
("a la carte" mining inside a DBMS, Section 1.4) and the interactive
session layer both assume evaluations that run for minutes and are too
expensive to throw away on the first transient fault.  This module is
the recovery substrate :func:`repro.flocks.mining.mine` builds on:

* :class:`RetryPolicy` — deadline-aware exponential backoff with seeded
  jitter, plus the transient/fatal **error classifier** every retry
  loop in the system shares (the SQLite backend's statement retry, the
  per-step retry in the plan executor, and the parallel executor's
  partition salvage all consult the same :meth:`RetryPolicy.classify`);
* :class:`RetrySupervisor` — the live retry loop one evaluation
  carries: it owns the jitter RNG, clamps every backoff sleep to the
  guard's remaining budget (a retry sleep must never outlive the
  deadline it is trying to save), and records a :class:`RetryEvent`
  per retried site so :class:`~repro.flocks.mining.MiningReport` can
  show the attempt counts;
* :class:`CheckpointStore` / :class:`CheckpointRecorder` — step-level
  durability: after each FILTER step completes, its survivor set is
  written through the same SQLite persistence the session cache uses,
  together with a :class:`RunManifest` (canonical flock key, plan
  fingerprint, completed step ids, base-relation cardinalities), so
  ``mine(checkpoint=..., resume=run_id)`` re-executes only the steps a
  crashed or cancelled run did not finish.

The escalation ladder (every rung recorded in the report)::

    retry the step            (transient fault, backoff, same plan)
      -> re-run failed partitions serially   (parallel executor)
        -> backend / strategy downgrade      (mine's degradation)
          -> abort with a partial trace      (guard or fatal error)

Checkpointing rides below the ladder: whatever rung finally completes a
step, the completed step's survivors are durable, and an abort at any
rung leaves a manifest a later ``resume=`` can pick up.
"""

from __future__ import annotations

import hashlib
import json
import random
import sqlite3
import time
import uuid
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from .concurrency import blocking
from .errors import ExecutionAborted, ReproError, ResumeError
from .guard import ExecutionGuard
from .testing.faults import WorkerKill

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .flocks.flock import QueryFlock
    from .flocks.plans import QueryPlan
    from .flocks.sqlbackend import SQLiteBackend
    from .relational.catalog import Database
    from .relational.relation import Relation


class TransientFault(ReproError):
    """An explicitly transient failure: safe to retry as-is.

    Raised by infrastructure that knows the failure is momentary (and
    by the chaos harness, which injects it at every instrumented site
    to drive the retry rungs deterministically).
    """


#: Substrings marking a retryable sqlite3.OperationalError.
TRANSIENT_SQLITE_MARKERS = ("locked", "busy")


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative retry behaviour: how often, how long, and *what*.

    Attributes:
        max_attempts: total tries per protected call (1 = no retry).
        base_delay: backoff before the first retry; doubles per attempt.
        max_delay: cap on any single backoff sleep.
        jitter: +/- fraction of the computed delay randomized per sleep
            (decorrelates retry storms across workers).
        seed: seeds the jitter RNG of every supervisor built from this
            policy — chaos schedules pass their own seed so a failing
            run replays byte for byte.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 0.25
    jitter: float = 0.25
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    # -- classification -------------------------------------------------

    def classify(self, error: BaseException) -> str:
        """``"transient"`` (retry may help) or ``"fatal"`` (escalate).

        Guard aborts are always fatal: a budget or cancellation is a
        user decision, not a fault.  Transient by construction:
        :class:`TransientFault`, a killed worker / broken process pool
        (the pool rebuilds), and SQLite ``locked``/``busy``.
        """
        if isinstance(error, ExecutionAborted):
            return "fatal"
        if isinstance(error, (TransientFault, WorkerKill, BrokenProcessPool)):
            return "transient"
        if isinstance(error, sqlite3.OperationalError):
            message = str(error).lower()
            if any(marker in message for marker in TRANSIENT_SQLITE_MARKERS):
                return "transient"
        return "fatal"

    def is_transient(self, error: BaseException) -> bool:
        return self.classify(error) == "transient"

    # -- backoff --------------------------------------------------------

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """The backoff before retry number ``attempt`` (1-based), with
        jitter when an RNG is supplied."""
        delay = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        if rng is not None and self.jitter:
            delay *= 1 + self.jitter * (2 * rng.random() - 1)
        return max(0.0, delay)

    def supervisor(
        self,
        guard: ExecutionGuard | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "RetrySupervisor":
        return RetrySupervisor(self, guard=guard, sleep=sleep)


@dataclass
class RetryEvent:
    """One site's retry history within a single ``mine()`` call."""

    site: str
    attempts: int
    recovered: bool
    error: str

    def __str__(self) -> str:
        outcome = "recovered" if self.recovered else "gave up"
        return (
            f"retry [{self.site}] {outcome} after {self.attempts} "
            f"attempt(s): {self.error}"
        )


class RetrySupervisor:
    """The live retry loop one evaluation threads through its steps.

    One supervisor per ``mine()`` call: it accumulates the call's
    :class:`RetryEvent` log (surfaced as ``kind="retry"`` downgrades in
    the mining report) and clamps every backoff sleep to the guard's
    remaining wall-clock.
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        guard: ExecutionGuard | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.policy = policy if policy is not None else RetryPolicy()
        self.guard = guard
        self.events: list[RetryEvent] = []
        self._rng = random.Random(self.policy.seed)
        self._sleep = sleep
        #: Total sleeps performed (telemetry for the backoff tests).
        self.slept: list[float] = []

    def run(self, fn: Callable[[], object], site: str = "step") -> object:
        """Call ``fn``, retrying transient failures per the policy.

        Fatal errors and guard aborts propagate immediately.  A
        transient failure sleeps (backoff clamped to the guard's
        remaining budget, never past the deadline) and re-calls; when
        the attempts are exhausted the last error propagates and the
        event log records the defeat.
        """
        attempt = 1
        while True:
            try:
                result = fn()
            except BaseException as error:
                if (
                    not self.policy.is_transient(error)
                    or attempt >= self.policy.max_attempts
                ):
                    if attempt > 1 or self.policy.is_transient(error):
                        self.events.append(
                            RetryEvent(
                                site=site,
                                attempts=attempt,
                                recovered=False,
                                error=_one_line(error),
                            )
                        )
                    raise
                self.backoff(attempt, site=site)
                attempt += 1
            else:
                if attempt > 1:
                    self.events.append(
                        RetryEvent(
                            site=site,
                            attempts=attempt,
                            recovered=True,
                            error="",
                        )
                    )
                return result

    def backoff(self, attempt: int, site: str = "step") -> None:
        """Sleep before retry ``attempt`` — checked against the guard
        first (an already-expired deadline aborts instead of sleeping),
        then clamped so the sleep ends at or before the deadline."""
        if self.guard is not None:
            self.guard.checkpoint(node=f"retry:{site}")
        delay = self.policy.delay(attempt, self._rng)
        if self.guard is not None:
            delay = self.guard.clamp_sleep(delay)
        self.slept.append(delay)
        if delay > 0:
            self._sleep(delay)


def _one_line(error: BaseException) -> str:
    return f"{type(error).__name__}: {error}".split("\n")[0].rstrip(": ")


# ======================================================================
# Step checkpointing
# ======================================================================


#: Manifest schema version — bumped when the JSON layout changes, so a
#: resume never misreads an old file.
MANIFEST_VERSION = 1


@dataclass
class RunManifest:
    """The durable identity of one checkpointed mining run.

    ``flock_key`` is the canonical (alpha-equivalence) key of the query
    plus the filter text; ``plan_fingerprint`` hashes the rendered plan
    and join order.  Together they guarantee a resume re-executes the
    *same* plan over the *same* flock — anything else is a
    :class:`~repro.errors.ResumeError`.  Cross-process staleness of the
    data is screened by ``base_cards`` (relation cardinalities; version
    counters are process-local) exactly like the session cache's
    persistence.
    """

    run_id: str
    flock_key: str
    plan_fingerprint: str
    step_names: tuple[str, ...]
    completed: dict[str, str] = field(default_factory=dict)
    base_cards: dict[str, int] = field(default_factory=dict)
    status: str = "running"  # "running" | "complete"
    version: int = MANIFEST_VERSION

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": self.version,
                "run_id": self.run_id,
                "flock_key": self.flock_key,
                "plan_fingerprint": self.plan_fingerprint,
                "step_names": list(self.step_names),
                "completed": self.completed,
                "base_cards": self.base_cards,
                "status": self.status,
            }
        )

    def to_status(self) -> dict:
        """A JSON-able status summary of this run — the shape the serve
        layer's ``GET /v1/runs/{run_id}`` endpoint reports for durable
        (checkpointed) runs: overall status plus per-step progress."""
        return {
            "run_id": self.run_id,
            "status": self.status,
            "steps_total": len(self.step_names),
            "steps_completed": len(self.completed),
            "steps": [
                {"name": name, "completed": name in self.completed}
                for name in self.step_names
            ],
            "base_cards": dict(self.base_cards),
            "plan_fingerprint": self.plan_fingerprint,
        }

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        data = json.loads(text)
        return cls(
            run_id=data["run_id"],
            flock_key=data["flock_key"],
            plan_fingerprint=data["plan_fingerprint"],
            step_names=tuple(data["step_names"]),
            completed=dict(data["completed"]),
            base_cards={k: int(v) for k, v in data["base_cards"].items()},
            status=data.get("status", "running"),
            version=int(data.get("version", 0)),
        )


def flock_key(flock: "QueryFlock") -> str:
    """The resume-identity of a flock: canonical query key + filter."""
    from .session.canonical import canonical_key

    return f"{canonical_key(flock.query)} | {flock.filter}"


def plan_fingerprint(
    flock: "QueryFlock", plan: "QueryPlan", join_order: str = "greedy"
) -> str:
    """A stable hash of the plan a run executed — resume validates the
    freshly rebuilt plan against it before trusting any checkpoint."""
    text = f"{plan.render(flock)}\njoin_order={join_order}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def new_run_id() -> str:
    return uuid.uuid4().hex[:12]


class CheckpointStore:
    """SQLite-file durability for run manifests and step survivor sets.

    Rides on the same persistence the session cache uses
    (:meth:`~repro.flocks.sqlbackend.SQLiteBackend.persist_cached_result`
    and friends): each completed step's survivors become one quoted
    table plus a metadata row, and each run gets one manifest row.  A
    store outlives processes — point a new process at the same path and
    ``resume=`` picks up where the crash left off.
    """

    _MANIFEST_TABLE = "_repro_run_manifest"

    def __init__(self, path: str):
        from .flocks.sqlbackend import SQLiteBackend

        self.path = path
        self.backend: "SQLiteBackend" = SQLiteBackend(path=path)
        # Checkpoint writes happen once per completed FILTER step, on
        # the hot path of the run they protect.  WAL + synchronous=
        # NORMAL drops the per-commit fsync of the main database; the
        # worst a power loss can cost is the most recent step table,
        # and the table-first/manifest-second write order already
        # treats a missing table as "re-execute that step".
        cursor = self.backend.connection.cursor()
        self.backend._execute(cursor, "PRAGMA journal_mode=WAL")
        self.backend._execute(cursor, "PRAGMA synchronous=NORMAL")
        self.backend._execute(
            cursor,
            f"CREATE TABLE IF NOT EXISTS {self._MANIFEST_TABLE} "
            "(run_id TEXT PRIMARY KEY, manifest TEXT)",
        )
        self.backend.connection.commit()

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- manifests ------------------------------------------------------

    @blocking
    def save_manifest(self, manifest: RunManifest) -> None:
        cursor = self.backend.connection.cursor()
        self.backend._execute(
            cursor,
            f"INSERT OR REPLACE INTO {self._MANIFEST_TABLE} VALUES (?, ?)",
            parameters=(manifest.run_id, manifest.to_json()),
        )
        self.backend.connection.commit()

    @blocking
    def load_manifest(self, run_id: str) -> RunManifest | None:
        cursor = self.backend.connection.cursor()
        rows = self.backend._execute(
            cursor,
            f"SELECT manifest FROM {self._MANIFEST_TABLE} WHERE run_id = ?",
            parameters=(run_id,),
        ).fetchall()
        if not rows:
            return None
        return RunManifest.from_json(rows[0][0])

    @blocking
    def list_runs(self) -> list[RunManifest]:
        cursor = self.backend.connection.cursor()
        rows = self.backend._execute(
            cursor, f"SELECT manifest FROM {self._MANIFEST_TABLE}"
        ).fetchall()
        return [RunManifest.from_json(text) for (text,) in rows]

    @blocking
    def run_status(self, run_id: str) -> dict | None:
        """The :meth:`RunManifest.to_status` dict for one run, or None
        when the store has no manifest for ``run_id``."""
        manifest = self.load_manifest(run_id)
        if manifest is None:
            return None
        return manifest.to_status()

    @blocking
    def drop_run(self, run_id: str) -> None:
        """Delete one run's manifest and every step table it owns."""
        manifest = self.load_manifest(run_id)
        if manifest is not None:
            for table in manifest.completed.values():
                self.backend.drop_cached_result(table)
        cursor = self.backend.connection.cursor()
        self.backend._execute(
            cursor,
            f"DELETE FROM {self._MANIFEST_TABLE} WHERE run_id = ?",
            parameters=(run_id,),
        )
        self.backend.connection.commit()

    # -- step survivor sets ---------------------------------------------

    def _step_table(self, run_id: str, step_name: str) -> str:
        return f"_repro_ckpt_{run_id}_{step_name}"

    @blocking
    def save_step(
        self, manifest: RunManifest, step_name: str, relation: "Relation"
    ) -> None:
        """Persist one completed step's survivors and mark it done —
        table first, manifest second, so a crash between the two writes
        at worst re-executes a step, never trusts a missing table."""
        table = self._step_table(manifest.run_id, step_name)
        self.backend.persist_cached_result(
            table,
            relation,
            {"run_id": manifest.run_id, "step": step_name},
        )
        manifest.completed[step_name] = table
        self.save_manifest(manifest)

    @blocking
    def load_step(
        self, manifest: RunManifest, step_name: str
    ) -> "Relation | None":
        table = manifest.completed.get(step_name)
        if table is None:
            return None
        for name, metadata in self.backend.list_cached_results():
            if name == table:
                return self.backend.load_cached_result(table, metadata)
        return None

    # -- recorder factory ----------------------------------------------

    def recorder(
        self,
        flock: "QueryFlock",
        plan: "QueryPlan",
        db: "Database",
        join_order: str = "greedy",
        run_id: str | None = None,
        resume: str | None = None,
    ) -> "CheckpointRecorder":
        """Start (or resume) a checkpointed run for ``plan``.

        A fresh run writes its manifest immediately.  A resume loads
        the manifest for ``resume`` and validates it: same flock (by
        canonical key), same plan fingerprint, and every base relation
        at its recorded cardinality — any mismatch is a
        :class:`~repro.errors.ResumeError`, because splicing stale
        survivors into a changed run would be a silent wrong answer.
        """
        key = flock_key(flock)
        fingerprint = plan_fingerprint(flock, plan, join_order)
        cards = {
            name: len(db.get(name))
            for name in sorted(flock.predicates())
            if name in db
        }
        if resume is not None:
            manifest = self.load_manifest(resume)
            if manifest is None:
                raise ResumeError(
                    f"no checkpointed run {resume!r} in {self.path}"
                )
            if manifest.version != MANIFEST_VERSION:
                raise ResumeError(
                    f"run {resume!r} has manifest version "
                    f"{manifest.version}, this build writes "
                    f"{MANIFEST_VERSION}"
                )
            if manifest.flock_key != key:
                raise ResumeError(
                    f"run {resume!r} was checkpointed for a different "
                    "flock (canonical key mismatch)"
                )
            if manifest.plan_fingerprint != fingerprint:
                raise ResumeError(
                    f"run {resume!r} was checkpointed under a different "
                    "plan (fingerprint mismatch; statistics or join "
                    "order changed)"
                )
            if manifest.base_cards != cards:
                raise ResumeError(
                    f"run {resume!r} was checkpointed against different "
                    f"data (cardinalities {manifest.base_cards} != "
                    f"{cards})"
                )
            return CheckpointRecorder(self, manifest, resumed=True)
        manifest = RunManifest(
            run_id=run_id if run_id is not None else new_run_id(),
            flock_key=key,
            plan_fingerprint=fingerprint,
            step_names=tuple(s.result_name for s in plan.steps),
            base_cards=cards,
        )
        self.save_manifest(manifest)
        return CheckpointRecorder(self, manifest, resumed=False)


class CheckpointRecorder:
    """What the plan executor sees: serve completed steps, save new ones.

    Duck-typed into :func:`repro.flocks.executor.execute_plan` the same
    way the session sink is — the executor only calls :meth:`served`
    and :meth:`complete`.
    """

    def __init__(
        self, store: CheckpointStore, manifest: RunManifest, resumed: bool
    ):
        self.store = store
        self.manifest = manifest
        self.resumed = resumed
        self.steps_resumed = 0
        self.steps_checkpointed = 0

    @property
    def run_id(self) -> str:
        return self.manifest.run_id

    def served(self, step_name: str) -> "Relation | None":
        """The saved survivor set of an already-completed step (resume
        path), or None when the step must execute."""
        if not self.resumed:
            return None
        relation = self.store.load_step(self.manifest, step_name)
        if relation is not None:
            self.steps_resumed += 1
        return relation

    def complete(self, step_name: str, relation: "Relation") -> None:
        """Persist one freshly executed step's survivors."""
        self.store.save_step(self.manifest, step_name, relation)
        self.steps_checkpointed += 1

    def finish(self) -> None:
        """Mark the run complete (all steps durable)."""
        self.manifest.status = "complete"
        self.store.save_manifest(self.manifest)


__all__ = [
    "CheckpointRecorder",
    "CheckpointStore",
    "MANIFEST_VERSION",
    "RetryEvent",
    "RetryPolicy",
    "RetrySupervisor",
    "RunManifest",
    "TransientFault",
    "TRANSIENT_SQLITE_MARKERS",
    "flock_key",
    "new_run_id",
    "plan_fingerprint",
]
